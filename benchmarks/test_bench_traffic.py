"""Synthetic traffic against the search service: warm pool vs cold engines.

The tentpole claim behind ``repro.serve`` is that a persistent worker
pool with one warm shared transposition table beats spinning up a cold
engine per request.  This benchmark runs the *same* deterministic trace
twice through one service — pass 1 lands on empty tables, pass 2 reuses
everything pass 1 stored — and records requests/s plus p50/p95/p99
latency for both arms in ``results/traffic_{cold,warm}.txt`` and a
ledger record (with the optional ``service`` block) for the warm arm.

The warm > cold throughput assertion is wall-clock and machine-gated
like the multiproc scaling exhibit: on a box where the effect is real
it is large (order 10x in development runs), so the gate at 1.05x only
filters timer noise, not the effect.
"""

from __future__ import annotations

import asyncio

from repro.obs import ledger
from repro.serve import SearchService, ServeConfig
from repro.serve.traffic import (
    TrafficSpec,
    generate_trace,
    latency_fields,
    render_decomposition,
    run_trace,
    service_snapshot,
)

SPEC = TrafficSpec(
    workloads=("R1", "R2", "R3"),
    n_requests=60,
    seed=2026,
    max_depth=3,
    max_path_len=2,
    repeat_fraction=0.6,
)

CONFIG = ServeConfig(
    n_workers=2,
    max_concurrency=4,
    queue_limit=128,  # benchmark measures throughput, not shedding
    tt_mode="shared",
    eval_cache_mode="shared",
)


async def _both_arms():
    async with SearchService(CONFIG) as service:
        trace = generate_trace(SPEC, service.catalog)
        cold = await run_trace(service, trace)
        warm = await run_trace(service, trace)
        snap = service_snapshot(service, warm, workload="traffic-warm")
        assert service.scheduler is not None
        assert service.scheduler.conservation_problems() == []
    return cold, warm, snap


def test_traffic_warm_vs_cold(benchmark, scale, record_table, record_ledger):
    cold, warm, snap = benchmark.pedantic(
        lambda: asyncio.run(_both_arms()), rounds=1, iterations=1
    )

    assert cold.completed == SPEC.n_requests and cold.errors == 0
    assert warm.completed == SPEC.n_requests and warm.errors == 0

    violations = snap.check_accounting()
    assert violations == [], "\n".join(violations)
    record_table("traffic_cold", cold.render("traffic: cold tables (pass 1)"))
    record_table(
        "traffic_warm",
        warm.render("traffic: warm tables (pass 2)")
        + "\n\n"
        + render_decomposition(warm.replies, "warm latency decomposition"),
    )
    # Every warm reply must carry a conserved timing block — the stage
    # decomposition the ledger's `latency` block and CI compare watch.
    decomposed = [r for r in warm.replies if r.timing is not None]
    assert len(decomposed) == SPEC.n_requests
    for reply in decomposed:
        assert reply.timing is not None
        assert reply.timing.conservation_problems() == []
    record_ledger(
        snap,
        workload="traffic-warm",
        scale=scale,
        seed=SPEC.seed,
        config={
            "n_workers": CONFIG.n_workers,
            "max_concurrency": CONFIG.max_concurrency,
            "tt_mode": CONFIG.tt_mode,
            "requests": SPEC.n_requests,
            "repeat_fraction": SPEC.repeat_fraction,
        },
        service=ledger.service_block(**warm.service_fields()),
        latency=ledger.latency_block(**latency_fields(warm.replies)),
    )

    ratio = warm.rps / cold.rps if cold.rps else float("inf")
    benchmark.extra_info["cold_rps"] = round(cold.rps, 1)
    benchmark.extra_info["warm_rps"] = round(warm.rps, 1)
    benchmark.extra_info["warm_over_cold"] = round(ratio, 2)
    benchmark.extra_info["warm_p95_ms"] = round(warm.p95_s * 1e3, 2)

    # Same trace, same pool — only cache warmth differs.  The effect is
    # order-of-magnitude when real; 1.05x just guards timer noise.
    assert ratio > 1.05, (
        f"warm tables gave no throughput edge: cold {cold.rps:.1f} rps, "
        f"warm {warm.rps:.1f} rps"
    )