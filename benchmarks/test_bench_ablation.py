"""Ablations of ER's design choices (Sections 5 and 8).

* Each speculative mechanism (parallel refutation, early choice,
  multiple e-children) individually removed at 16 processors: the paper
  argues all three are needed to fight starvation; removing the
  speculative queue must collapse utilization.
* Speculative-queue ordering (Section 8 calls the paper's own ranking
  "rather naive" and asks for better global rankings): the PAPER order
  versus FIFO, DEEPEST, and BEST_VALUE.
* Synchronization cost sensitivity: with a frictionless cost model
  interference loss vanishes, isolating starvation+speculation.
* Serial-depth sensitivity: the paper's contention/starvation tradeoff
  ("reduce contention by decreasing the serial depth ... would only
  increase starvation").
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import serial_baselines
from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.er_queues import SpecOrder
from repro.costmodel import FRICTIONLESS_COST_MODEL
from repro.workloads.suite import table3_suite

PROCS = 16


@pytest.fixture(scope="module")
def r1(scale):
    spec = table3_suite(scale)["R1"]
    base = serial_baselines(spec)
    return spec, base.best_time


def test_speculation_mechanisms(benchmark, r1, record_table):
    spec, serial_time = r1

    def run():
        rows = {}
        variants = {
            "all-on": {},
            "no-parallel-refutation": dict(parallel_refutation=False),
            "no-early-choice": dict(early_choice=False),
            "no-multiple-e-children": dict(multiple_e_children=False),
            "no-speculation": dict(early_choice=False, multiple_e_children=False),
        }
        for name, flags in variants.items():
            config = ERConfig(serial_depth=spec.serial_depth, **flags)
            result = parallel_er(spec.problem(), PROCS, config=config)
            rows[name] = (
                result.speedup(serial_time),
                result.report.starvation_fraction(),
                result.stats.nodes_generated,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{name:24s} speedup={s:5.2f} starvation={st:.2f} nodes={n}"
        for name, (s, st, n) in rows.items()
    )
    benchmark.extra_info["rows"] = {k: [round(x, 3) for x in v[:2]] for k, v in rows.items()}
    record_table("ablation_mechanisms", text)

    # The paper's core claim: the speculative queue buys throughput.
    assert rows["all-on"][0] > rows["no-speculation"][0]
    # ...by fighting starvation...
    assert rows["all-on"][1] < rows["no-speculation"][1]
    # ...at the cost of extra (speculative) nodes.
    assert rows["all-on"][2] >= rows["no-speculation"][2]


def test_speculative_queue_ordering(benchmark, r1, record_table):
    spec, serial_time = r1

    def run():
        rows = {}
        for order in SpecOrder:
            config = ERConfig(serial_depth=spec.serial_depth, spec_order=order)
            result = parallel_er(spec.problem(), PROCS, config=config)
            rows[order.value] = result.speedup(serial_time)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in rows.items()}
    record_table(
        "ablation_spec_order",
        "\n".join(f"{k:12s} speedup={v:.2f}" for k, v in rows.items()),
    )
    # All orderings must stay correct and broadly comparable; the paper
    # expects ordering to matter less than having a queue at all.
    assert max(rows.values()) < 3.0 * min(rows.values())


def test_frictionless_synchronization(benchmark, r1):
    spec, serial_time = r1

    def run():
        config = ERConfig(serial_depth=spec.serial_depth)
        costed = parallel_er(spec.problem(), PROCS, config=config)
        free = parallel_er(
            spec.problem(), PROCS, config=config, cost_model=FRICTIONLESS_COST_MODEL
        )
        return costed, free

    costed, free = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["interference_costed"] = round(
        costed.report.interference_fraction(), 4
    )
    benchmark.extra_info["interference_free"] = round(
        free.report.interference_fraction(), 4
    )
    assert free.report.interference_fraction() == 0.0
    assert costed.report.interference_fraction() >= 0.0


def test_serial_depth_tradeoff(benchmark, r1, record_table):
    """Paper Section 7: decreasing the serial depth (= serializing larger
    subtrees) reduces contention but increases starvation."""
    spec, serial_time = r1

    def run():
        rows = {}
        for serial_depth in sorted({2, 3, spec.serial_depth}):
            config = ERConfig(serial_depth=serial_depth)
            result = parallel_er(spec.problem(), PROCS, config=config)
            rows[serial_depth] = (
                result.report.interference_fraction(),
                result.report.starvation_fraction(),
                result.speedup(serial_time),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"serial_depth={d}: interference={i:.3f} starvation={s:.3f} speedup={sp:.2f}"
        for d, (i, s, sp) in rows.items()
    )
    benchmark.extra_info["rows"] = {
        str(d): [round(x, 3) for x in v] for d, v in rows.items()
    }
    record_table("ablation_serial_depth", text)

    depths = sorted(rows)
    # Coarser tasks (smaller serial depth) => no more interference than
    # the finest-grained configuration.
    assert rows[depths[0]][0] <= rows[depths[-1]][0] + 0.01
    # ...but at least as much starvation.
    assert rows[depths[0]][1] >= rows[depths[-1]][1] - 0.05


def test_distributed_heap(benchmark, r1, record_table):
    """Section 8 future work, implemented: "we expect that this efficiency
    loss can be reduced by distributing work in a manner that reduces
    processor interaction."  Per-processor queues with work stealing
    versus the paper's single shared primary queue."""
    spec, serial_time = r1

    def run():
        rows = {}
        for distributed in (False, True):
            config = ERConfig(serial_depth=spec.serial_depth, distributed_heap=distributed)
            result = parallel_er(spec.problem(), PROCS, config=config)
            rows[distributed] = (
                result.report.interference_fraction(),
                result.speedup(serial_time),
                result.extras["steals"],
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{'distributed' if d else 'shared     '}: interference={i:.4f} "
        f"speedup={s:.2f} steals={st}"
        for d, (i, s, st) in rows.items()
    )
    benchmark.extra_info["interference_shared"] = round(rows[False][0], 4)
    benchmark.extra_info["interference_distributed"] = round(rows[True][0], 4)
    record_table("ablation_distributed_heap", text)

    # Work stealing must reduce lock interference, as Section 8 predicts.
    assert rows[True][0] <= rows[False][0]
    assert rows[True][2] > 0  # steals actually happened
    # And it must not cost meaningful throughput.
    assert rows[True][1] > rows[False][1] * 0.85


def test_e_children_cap(benchmark, r1, record_table):
    """Bounding speculative e-children per node: less speculative loss,
    more starvation — the whole tradeoff in one knob."""
    spec, serial_time = r1

    def run():
        rows = {}
        for cap in (1, 2, 1_000_000):
            config = ERConfig(serial_depth=spec.serial_depth, max_e_children=cap)
            result = parallel_er(spec.problem(), PROCS, config=config)
            rows[cap] = (
                result.stats.nodes_generated,
                result.report.starvation_fraction(),
                result.speedup(serial_time),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"cap={c}: nodes={n} starvation={s:.2f} speedup={sp:.2f}"
        for c, (n, s, sp) in rows.items()
    )
    benchmark.extra_info["rows"] = {str(c): v[1] for c, v in rows.items()}
    record_table("ablation_e_cap", text)

    unbounded = rows[1_000_000]
    tight = rows[1]
    assert tight[0] <= unbounded[0]  # fewer nodes when capped
    assert tight[1] >= unbounded[1]  # more starvation when capped
