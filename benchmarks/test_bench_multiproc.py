"""Wall-clock scaling of the multiprocess ER backend, P in {1, 2, 4, 8}.

This is the repo's only *real-time* speedup exhibit: the simulator
benchmarks report simulated-clock efficiency, whereas this run measures
actual seconds on actual cores.  The workload is a random tree tuned so
subtree tasks are large relative to one pickle/IPC round-trip and
numerous enough to keep eight workers fed (54+ tasks), with
``max_e_children=1`` keeping total speculative work near the serial node
count.

Speedup assertions are gated on the machine: a container pinned to one
core cannot show wall-clock speedup no matter how correct the backend
is, so there we only pin correctness, task-flow, and loss accounting.
The measured numbers land in ``results/scaling_multiproc_P{n}.txt``
either way.
"""

from __future__ import annotations

import os

from repro.core.er_parallel import ERConfig
from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.parallel.multiproc import measure_serial_seconds, scaling_run

WORKER_COUNTS = (1, 2, 4, 8)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload(scale: str) -> tuple[SearchProblem, ERConfig]:
    # Calibrated so one task is ~5-10ms of search (hundreds of pickle
    # round-trips' worth) and P=1 busy time stays within ~10% of serial.
    height = 10 if scale == "paper" else 8
    problem = SearchProblem(RandomGameTree(4, height, seed=101), depth=height)
    config = ERConfig(serial_depth=height - 5, max_e_children=1)
    return problem, config


def test_multiproc_scaling(benchmark, scale, record_scaling, record_ledger):
    problem, config = _workload(scale)
    truth = er_search(problem).value
    serial_seconds = measure_serial_seconds(problem)

    _, points = benchmark.pedantic(
        lambda: scaling_run(
            problem, WORKER_COUNTS, config=config, serial_seconds=serial_seconds
        ),
        rounds=1,
        iterations=1,
    )
    record_scaling("scaling_multiproc", "M1", serial_seconds, points)

    # Freeze the widest run into the observability ledger (and the
    # aggregated BENCH_obs.json) alongside the table files.
    from repro.obs.snapshot import snapshot_from_multiproc

    widest = max(points, key=lambda p: p.n_workers)
    snap = snapshot_from_multiproc(widest.result, workload="M1")
    violations = snap.check_accounting()
    assert violations == [], "\n".join(violations)
    record_ledger(
        snap,
        workload="M1",
        scale=scale,
        seed=101,
        config={"serial_depth": config.serial_depth, "max_e_children": 1},
    )

    cores = _available_cores()
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup"] = {
        p.n_workers: round(p.speedup, 2) for p in points
    }
    benchmark.extra_info["losses"] = {
        p.n_workers: {
            "starvation": round(p.result.starvation_fraction, 3),
            "interference": round(p.result.interference_fraction, 3),
            "speculative": round(p.result.speculative_fraction, 3),
        }
        for p in points
    }

    by_count = {p.n_workers: p for p in points}
    # Correctness and accounting hold on any machine.
    for point in points:
        assert point.result.value == truth
        assert point.result.extras["tasks_submitted"] >= 8
        fractions = (
            point.result.starvation_fraction
            + point.result.interference_fraction
            + point.result.speculative_fraction
        )
        assert 0.0 <= fractions <= 1.0 + 1e-9
    # Real-parallelism claims need real cores to test.
    if cores >= 2:
        assert by_count[2].speedup > 1.1, (
            f"P=2 gained nothing on {cores} cores: {by_count[2].speedup:.2f}x"
        )
    if cores >= 4:
        assert by_count[4].speedup > 1.5, (
            f"P=4 speedup {by_count[4].speedup:.2f}x below the 1.5x bar "
            f"on {cores} cores"
        )
