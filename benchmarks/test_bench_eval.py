"""Batched static evaluation: profile-guided prediction vs the real cut.

The what-if profiler predicted (from the base run's critical path alone)
how much makespan a cheaper ``static_eval`` primitive would buy; this PR
delivered the real cut — batched leaf evaluation plus the Zobrist-keyed
eval cache.  This exhibit closes the loop: it replays the fixed-seed R3
workload, computes the *effective* cost factor the batched subsystem
actually charged (speculative ordering prefetch evaluates whole frontier
batches while ER visits only the half it needs, so the effective factor
is far above the naive per-leaf rate ratio), feeds that factor through
the Coz-style virtual-speedup formula, and asserts the prediction lands
within 15% of the measured batched makespan.  The point pair is frozen
into a ledger record (``whatif``) so ``repro-gametree compare`` can diff
prediction quality across PRs.
"""

from __future__ import annotations

import dataclasses
import pathlib

from repro.analysis.experiments import er_config_for
from repro.core.er_parallel import parallel_er
from repro.costmodel import DEFAULT_COST_MODEL
from repro.eval import make_eval_cache
from repro.obs import critpath, ledger, observing, whatif
from repro.obs.snapshot import snapshot_from_sim
from repro.workloads.suite import table3_suite

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_PROCESSORS = 4
TOLERANCE = 0.15  # acceptance bound on |predicted - actual| / actual


def _eval_cost_charged(stats) -> float:
    """Total simulated time a run charged to static evaluation, in any form."""
    cm = DEFAULT_COST_MODEL
    return (
        stats.static_evals * cm.static_eval
        + stats.batch_calls * cm.batch_eval_base
        + stats.batch_leaves * cm.batch_eval_per_leaf
        + stats.eval_probes * cm.eval_cache_probe
        + stats.eval_stores * cm.eval_cache_store
    )


def test_eval_predicted_vs_actual(benchmark, scale, record_table):
    spec = table3_suite(scale)["R3"]
    problem = spec.problem()
    config = er_config_for(spec)

    def run():
        with observing() as bus, critpath.recording() as rec:
            base = parallel_er(problem, N_PROCESSORS, config=config)
        path = critpath.extract(rec, base.sim_time)
        batched = parallel_er(problem, N_PROCESSORS, config=config, batch_eval=True)
        cached = parallel_er(
            problem,
            N_PROCESSORS,
            config=config,
            eval_cache=make_eval_cache("shared"),
            batch_eval=True,
        )
        return bus, path, base, batched, cached

    bus, path, base, batched, cached = benchmark.pedantic(run, rounds=1, iterations=1)
    assert path.length == base.sim_time
    assert batched.value == base.value
    assert cached.value == base.value

    attributed = path.by_primitive().get("static_eval", 0.0)
    base_eval_cost = _eval_cost_charged(base.stats)
    assert attributed > 0 and base_eval_cost > 0

    # Effective factor: what the batched run actually charged for
    # evaluation, as a fraction of the base run's charge.  This is the
    # honest input to the Coz formula — the naive per-leaf rate ratio
    # ignores speculative over-evaluation (ordering prefetch batches all
    # children of every visited horizon-1 node; ER then visits ~half).
    points = []
    for name, result in (("batch_eval", batched), ("batch+cache", cached)):
        factor = _eval_cost_charged(result.stats) / base_eval_cost
        predicted = base.sim_time - (1.0 - factor) * attributed
        points.append(
            whatif.WhatIfPoint(
                primitive=name,
                factor=round(factor, 4),
                base_makespan=base.sim_time,
                attributed=attributed,
                predicted_makespan=predicted,
                actual_makespan=result.sim_time,
            )
        )

    lines = [
        f"{spec.name} sim P={N_PROCESSORS} ({scale} scale)  "
        f"base makespan={base.sim_time:g}  attributed(static_eval)={attributed:g}"
    ]
    for p in points:
        err = abs(p.predicted_makespan - p.actual_makespan) / p.actual_makespan
        lines.append(
            f"{p.primitive:12s} factor={p.factor:.3f}  "
            f"predicted={p.predicted_makespan:.1f}  actual={p.actual_makespan:.1f}  "
            f"err={err:.1%}"
        )
    record_table("eval_predicted_vs_actual", "\n".join(lines))

    benchmark.extra_info["base_makespan"] = base.sim_time
    benchmark.extra_info["attributed_static_eval"] = attributed
    benchmark.extra_info["points"] = [p.to_record() for p in points]

    # The real cut beats the base run, and the frozen-schedule prediction
    # built from the effective factor lands within the acceptance bound.
    for p in points:
        assert p.actual_makespan < p.base_makespan
        error = abs(p.predicted_makespan - p.actual_makespan) / p.actual_makespan
        assert error <= TOLERANCE, (
            f"{p.primitive}: predicted {p.predicted_makespan:.1f} vs actual "
            f"{p.actual_makespan:.1f} ({error:.1%} > {TOLERANCE:.0%})"
        )

    # Freeze the pair into the committed ledger so compare can diff
    # prediction quality across PRs (distinct name: the critpath
    # benchmark owns the plain sim_R3_P4 record at this SHA).
    snap = snapshot_from_sim(
        base, workload=spec.name, bus=bus, critpath=path.composition()
    )
    violations = snap.check_accounting()
    assert violations == [], "\n".join(violations)
    record = ledger.make_record(
        snap,
        workload=spec.name,
        scale=scale,
        seed=spec.seed,
        config={
            "serial_depth": spec.serial_depth,
            "sort_below_root": spec.sort_below_root,
            "tt": "off",
            "eval_cache": "shared",
            "batch_eval": True,
        },
        cost_model=dataclasses.asdict(DEFAULT_COST_MODEL),
        whatif=whatif.to_records(points),
    )
    problems = ledger.validate_record(record)
    assert problems == [], "\n".join(problems)
    root = REPO_ROOT
    ledger_path = ledger.write_record(
        record,
        root / "results" / "ledger",
        name=ledger.record_name(record) + "_evalbatch",
    )
    ledger.aggregate(root / "results" / "ledger", out_path=root / "BENCH_obs.json")
    benchmark.extra_info["ledger"] = ledger_path.name
