"""Critical-path observability benchmark: extraction cost + blame table.

Runs the fixed-seed R3 tree on the discrete-event engine with the
schedule recorder installed, extracts the exact critical path, and
freezes the per-primitive blame decomposition into a ledger record
(so ``repro-gametree compare`` can diff critical-path composition
across PRs) and a rendered report under ``benchmarks/results/``.

The timed region includes both the recorded run and the backward path
walk, so the number also tracks the recording/extraction overhead the
``explain`` subcommand pays on top of a plain simulated run.
"""

from __future__ import annotations

from repro.analysis.experiments import er_config_for
from repro.core.er_parallel import parallel_er
from repro.obs import critpath, observing
from repro.obs.snapshot import snapshot_from_sim
from repro.workloads.suite import table3_suite

N_PROCESSORS = 4


def test_sim_critpath(benchmark, scale, record_table, record_ledger):
    spec = table3_suite(scale)["R3"]
    problem = spec.problem()
    config = er_config_for(spec)

    def run():
        with observing() as bus, critpath.recording() as rec:
            result = parallel_er(problem, N_PROCESSORS, config=config)
        return bus, rec, result

    bus, rec, result = benchmark.pedantic(run, rounds=1, iterations=1)
    path = critpath.extract(rec, result.sim_time)
    assert path.length == result.sim_time

    record_table(
        "critpath_R3",
        critpath.render_report(
            path, title=f"{spec.name} sim P={N_PROCESSORS} ({scale} scale)"
        ).rstrip("\n"),
    )

    snap = snapshot_from_sim(
        result, workload=spec.name, bus=bus, critpath=path.composition()
    )
    violations = snap.check_accounting()
    assert violations == [], "\n".join(violations)
    ledger_path = record_ledger(
        snap,
        workload=spec.name,
        scale=scale,
        seed=spec.seed,
        config={
            "serial_depth": spec.serial_depth,
            "sort_below_root": spec.sort_below_root,
        },
    )

    blame = path.by_primitive()
    benchmark.extra_info["ledger"] = ledger_path.name
    benchmark.extra_info["makespan"] = path.makespan
    benchmark.extra_info["path_steps"] = len(path.steps)
    benchmark.extra_info["handoffs"] = path.handoff_counts()
    benchmark.extra_info["top_primitives"] = {
        name: round(credit, 4)
        for name, credit in sorted(blame.items(), key=lambda kv: -kv[1])[:3]
    }
