"""Simulated-backend observability benchmark: snapshot + ledger record.

Runs the fixed-seed R3 tree on the discrete-event engine under the
telemetry bus and freezes the result into a run-ledger record (and the
aggregated ``BENCH_obs.json``).  Because the simulator is deterministic,
the recorded snapshot is machine-independent: every field except
``created_at``/``git_sha`` is identical across reruns, which is what
makes ``repro-gametree compare`` against a committed baseline meaningful
in CI.

The benchmark also pins the paper's Section 3.1 accounting exactly: per
processor, busy + interference + starvation + speculative must equal the
processor's finish time, and adding tail idle must reach the makespan.
"""

from __future__ import annotations

from repro.analysis.experiments import er_config_for
from repro.core.er_parallel import parallel_er
from repro.obs import observing
from repro.obs.snapshot import snapshot_from_sim
from repro.workloads.suite import table3_suite

N_PROCESSORS = 4


def test_sim_observed(benchmark, scale, record_ledger):
    spec = table3_suite(scale)["R3"]
    problem = spec.problem()
    config = er_config_for(spec)

    def run():
        with observing() as bus:
            result = parallel_er(problem, N_PROCESSORS, config=config)
        return bus, result

    bus, result = benchmark.pedantic(run, rounds=1, iterations=1)
    snap = snapshot_from_sim(result, workload=spec.name, bus=bus)

    violations = snap.check_accounting()
    assert violations == [], "\n".join(violations)

    path = record_ledger(
        snap,
        workload=spec.name,
        scale=scale,
        seed=spec.seed,
        config={
            "serial_depth": spec.serial_depth,
            "sort_below_root": spec.sort_below_root,
        },
    )
    benchmark.extra_info["ledger"] = path.name
    benchmark.extra_info["makespan"] = snap.makespan
    benchmark.extra_info["events"] = len(bus.events)
    benchmark.extra_info["fractions"] = {
        "starvation": round(snap.starvation_fraction, 4),
        "interference": round(snap.interference_fraction, 4),
        "speculative": round(snap.speculative_fraction, 4),
    }
