"""Figures 10 and 11: efficiency of parallel ER versus processor count.

Paper results being reproduced in *shape*:

* Figure 10 (Othello trees): with 16 processors, speedups 6.7-10.6
  (efficiency 0.42-0.66).
* Figure 11 (random trees): with 16 processors, speedups 9.8-11.2
  (efficiency 0.61-0.70).
* In both: at least 16 processors can be applied profitably — speedup
  keeps rising through the whole sweep, unlike the Section 4 baselines.

EXPERIMENTS.md records measured-vs-paper values; the assertions here pin
the qualitative shape so regressions fail loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    cached_curve,
    format_efficiency_table,
    format_speedup_summary,
)
from repro.workloads.suite import PROCESSOR_COUNTS

OTHELLO = ("O1", "O2", "O3")
RANDOM = ("R1", "R2", "R3")


def _run_curve(benchmark, scale, record_table, tree, figure):
    curve = benchmark.pedantic(
        lambda: cached_curve(scale, tree, PROCESSOR_COUNTS), rounds=1, iterations=1
    )
    table = format_efficiency_table({tree: curve})
    summary = format_speedup_summary({tree: curve})
    benchmark.extra_info["efficiency"] = {
        p.n_processors: round(p.efficiency, 3) for p in curve.points
    }
    benchmark.extra_info["scale"] = scale
    record_table(f"fig{figure}_{tree}_{scale}", table + "\n" + summary)

    by_count = {p.n_processors: p for p in curve.points}
    # Shape assertions (the paper's qualitative findings):
    # 1. Parallelism is profitable all the way to 16 processors.
    assert by_count[16].speedup > by_count[8].speedup * 0.95
    assert by_count[16].speedup > 2.5
    # 2. Efficiency declines between 4 and 16 processors (Section 7).
    assert by_count[16].efficiency < by_count[4].efficiency * 1.35
    # 3. One simulated processor is within scheduling overhead of serial.
    assert by_count[1].efficiency > 0.4
    return curve


@pytest.mark.parametrize("tree", OTHELLO)
def test_figure10_othello_efficiency(benchmark, scale, record_table, tree):
    _run_curve(benchmark, scale, record_table, tree, figure=10)


@pytest.mark.parametrize("tree", RANDOM)
def test_figure11_random_efficiency(benchmark, scale, record_table, tree):
    _run_curve(benchmark, scale, record_table, tree, figure=11)
