"""Request-tracing overhead budget on the serving path.

PR 10 threads a trace tag through every pool submission and collects
tagged worker spans, offset estimates, and per-request timing on the
serving path.  All of that must be effectively free: with
``trace_mode="off"`` the task payloads are byte-identical to the
untagged protocol, and with ``trace_mode="full"`` the tag is one short
string per submission plus ring records the workers already paid for.

The budget is asserted the same way as the span-ring benchmark
(``test_bench_trace_overhead.py``): each round serves the *same*
deterministic trace through a traced and an untraced service
back-to-back (temporally adjacent arms see the same machine load), and
the minimum per-round traced/untraced wall ratio carries the assertion
— wall noise only ever inflates a ratio, so the least-contaminated
round estimates the intrinsic overhead.  The median is reported for
drift-watching.
"""

from __future__ import annotations

import asyncio
import statistics

from repro.obs import live
from repro.serve import SearchService, ServeConfig
from repro.serve.traffic import TrafficSpec, generate_trace, run_trace

#: Traced serving may cost at most this factor of untraced wall time.
OVERHEAD_BUDGET = 1.05

#: Interleaved measurement rounds (minimum of per-round ratios asserted).
ROUNDS = 5

SPEC = TrafficSpec(
    workloads=("R1", "R3"),
    n_requests=30,
    seed=2026,
    max_depth=3,
    max_path_len=2,
    repeat_fraction=0.5,
)

_BASE = ServeConfig(
    n_workers=2,
    max_concurrency=4,
    queue_limit=128,
    tt_mode="shared",
    eval_cache_mode="shared",
)


async def _serve_rounds() -> dict[str, list[float]]:
    """Wall seconds per arm per round, arms interleaved within a round.

    Both services stay up across rounds (their caches warm during the
    round-0 discard), so later rounds measure the steady state the
    budget is about — tag propagation and span collection, not pool
    spin-up.
    """
    walls: dict[str, list[float]] = {live.TRACE_OFF: [], live.TRACE_FULL: []}
    configs = {
        live.TRACE_OFF: _BASE,
        live.TRACE_FULL: ServeConfig(
            n_workers=_BASE.n_workers,
            max_concurrency=_BASE.max_concurrency,
            queue_limit=_BASE.queue_limit,
            tt_mode=_BASE.tt_mode,
            eval_cache_mode=_BASE.eval_cache_mode,
            trace_mode=live.TRACE_FULL,
        ),
    }
    services = {mode: SearchService(configs[mode]) for mode in walls}
    try:
        for service in services.values():
            await service.start()
        traces = {
            mode: generate_trace(SPEC, service.catalog)
            for mode, service in services.items()
        }
        for mode, service in services.items():  # warm both arms once
            await run_trace(service, traces[mode])
        for _ in range(ROUNDS):
            for mode, service in services.items():
                report = await run_trace(service, traces[mode])
                assert report.errors == 0 and report.shed == 0
                walls[mode].append(report.wall_s)
    finally:
        for service in services.values():
            await service.shutdown()
    return walls


def test_request_tracing_overhead_within_budget(benchmark, scale, record_table):
    walls = benchmark.pedantic(
        lambda: asyncio.run(_serve_rounds()), rounds=1, iterations=1
    )

    ratios = [
        traced / untraced
        for traced, untraced in zip(walls[live.TRACE_FULL], walls[live.TRACE_OFF])
    ]
    ratio = min(ratios)
    ratio_median = statistics.median(ratios)
    untraced = statistics.median(walls[live.TRACE_OFF])
    traced = statistics.median(walls[live.TRACE_FULL])

    benchmark.extra_info["untraced_s"] = round(untraced, 4)
    benchmark.extra_info["traced_s"] = round(traced, 4)
    benchmark.extra_info["ratio"] = round(ratio, 4)
    benchmark.extra_info["ratio_median"] = round(ratio_median, 4)
    record_table(
        "reqtrace_overhead",
        "\n".join(
            [
                f"workload: {SPEC.n_requests} requests over "
                f"{'/'.join(SPEC.workloads)}, P={_BASE.n_workers} "
                f"({scale} scale)",
                f"untraced wall (median of {ROUNDS}): {untraced:.4f}s",
                f"traced wall   (median of {ROUNDS}): {traced:.4f}s  "
                f"(ratio min {ratio:.3f} / median {ratio_median:.3f}, "
                f"budget {OVERHEAD_BUDGET:.2f})",
            ]
        )
        + "\n",
    )

    assert ratio <= OVERHEAD_BUDGET, (
        f"request tracing cost {ratio:.3f}x the untraced wall time "
        f"(budget {OVERHEAD_BUDGET}x): untraced={untraced:.4f}s "
        f"traced={traced:.4f}s"
    )
