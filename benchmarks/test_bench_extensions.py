"""Benchmarks for the extension layers built beyond the paper's text.

* Workload characterization: Marsland's strong-ordering statistics
  (Section 4.4's 70%/90% definition) measured for each tree family —
  placing Table 3's workloads on the ordered<->random spectrum.
* NegaScout (the minimal-window search of the paper's footnote 3) versus
  alpha-beta and serial ER.
* Transposition-table iterative deepening on a transposing real game.
"""

from __future__ import annotations

import pytest

from repro.analysis.tree_stats import branching_profile, ordering_quality
from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.othello import Othello
from repro.games.random_tree import IncrementalGameTree, RandomGameTree, SyntheticOrderedTree
from repro.games.tictactoe import TicTacToe
from repro.search.alphabeta import alphabeta
from repro.search.negascout import negascout
from repro.search.transposition import TranspositionTable, alphabeta_tt, iterative_deepening


def test_workload_ordering_spectrum(benchmark, record_table):
    """Where each tree family sits on Marsland's ordering spectrum."""
    workloads = {
        "uniform-random": SearchProblem(RandomGameTree(4, 5, seed=3), depth=5),
        "incremental": SearchProblem(IncrementalGameTree(4, 5, seed=3, noise=0.0), depth=5),
        "best-first": SearchProblem(SyntheticOrderedTree(4, 5, seed=3), depth=5),
        "othello": SearchProblem(Othello(), depth=4),
    }

    def run():
        rows = {}
        for name, problem in workloads.items():
            quality = ordering_quality(problem, sample_plies=2, static_sort=True)
            profile = branching_profile(problem, sample_plies=2)
            rows[name] = (quality, profile)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{name:16s} first-best={q.first_is_best:.2f} "
        f"best-in-quarter={q.best_in_first_quarter:.2f} "
        f"strongly-ordered={q.strongly_ordered} "
        f"branching={p.min_branching}..{p.max_branching}"
        for name, (q, p) in rows.items()
    )
    benchmark.extra_info["first_is_best"] = {
        k: round(v[0].first_is_best, 2) for k, v in rows.items()
    }
    record_table("extension_ordering_spectrum", text)

    assert rows["best-first"][0].strongly_ordered
    assert not rows["uniform-random"][0].strongly_ordered
    assert rows["incremental"][0].first_is_best > rows["uniform-random"][0].first_is_best


def test_negascout_vs_alphabeta_vs_er(benchmark, record_table):
    """Minimal-window search on ordered and unordered trees."""
    ordered = SearchProblem(
        IncrementalGameTree(4, 7, seed=2, noise=0.2), depth=7, sort_below_root=7
    )
    unordered = SearchProblem(RandomGameTree(4, 7, seed=2), depth=7)

    def run():
        rows = {}
        for name, problem in (("ordered", ordered), ("unordered", unordered)):
            ab = alphabeta(problem)
            ns = negascout(problem)
            er = er_search(problem)
            assert ab.value == ns.value == er.value
            rows[name] = (ab.stats.leaf_evals, ns.stats.leaf_evals, er.stats.leaf_evals)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{name:10s} leaves: alpha-beta={ab} negascout={ns} serial-ER={er}"
        for name, (ab, ns, er) in rows.items()
    )
    benchmark.extra_info["rows"] = {k: list(v) for k, v in rows.items()}
    record_table("extension_negascout", text)

    # Scout probes pay on the ordered tree.
    assert rows["ordered"][1] <= rows["ordered"][0] * 1.05


def test_transposition_iterative_deepening(benchmark, record_table):
    """TT iterative deepening on tic-tac-toe (heavy transpositions)."""
    problem = SearchProblem(TicTacToe(), depth=7)

    def run():
        cold = alphabeta(problem)
        table = TranspositionTable()
        tt = alphabeta_tt(problem, table)
        deepened = iterative_deepening(problem)
        assert cold.value == tt.value == deepened.value
        return cold.stats.nodes_generated, tt.stats.nodes_generated, table.hits

    cold_nodes, tt_nodes, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cold_nodes"] = cold_nodes
    benchmark.extra_info["tt_nodes"] = tt_nodes
    benchmark.extra_info["tt_hits"] = hits
    record_table(
        "extension_transposition",
        f"tic-tac-toe depth 7: cold alpha-beta nodes={cold_nodes}, "
        f"TT alpha-beta nodes={tt_nodes}, table hits={hits}",
    )
    assert tt_nodes < cold_nodes
    assert hits > 0
