"""Section 4 baseline claims, each regenerated and shape-checked.

* §4.1 (Baudet): parallel aspiration speedup is bounded (paper: 5-6)
  regardless of processor count; 2-3 processors can beat efficiency 1.
* §4.2 (Akl et al.): MWF speedup plateaus (paper: near 6 past ~10
  processors) — extra processors only starve.
* §4.3 (Fishburn): tree-splitting achieves near-linear speedup on
  worst-first trees but only ~c*sqrt(k) on best-first trees.
* §4.4 (Marsland): pv-splitting efficiency decays rapidly with k on
  strongly ordered trees.
* §1 straw man: naive root splitting drowns in speculative loss —
  parallel ER dominates it.
"""

from __future__ import annotations

import math

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.games.base import SearchProblem
from repro.games.random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
)
from repro.parallel import (
    mwf,
    naive_split,
    parallel_aspiration,
    pv_splitting,
    tree_splitting,
)
from repro.search.alphabeta import alphabeta

SWEEP = (1, 2, 4, 8, 16, 32)


def _speedups(problem, algo, serial_cost, counts=SWEEP, **kwargs):
    return {k: algo(problem, k, **kwargs).speedup(serial_cost) for k in counts}


def test_aspiration_speedup_plateau(benchmark, record_table):
    problem = SearchProblem(IncrementalGameTree(4, 8, seed=2, noise=0.5), depth=8)
    serial = alphabeta(problem).stats.cost

    speedups = benchmark.pedantic(
        lambda: _speedups(problem, parallel_aspiration, serial), rounds=1, iterations=1
    )
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in speedups.items()}
    record_table(
        "baseline_aspiration",
        "\n".join(f"k={k:2d} speedup={v:.2f}" for k, v in speedups.items()),
    )
    assert speedups[4] > speedups[1]
    # The plateau: 16 -> 32 processors gains under 50%.
    assert speedups[32] < speedups[16] * 1.5
    # And the plateau is low in absolute terms (paper: 5-6).
    assert speedups[32] < 8.0


def test_mwf_speedup_plateau(benchmark, record_table):
    problem = SearchProblem(RandomGameTree(8, 4, seed=5), depth=4)
    serial = alphabeta(problem, deep_cutoffs=False).stats.cost

    speedups = benchmark.pedantic(
        lambda: _speedups(problem, mwf, serial), rounds=1, iterations=1
    )
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in speedups.items()}
    record_table(
        "baseline_mwf",
        "\n".join(f"k={k:2d} speedup={v:.2f}" for k, v in speedups.items()),
    )
    assert speedups[4] > speedups[1]
    assert speedups[32] < speedups[16] * 1.15  # hard plateau
    assert speedups[32] < 8.0


def test_tree_splitting_sqrt_k_on_best_first(benchmark, record_table):
    tree = SyntheticOrderedTree(4, 8, seed=3)
    problem = SearchProblem(tree, depth=8)
    serial = alphabeta(problem).stats.cost
    counts = (3, 7, 15, 31)

    speedups = benchmark.pedantic(
        lambda: _speedups(problem, tree_splitting, serial, counts=counts),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in speedups.items()}
    record_table(
        "baseline_treesplit",
        "\n".join(
            f"k={k:2d} speedup={v:.2f} sqrt(k)={math.sqrt(k):.2f}" for k, v in speedups.items()
        ),
    )
    for k, s in speedups.items():
        assert 0.25 < s / math.sqrt(k) < 1.6, (k, s)
    # Efficiency falls like 1/sqrt(k): it must drop from k=3 to k=31.
    assert speedups[31] / 31 < 0.6 * speedups[3] / 3


def test_tree_splitting_near_linear_on_worst_first(benchmark):
    tree = SyntheticOrderedTree(4, 6, seed=3, best_child="last")
    problem = SearchProblem(tree, depth=6)
    serial = alphabeta(problem).stats.cost

    result = benchmark.pedantic(
        lambda: tree_splitting(problem, 21, branching=4), rounds=1, iterations=1
    )
    speedup = result.speedup(serial)
    benchmark.extra_info["speedup_at_21"] = round(speedup, 2)
    assert speedup > 5.0


def test_pv_splitting_efficiency_decay(benchmark, record_table):
    tree = IncrementalGameTree(6, 6, seed=4, noise=0.3)
    problem = SearchProblem(tree, depth=6, sort_below_root=6)
    serial = alphabeta(problem).stats.cost
    counts = (1, 3, 7, 15)

    effs = benchmark.pedantic(
        lambda: {
            k: pv_splitting(problem, k).efficiency(serial) for k in counts
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["efficiency"] = {k: round(v, 3) for k, v in effs.items()}
    record_table(
        "baseline_pvsplit",
        "\n".join(f"k={k:2d} efficiency={v:.3f}" for k, v in effs.items()),
    )
    assert effs[3] > effs[15]


def test_er_dominates_naive_split(benchmark, record_table):
    problem = SearchProblem(RandomGameTree(4, 7, seed=31), depth=7)
    serial = alphabeta(problem).stats.cost

    def run():
        er = parallel_er(problem, 8, config=ERConfig(serial_depth=4))
        naive = naive_split(problem, 8)
        return er.speedup(serial), naive.speedup(serial)

    er_speedup, naive_speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["er_speedup"] = round(er_speedup, 2)
    benchmark.extra_info["naive_speedup"] = round(naive_speedup, 2)
    record_table(
        "baseline_naive",
        f"P=8: ER speedup={er_speedup:.2f}, naive root-split speedup={naive_speedup:.2f}",
    )
    assert er_speedup > naive_speedup
