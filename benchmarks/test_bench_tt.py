"""Transposition-table extension benchmark: what sharing buys.

The paper's processors share only the game tree and its queues; this
exhibit measures the extension where they also share proven subtree
values.  One table persists across the whole processor sweep, so each
run answers from what earlier runs proved — nodes examined must collapse
while every root value stays equal to the table-off run.  The private
mode isolates how much of that saving needs *sharing* rather than mere
caching: per-worker tables never see each other's stores.
"""

from __future__ import annotations

from repro.analysis.experiments import er_config_for
from repro.cache import make_tt
from repro.core.er_parallel import parallel_er
from repro.workloads.suite import table3_suite

COUNTS = (1, 2, 4)


def test_tt_modes(benchmark, scale, record_table):
    spec = table3_suite(scale)["R3"]
    problem = spec.problem()
    config = er_config_for(spec)

    def run():
        rows = {}
        for mode in ("off", "private", "shared"):
            tt = make_tt(mode)
            nodes = []
            values = set()
            for count in COUNTS:
                result = parallel_er(problem, count, config=config, tt=tt)
                nodes.append(result.stats.nodes_examined)
                values.add(result.value)
            counters = tt.counter_snapshot() if tt is not None else {}
            rows[mode] = (nodes, values, counters)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for mode, (nodes, values, counters) in rows.items():
        per_count = "  ".join(
            f"P={count}:{n}" for count, n in zip(COUNTS, nodes)
        )
        hits = counters.get("tt_hits", 0)
        lines.append(f"{mode:8s} value={next(iter(values)):g}  {per_count}  hits={hits}")
    record_table("tt_modes", "\n".join(lines))
    benchmark.extra_info["nodes"] = {mode: row[0] for mode, row in rows.items()}

    # Every mode answers the same root value at every processor count.
    reference = rows["off"][1]
    assert len(reference) == 1
    for mode, (_nodes, values, _counters) in rows.items():
        assert values == reference, mode

    # The persistent shared table turns the later sweep runs into cache
    # replays: strictly fewer nodes than table-off at the same count.
    assert rows["shared"][0][-1] < rows["off"][0][-1]
    assert rows["shared"][2]["tt_hits"] > 0
    # Sharing sees at least the hits private does on the same schedule.
    assert rows["shared"][0][-1] <= rows["private"][0][-1]


def test_tt_serial_warm_replay(benchmark, scale, record_table):
    """Serial ER with a warm table: the floor of the cache effect, with
    no parallel scheduling in the way."""
    from repro.core.serial_er import er_search
    from repro.search.stats import SearchStats
    from repro.search.transposition import TranspositionTable

    spec = table3_suite(scale)["R3"]
    problem = spec.problem()

    def run():
        table = TranspositionTable(capacity=1 << 16)
        cold_stats = SearchStats()
        cold = er_search(problem, stats=cold_stats, table=table)
        warm_stats = SearchStats()
        warm = er_search(problem, stats=warm_stats, table=table)
        return cold, cold_stats, warm, warm_stats

    cold, cold_stats, warm, warm_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert warm.value == cold.value
    assert warm_stats.nodes_examined < cold_stats.nodes_examined
    record_table(
        "tt_serial_replay",
        f"cold nodes={cold_stats.nodes_examined} "
        f"warm nodes={warm_stats.nodes_examined} value={warm.value:g}",
    )
    benchmark.extra_info["cold_nodes"] = cold_stats.nodes_examined
    benchmark.extra_info["warm_nodes"] = warm_stats.nodes_examined
