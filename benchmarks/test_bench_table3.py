"""Table 3: characterize the six experimental trees.

Regenerates the tree inventory with measured serial work for each —
the foundation every figure's speedups are computed against.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import serial_baselines
from repro.workloads.suite import table3_suite

TREES = ("R1", "R2", "R3", "O1", "O2", "O3")


@pytest.mark.parametrize("tree", TREES)
def test_table3_tree(benchmark, scale, record_table, tree):
    spec = table3_suite(scale)[tree]

    base = benchmark.pedantic(lambda: serial_baselines(spec), rounds=1, iterations=1)

    row = (
        f"{spec.name}  {spec.kind:8s} depth={spec.search_depth} serial={spec.serial_depth}  "
        f"AB: cost={base.alphabeta.cost:.0f} nodes={base.alphabeta.stats.nodes_generated}  "
        f"ER: cost={base.er.cost:.0f} nodes={base.er.stats.nodes_generated}  "
        f"best={base.best_name}"
    )
    benchmark.extra_info["row"] = row
    benchmark.extra_info["scale"] = scale
    record_table(f"table3_{tree}_{scale}", row)

    # Both serial algorithms agree and did real work.
    assert base.alphabeta.value == base.er.value
    assert base.alphabeta.stats.leaf_evals > 0
