"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's exhibits (Table 3,
Figures 10-13, the Section 4 baseline claims, or a Section 5/8 ablation).
Benchmarks run the *reduced* workload scale by default; set
``REPRO_FULL=1`` for the paper-scale trees (minutes instead of seconds).

Each benchmark stores the regenerated rows in ``benchmark.extra_info``
(visible in ``--benchmark-verbose``/JSON output) and appends them to
``benchmarks/results/<name>.txt`` so the numbers that back EXPERIMENTS.md
are regenerated on every run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads.suite import bench_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture()
def record_table():
    """Write a rendered table to benchmarks/results/<name>.txt."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write
