"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's exhibits (Table 3,
Figures 10-13, the Section 4 baseline claims, or a Section 5/8 ablation).
Benchmarks run the *reduced* workload scale by default; set
``REPRO_FULL=1`` for the paper-scale trees (minutes instead of seconds).

Each benchmark stores the regenerated rows in ``benchmark.extra_info``
(visible in ``--benchmark-verbose``/JSON output) and rewrites them to
``benchmarks/results/<name>.txt`` so the numbers that back EXPERIMENTS.md
are regenerated on every run (one file per exhibit, overwritten in
place — the files are committed, so history lives in git).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads.suite import bench_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session", autouse=True)
def refresh_bench_obs():
    """Always (re)write ``BENCH_obs.json`` from the committed ledger.

    Individual benchmarks refresh the aggregate as they write records,
    but a partial run (``-k``, a crash, or a session with no ledger
    benchmarks selected) must still leave the top-level aggregate
    consistent with ``results/ledger/`` — CI publishes the file as the
    per-PR makespan/nodes/efficiency series.  Re-aggregating once more
    at session end makes the rewrite unconditional.
    """
    yield
    from repro.obs import ledger

    root = RESULTS_DIR.parent.parent
    directory = root / "results" / "ledger"
    if directory.is_dir():
        ledger.aggregate(directory, out_path=root / "BENCH_obs.json")


@pytest.fixture()
def record_table():
    """Write a rendered table to benchmarks/results/<name>.txt."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture()
def record_ledger():
    """Write a run-ledger record and refresh the top-level BENCH_obs.json.

    Benchmarks hand in the :class:`repro.obs.snapshot.Snapshot` of a run
    they already made; the fixture validates it, appends it to
    ``results/ledger/`` (named by backend/workload/P/git SHA, so reruns
    at the same SHA overwrite in place), and re-aggregates the whole
    ledger into ``BENCH_obs.json`` at the repo root.
    """
    from repro.obs import ledger

    root = RESULTS_DIR.parent.parent
    directory = root / "results" / "ledger"

    def write(snap, *, workload, scale, seed=None, config=None, service=None, latency=None):
        record = ledger.make_record(
            snap,
            workload=workload,
            scale=scale,
            seed=seed,
            config=config,
            service=service,
            latency=latency,
        )
        problems = ledger.validate_record(record)
        assert problems == [], "\n".join(problems)
        path = ledger.write_record(record, directory)
        ledger.aggregate(directory, out_path=root / "BENCH_obs.json")
        return path

    return write


@pytest.fixture()
def record_scaling(record_table):
    """Write a wall-clock scaling run as one fig10-13-format file per
    processor count: ``benchmarks/results/<prefix>_P{n}.txt``."""
    from repro.parallel.multiproc import format_scaling_table

    def write(prefix: str, tree_name: str, serial_seconds: float, points) -> None:
        for point in points:
            record_table(
                f"{prefix}_P{point.n_workers}",
                format_scaling_table(tree_name, serial_seconds, [point]),
            )

    return write
