"""Serial algorithm benchmarks: the Section 2.2 formula and the Section 7
serial-ER-versus-alpha-beta comparison (including the O1 anomaly and the
odd/even depth parity the paper's R2 result reflects)."""

from __future__ import annotations

import pytest

from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree, SyntheticOrderedTree
from repro.search.alphabeta import alphabeta
from repro.search.minimal_tree import minimal_leaf_count_formula
from repro.workloads.suite import table3_suite


@pytest.mark.parametrize("degree,height", [(4, 6), (8, 4), (2, 10)])
def test_minimal_tree_on_best_first_order(benchmark, degree, height):
    """Section 2.2: best-first alpha-beta visits d^ceil(h/2)+d^floor(h/2)-1
    leaves — measured, not just proved."""
    tree = SyntheticOrderedTree(degree, height, seed=0)
    problem = SearchProblem(tree, depth=height)

    result = benchmark.pedantic(lambda: alphabeta(problem), rounds=1, iterations=1)

    expected = minimal_leaf_count_formula(degree, height)
    benchmark.extra_info["leaves"] = result.stats.leaf_evals
    benchmark.extra_info["formula"] = expected
    assert result.stats.leaf_evals == expected


@pytest.mark.parametrize("degree", [2, 4, 8])
def test_alphabeta_branching_factor_on_random_trees(benchmark, degree, record_table):
    """Baudet's branching-factor regime (the paper's [Baudet1978a]).

    On random trees with distinct leaf values, alpha-beta's effective
    branching factor sits strictly between sqrt(d) (the best-first bound)
    and d (no pruning).  Measured as the growth ratio of leaf counts
    between consecutive depths, averaged over two depth steps.
    """
    import math

    from repro.games.base import SearchProblem
    from repro.games.random_tree import RandomGameTree

    base_depth = {2: 8, 4: 6, 8: 4}[degree]
    steps = 4  # two full odd/even parity periods

    def run():
        # Alpha-beta's growth ratio alternates with depth parity, so
        # average counts over seeds and growth over whole parity periods.
        leaves = []
        for depth in range(base_depth, base_depth + steps + 1):
            total = 0
            for seed in (3, 7, 11):
                problem = SearchProblem(
                    RandomGameTree(degree, depth, seed=seed), depth=depth
                )
                total += alphabeta(problem).stats.leaf_evals
            leaves.append(total / 3)
        return (leaves[-1] / leaves[0]) ** (1.0 / steps)

    factor = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["branching_factor"] = round(factor, 2)
    benchmark.extra_info["sqrt_d"] = round(math.sqrt(degree), 2)
    record_table(
        f"branching_factor_d{degree}",
        f"degree {degree}: measured {factor:.2f}, bounds [{math.sqrt(degree):.2f}, {degree}]",
    )
    assert math.sqrt(degree) < factor < degree


@pytest.mark.parametrize("tree", ["R1", "R2", "R3", "O1", "O2", "O3"])
def test_serial_er_vs_alphabeta(benchmark, scale, record_table, tree):
    """Section 7: serial ER versus alpha-beta per tree.

    The paper found serial ER faster on all Othello trees and on R2 (the
    odd-depth random tree).  With this reproduction's evaluator the
    Othello anomaly does not flip (see EXPERIMENTS.md), but the parity
    effect does: ER is relatively strongest on the odd-depth tree.
    """
    spec = table3_suite(scale)[tree]

    def run():
        ab = alphabeta(spec.problem())
        er = er_search(spec.problem())
        return ab, er

    ab, er = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = er.stats.cost / ab.stats.cost
    row = (
        f"{tree}: AB cost={ab.stats.cost:.0f} nodes={ab.stats.nodes_generated} "
        f"ord_evals={ab.stats.ordering_evals} | ER cost={er.stats.cost:.0f} "
        f"nodes={er.stats.nodes_generated} ord_evals={er.stats.ordering_evals} "
        f"| ER/AB={ratio:.3f}"
    )
    benchmark.extra_info["row"] = row
    record_table(f"serial_{tree}_{scale}", row)

    assert ab.value == er.value
    # The two algorithms are within a small constant of each other —
    # neither blows up (the paper's Figures 12-13 leftmost bars).
    assert 0.5 < ratio < 2.5


def test_odd_depth_parity_favours_er(benchmark, record_table):
    """The paper's R2 observation: serial ER is relatively better on
    odd search depths (its elder-grandchild ordering pays at odd parity)."""

    def run():
        even = SearchProblem(RandomGameTree(4, 8, seed=101), depth=8)
        odd = SearchProblem(RandomGameTree(4, 9, seed=101), depth=9)
        ratio_even = er_search(even).cost / alphabeta(even).cost
        ratio_odd = er_search(odd).cost / alphabeta(odd).cost
        return ratio_even, ratio_odd

    ratio_even, ratio_odd = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["er_over_ab_even_depth"] = round(ratio_even, 3)
    benchmark.extra_info["er_over_ab_odd_depth"] = round(ratio_odd, 3)
    record_table(
        "serial_parity",
        f"ER/AB cost ratio: depth 8 (even) = {ratio_even:.3f}, depth 9 (odd) = {ratio_odd:.3f}",
    )
    assert ratio_odd < ratio_even
