"""Instrumentation-overhead budget of the live wall-clock tracing.

Tracing that distorts the run it measures is worse than no tracing, so
the budget is asserted, not assumed: each measurement round runs the
same multiproc workload untraced, sampled, and fully traced
back-to-back, and the traced/untraced ratio is taken *within* the
round (temporally adjacent runs see the same machine load, so slow
drift in a shared-CPU environment cancels).  Run-to-run wall noise on
shared CI hardware is itself several percent — comparable to the 5 %
budget — so the *minimum* per-round ratio carries the assertion: noise
only ever inflates a ratio, so the least-contaminated round is the
best estimate of the intrinsic overhead.  The median ratio is reported
alongside for drift-watching.  The wall-clock check is complemented by
the rings' *self-measured* recording cost
(:attr:`repro.obs.live.SpanRing.self_cost_seconds`, shipped into
``LiveTrace.self_cost_seconds``), which is noise-free and asserted
against each mode's own allowance — a recording-cost regression fails
there even if wall noise masks it.

``sampled`` mode — the production default for live viewing, whose
stride exists precisely to keep the hot probe/task loop cheap — must
stay within 5 % of the untraced wall time.  ``full`` mode records
every span (one per TT probe, thousands per second on this all-cache
workload) and is held to a looser regression backstop; its exact ratio
is reported so drift is visible.
"""

from __future__ import annotations

import statistics

from repro.core.er_parallel import ERConfig
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.obs import live
from repro.parallel.multiproc import MultiprocResult, multiproc_er

#: Sampled-mode wall time may exceed untraced by at most this factor.
OVERHEAD_BUDGET = 1.05

#: Full-fidelity tracing backstop: every TT/eval probe records a span,
#: so some cost is expected; regressions past this factor fail.
FULL_BACKSTOP = 1.25

#: Interleaved measurement rounds (median of per-round ratios taken).
ROUNDS = 7

_WORKERS = 2


def _workload(scale: str) -> tuple[SearchProblem, ERConfig]:
    height = 9 if scale == "paper" else 8
    problem = SearchProblem(RandomGameTree(4, height, seed=101), depth=height)
    return problem, ERConfig(serial_depth=height - 5, max_e_children=1)


def _run(problem: SearchProblem, config: ERConfig, trace: str) -> MultiprocResult:
    return multiproc_er(
        problem, _WORKERS, config=config, tt_mode="shared", trace=trace
    )


def test_trace_overhead_within_budget(benchmark, scale, record_table):
    problem, config = _workload(scale)

    walls: dict[str, list[float]] = {
        live.TRACE_OFF: [],
        live.TRACE_SAMPLED: [],
        live.TRACE_FULL: [],
    }
    last: dict[str, MultiprocResult] = {}

    def measure() -> None:
        for mode in walls:  # warm the pool and the page cache once per arm
            walls[mode].clear()
            _run(problem, config, mode)
        for _ in range(ROUNDS):
            for mode in walls:
                result = _run(problem, config, mode)
                walls[mode].append(result.wall_time)
                last[mode] = result

    benchmark.pedantic(measure, rounds=1, iterations=1)

    untraced = statistics.median(walls[live.TRACE_OFF])
    sampled = statistics.median(walls[live.TRACE_SAMPLED])
    full = statistics.median(walls[live.TRACE_FULL])
    sampled_rounds = [
        s / u for s, u in zip(walls[live.TRACE_SAMPLED], walls[live.TRACE_OFF])
    ]
    full_rounds = [
        f / u for f, u in zip(walls[live.TRACE_FULL], walls[live.TRACE_OFF])
    ]
    sampled_ratio = min(sampled_rounds)
    full_ratio = min(full_rounds)
    sampled_median = statistics.median(sampled_rounds)
    full_median = statistics.median(full_rounds)
    trace = last[live.TRACE_FULL].trace
    sampled_trace = last[live.TRACE_SAMPLED].trace
    assert trace is not None and sampled_trace is not None
    self_fraction = trace.overhead_fraction(walls[live.TRACE_FULL][-1])
    sampled_self = sampled_trace.overhead_fraction(walls[live.TRACE_SAMPLED][-1])

    benchmark.extra_info["untraced_s"] = round(untraced, 4)
    benchmark.extra_info["sampled_s"] = round(sampled, 4)
    benchmark.extra_info["full_s"] = round(full, 4)
    benchmark.extra_info["sampled_ratio"] = round(sampled_ratio, 4)
    benchmark.extra_info["full_ratio"] = round(full_ratio, 4)
    benchmark.extra_info["sampled_ratio_median"] = round(sampled_median, 4)
    benchmark.extra_info["full_ratio_median"] = round(full_median, 4)
    benchmark.extra_info["full_spans"] = len(trace.spans)
    benchmark.extra_info["full_dropped"] = trace.total_dropped
    benchmark.extra_info["self_cost_fraction"] = round(self_fraction, 5)
    benchmark.extra_info["sampled_self_cost_fraction"] = round(sampled_self, 5)
    record_table(
        "trace_overhead",
        "\n".join(
            [
                f"workload: random tree, P={_WORKERS}, tt=shared ({scale} scale)",
                f"untraced wall (median of {ROUNDS}): {untraced:.4f}s",
                f"sampled wall  (median of {ROUNDS}): {sampled:.4f}s  "
                f"(ratio min {sampled_ratio:.3f} / "
                f"median {sampled_median:.3f}, "
                f"budget {OVERHEAD_BUDGET:.2f})",
                f"full wall     (median of {ROUNDS}): {full:.4f}s  "
                f"(ratio min {full_ratio:.3f} / median {full_median:.3f}, "
                f"backstop {FULL_BACKSTOP:.2f})",
                f"full-mode spans: {len(trace.spans)}  "
                f"dropped: {trace.total_dropped}",
                f"self-measured recording cost: sampled {sampled_self:.2%}, "
                f"full {self_fraction:.2%} of wall",
            ]
        )
        + "\n",
    )

    assert sampled_ratio <= OVERHEAD_BUDGET, (
        f"sampled tracing cost {sampled_ratio:.3f}x the untraced wall time "
        f"(budget {OVERHEAD_BUDGET}x): untraced={untraced:.4f}s "
        f"sampled={sampled:.4f}s"
    )
    assert full_ratio <= FULL_BACKSTOP, (
        f"full tracing cost {full_ratio:.3f}x the untraced wall time "
        f"(backstop {FULL_BACKSTOP}x): untraced={untraced:.4f}s full={full:.4f}s"
    )
    # The rings' own accounting must agree with the wall-clock story:
    # each mode's self-measured recording cost within its allowance.
    assert sampled_self <= OVERHEAD_BUDGET - 1.0, (
        f"sampled rings self-report {sampled_self:.2%} recording cost, over "
        f"the {OVERHEAD_BUDGET - 1.0:.0%} budget"
    )
    assert self_fraction <= FULL_BACKSTOP - 1.0, (
        f"full rings self-report {self_fraction:.2%} recording cost, over "
        f"the {FULL_BACKSTOP - 1.0:.0%} backstop"
    )


def test_sampled_mode_records_fewer_spans(scale):
    problem, config = _workload("reduced")
    full = _run(problem, config, live.TRACE_FULL)
    sampled = _run(problem, config, live.TRACE_SAMPLED)
    assert full.trace is not None and sampled.trace is not None
    assert full.trace.spans
    assert len(sampled.trace.spans) < len(full.trace.spans)
    assert sampled.value == full.value
