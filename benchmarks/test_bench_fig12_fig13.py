"""Figures 12 and 13: nodes generated per algorithm and processor count.

Paper results being reproduced in *shape*:

* The 4-processor ER run examines substantially more nodes than serial
  ER (parallelism forces weaker windows at dispatch time).
* Past 4 processors the node count grows only slowly — speculative loss
  "increases moderately between 4 and 16 processors" even though ER does
  not greatly restrict speculative work (Section 7).

The runs are shared with the Figure 10/11 benchmarks through the
module-level curve cache, so the node counts come from the same sweeps
that produced the efficiency numbers — exactly as in the paper.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import cached_curve, format_nodes_table
from repro.workloads.suite import PROCESSOR_COUNTS

OTHELLO = ("O1", "O2", "O3")
RANDOM = ("R1", "R2", "R3")


def _run_nodes(benchmark, scale, record_table, tree, figure):
    curve = benchmark.pedantic(
        lambda: cached_curve(scale, tree, PROCESSOR_COUNTS), rounds=1, iterations=1
    )
    table = format_nodes_table({tree: curve})
    benchmark.extra_info["nodes"] = {
        p.n_processors: p.nodes_generated for p in curve.points
    }
    benchmark.extra_info["serial_ab_nodes"] = curve.serial.alphabeta.stats.nodes_generated
    benchmark.extra_info["serial_er_nodes"] = curve.serial.er.stats.nodes_generated
    record_table(f"fig{figure}_{tree}_{scale}", table)

    by_count = {p.n_processors: p for p in curve.points}
    serial_er_nodes = curve.serial.er.stats.nodes_generated
    # Shape assertions:
    # 1. 4-processor ER generates more nodes than serial ER.
    assert by_count[4].nodes_generated > serial_er_nodes
    # 2. Node growth from 4 to 16 processors is moderate (paper: "the
    #    number of nodes examined tends to grow slowly" past 4).
    assert by_count[16].nodes_generated < by_count[4].nodes_generated * 2.5
    return curve


@pytest.mark.parametrize("tree", OTHELLO)
def test_figure12_othello_nodes(benchmark, scale, record_table, tree):
    _run_nodes(benchmark, scale, record_table, tree, figure=12)


@pytest.mark.parametrize("tree", RANDOM)
def test_figure13_random_nodes(benchmark, scale, record_table, tree):
    _run_nodes(benchmark, scale, record_table, tree, figure=13)
