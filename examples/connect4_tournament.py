#!/usr/bin/env python3
"""A Connect Four round-robin between engine configurations.

Exercises the :mod:`repro.engine` layer: engines built over the same
game with different algorithms and depths play full games against each
other, demonstrating that the search algorithms are interchangeable
behind one interface and that extra depth (what a parallel speedup buys)
wins games.

Run:  python examples/connect4_tournament.py [--board 5x4]
"""

from __future__ import annotations

import argparse
import itertools

from repro.engine import EngineConfig, GameEngine, play_match
from repro.games.connect4 import ConnectFour


def result_string(game: ConnectFour, final, moves: int) -> str:
    if game.opponent_just_won(final):
        # The side that just moved won; moves is the total count.
        winner = "first" if moves % 2 == 1 else "second"
        return f"{winner} player wins in {moves} moves"
    return f"draw after {moves} moves"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--board", default="6x5", help="board size WIDTHxHEIGHT")
    args = parser.parse_args()
    width, height = (int(x) for x in args.board.lower().split("x"))
    game = ConnectFour(width=width, height=height)

    lineup = {
        "ab-depth2": EngineConfig(algorithm="alphabeta", max_depth=2),
        "ab-depth5": EngineConfig(algorithm="alphabeta", max_depth=5),
        "er-depth5": EngineConfig(algorithm="er", max_depth=5),
        "par-er-d5": EngineConfig(
            algorithm="parallel-er", max_depth=5, n_processors=4
        ),
    }

    print(f"Connect Four {width}x{height} round-robin\n")
    scores = {name: 0.0 for name in lineup}
    for (name_a, cfg_a), (name_b, cfg_b) in itertools.permutations(lineup.items(), 2):
        result = play_match(
            game, GameEngine(game, cfg_a), GameEngine(game, cfg_b), max_moves=width * height
        )
        final = result.final_position
        verdict = result_string(game, final, result.moves)
        print(f"{name_a:>12} (first) vs {name_b:<12} -> {verdict}")
        if game.opponent_just_won(final):
            winner = name_a if result.moves % 2 == 1 else name_b
            scores[winner] += 1.0
        else:
            scores[name_a] += 0.5
            scores[name_b] += 0.5

    print("\nstandings:")
    for name, score in sorted(scores.items(), key=lambda kv: -kv[1]):
        print(f"  {name:>12}: {score:.1f}")
    print("\nthings to notice:")
    print(" - engines at equal depth draw every mirror game exactly: alpha-beta,")
    print("   serial ER, and parallel ER compute identical values, so the")
    print("   algorithm is fully interchangeable behind the engine interface;")
    print(" - search depth parity changes results (odd vs even horizons end on")
    print("   different players' evaluations) — the same odd/even sensitivity")
    print("   the paper's serial R2 measurement reflects;")
    print(" - deeper search with a myopic evaluator is not automatically")
    print("   stronger (the classic minimax-pathology observation): what the")
    print("   parallel speedup really buys is depth at fixed *wall time*,")
    print("   which pays off exactly when the evaluator rewards depth.")


if __name__ == "__main__":
    main()
