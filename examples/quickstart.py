#!/usr/bin/env python3
"""Quickstart: the library in ninety seconds.

1. Search a complete game (tic-tac-toe) with negmax — the paper's
   Figure 1: optimal play is a draw.
2. Search a random game tree with alpha-beta and serial ER, which agree
   exactly but do different amounts of work.
3. Run parallel ER on simulated processors and watch the speedup.

Run:  python examples/quickstart.py
"""

from repro import ERConfig, SearchProblem, alphabeta, er_search, negamax, parallel_er
from repro.games import RandomGameTree, TicTacToe


def figure_one() -> None:
    print("=" * 60)
    print("Figure 1: tic-tac-toe under optimal play")
    print("=" * 60)
    problem = SearchProblem(TicTacToe(), depth=9)
    result = alphabeta(problem)
    verdict = {1.0: "first player wins", 0.0: "a draw", -1.0: "second player wins"}
    print(f"root value {result.value:+.0f}: optimal play is {verdict[result.value]}")
    print(f"(alpha-beta evaluated {result.stats.leaf_evals} terminal positions)\n")


def serial_comparison() -> SearchProblem:
    print("=" * 60)
    print("Serial search: alpha-beta vs ER on a random game tree")
    print("=" * 60)
    problem = SearchProblem(RandomGameTree(degree=4, height=8, seed=7), depth=8)
    nm = negamax(problem)
    ab = alphabeta(problem)
    er = er_search(problem)
    assert nm.value == ab.value == er.value
    print(f"negmax     : value {nm.value:8.0f}   {nm.stats.leaf_evals:>8} leaves")
    print(f"alpha-beta : value {ab.value:8.0f}   {ab.stats.leaf_evals:>8} leaves")
    print(f"serial ER  : value {er.value:8.0f}   {er.stats.leaf_evals:>8} leaves")
    print("all three agree; pruning skipped "
          f"{100 * (1 - ab.stats.leaf_evals / nm.stats.leaf_evals):.0f}% of the tree\n")
    return problem


def parallel_speedup(problem: SearchProblem) -> None:
    print("=" * 60)
    print("Parallel ER on simulated processors")
    print("=" * 60)
    serial_time = min(alphabeta(problem).cost, er_search(problem).cost)
    config = ERConfig(serial_depth=5)  # serial ER below ply 5, as in Table 3
    print(f"{'procs':>6} {'sim time':>12} {'speedup':>8} {'efficiency':>11}")
    for n in (1, 2, 4, 8, 16):
        result = parallel_er(problem, n, config=config)
        print(
            f"{n:>6} {result.sim_time:>12.0f} {result.speedup(serial_time):>8.2f} "
            f"{result.efficiency(serial_time):>11.2f}"
        )
    print("\nefficiency declines with more processors (starvation, contention,")
    print("speculative loss — see examples/loss_anatomy.py for the breakdown)")


if __name__ == "__main__":
    figure_one()
    problem = serial_comparison()
    parallel_speedup(problem)
