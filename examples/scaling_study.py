#!/usr/bin/env python3
"""Scaling study: regenerate the paper's Figures 10-13 as ASCII charts.

Sweeps parallel ER over 1-16 simulated processors on the Table 3 trees
and plots efficiency (Figures 10-11) and nodes generated (Figures 12-13)
in the terminal.

Run:  python examples/scaling_study.py [--scale reduced|paper] [--trees R1 O1 ...]
"""

from __future__ import annotations

import argparse

from repro.analysis.experiments import cached_curve, format_speedup_summary
from repro.workloads.suite import PROCESSOR_COUNTS, table3_suite


def ascii_chart(series: list[tuple[int, float]], width: int = 44, label: str = "") -> str:
    peak = max(value for _, value in series) or 1.0
    lines = []
    for x, value in series:
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"  P={x:<3d} {bar} {value:.3f}" if isinstance(value, float)
                      else f"  P={x:<3d} {bar} {value}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    parser.add_argument(
        "--trees", nargs="*", default=["R1", "R3", "O1"],
        choices=["R1", "R2", "R3", "O1", "O2", "O3"],
    )
    args = parser.parse_args()

    suite = table3_suite(args.scale)
    curves = {}
    for tree in args.trees:
        spec = suite[tree]
        print(f"running {tree} ({spec.description}) at {args.scale} scale ...")
        curves[tree] = cached_curve(args.scale, tree, PROCESSOR_COUNTS)

    for tree, curve in curves.items():
        figure = "10" if tree.startswith("O") else "11"
        print(f"\n── Figure {figure}-style efficiency, tree {tree} "
              f"(serial AB eff = {curve.serial.alphabeta_efficiency:.3f})")
        print(ascii_chart(curve.efficiency_series()))
        figure = "12" if tree.startswith("O") else "13"
        print(f"\n── Figure {figure}-style nodes generated, tree {tree} "
              f"(serial AB = {curve.serial.alphabeta.stats.nodes_generated}, "
              f"serial ER = {curve.serial.er.stats.nodes_generated})")
        nodes = [(n, float(v)) for n, v in curve.nodes_series()]
        print(ascii_chart(nodes))

    print("\n" + format_speedup_summary(curves))
    print("\npaper reference points (16 processors):")
    print("  random trees : speedup 9.8-11.2, efficiency 0.61-0.70")
    print("  Othello trees: speedup 6.7-10.6, efficiency 0.42-0.66")


if __name__ == "__main__":
    main()
