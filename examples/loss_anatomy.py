#!/usr/bin/env python3
"""Anatomy of imperfect efficiency (the paper's Section 3.1).

For one tree, decompose each processor-count's time budget into useful
work, starvation (idle, empty heap), and interference (lock waits), and
separately measure speculative loss (nodes serial alpha-beta would never
examine).  Rendered as ASCII stacked bars.

Run:  python examples/loss_anatomy.py [--tree R1] [--scale reduced]
"""

from __future__ import annotations

import argparse

from repro import ERConfig, alphabeta, loss_report, parallel_er
from repro.analysis.experiments import er_config_for, serial_baselines
from repro.search.stats import SearchStats
from repro.workloads.suite import table3_suite


def stacked_bar(useful: float, starve: float, interfere: float, width: int = 50) -> str:
    u = round(width * useful)
    s = round(width * starve)
    i = max(0, width - u - s)
    return "#" * u + "." * s + "!" * i


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tree", default="R1", choices=["R1", "R2", "R3", "O1", "O2", "O3"])
    parser.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    args = parser.parse_args()

    spec = table3_suite(args.scale)[args.tree]
    problem = spec.problem()
    print(f"tree {spec.name}: {spec.description} ({args.scale} scale)")
    print("reference: serial alpha-beta (defines mandatory work, Section 3.1)\n")

    reference = SearchStats.with_trace()
    alphabeta(problem, stats=reference)
    base = serial_baselines(spec)

    print(f"{'P':>3} {'efficiency':>10} {'specul.':>8}  "
          f"time budget  [# useful  . starving  ! lock-blocked]")
    for n in (1, 2, 4, 8, 16):
        result = parallel_er(problem, n, config=er_config_for(spec), trace=True)
        report = loss_report(result, base.best_time, reference)
        useful = result.report.utilization
        bar = stacked_bar(useful, report.starvation_fraction, report.interference_fraction)
        print(f"{n:>3} {report.efficiency:>10.3f} {report.speculative_fraction:>7.1%}  {bar}")

    print("\nreading the paper's Section 7 in the bars:")
    print("  - useful share shrinks as P grows, but much of the 'useful' work")
    print("    at high P is speculative (the column on the left);")
    print("  - starvation appears when the mandatory frontier is thinner than P;")
    print("  - lock blocking grows with P (contention for heap and tree).")

    # And the same story per processor over time, as a schedule chart.
    from repro.analysis.gantt import render_gantt

    print("\nschedule of the 8-processor run:")
    timed = parallel_er(
        problem, 8, config=er_config_for(spec), record_timeline=True
    )
    print(render_gantt(timed.report, width=68))


if __name__ == "__main__":
    main()
