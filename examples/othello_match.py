#!/usr/bin/env python3
"""An Othello match: parallel-ER engine versus alpha-beta engine.

Black picks moves with parallel ER on 8 simulated processors; White uses
serial alpha-beta at the same depth.  The full game is played out with
boards rendered every ten moves, demonstrating the Othello substrate
(move generation, passes, game end, evaluation) end to end.

Run:  python examples/othello_match.py [--depth 3] [--quiet]
"""

from __future__ import annotations

import argparse

from repro import ERConfig, SearchProblem, alphabeta, parallel_er
from repro.games.base import RootedGame
from repro.games.othello import Othello, OthelloPosition, START
from repro.games.othello import board as B


def pick_move(position: OthelloPosition, depth: int, use_er: bool) -> tuple[int, float]:
    """Return (move index, value) for the side to move."""
    game = Othello(position)
    children = game.children(position)
    if len(children) == 1:  # forced pass or single reply
        return 0, 0.0
    best_index, best_value = 0, float("-inf")
    for index, child in enumerate(children):
        if use_er:
            # The parallel speedup buys ER one extra ply in the same
            # simulated time budget — the practical payoff of the paper.
            problem = SearchProblem(RootedGame(game, child), depth=depth + 1, sort_below_root=2)
            value = -parallel_er(problem, 8, config=ERConfig(serial_depth=1)).value
        else:
            problem = SearchProblem(RootedGame(game, child), depth=depth, sort_below_root=2)
            value = -alphabeta(problem).value
        if value > best_value:
            best_index, best_value = index, value
    return best_index, best_value


def describe_move(position: OthelloPosition, child: OthelloPosition) -> str:
    placed = (child.black | child.white) & ~(position.black | position.white)
    if placed == 0:
        return "pass"
    return B.square_name(placed)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=3, help="search depth per move")
    parser.add_argument("--quiet", action="store_true", help="suppress boards")
    args = parser.parse_args()

    game = Othello()
    position = START
    move_number = 0
    print("Black: parallel ER (8 simulated processors)   White: serial alpha-beta")
    while True:
        children = game.children(position)
        if not children:
            break
        is_black = position.color == 0
        index, _ = pick_move(position, args.depth, use_er=is_black)
        chosen = children[index]
        move_number += 1
        mover = "black(ER)" if is_black else "white(AB)"
        print(f"move {move_number:2d}: {mover} plays {describe_move(position, chosen)}")
        position = chosen
        if not args.quiet and move_number % 10 == 0:
            print(Othello.render(position))

    black, white = position.black.bit_count(), position.white.bit_count()
    print("\nfinal position:")
    print(Othello.render(position))
    print(f"\nscore — black(ER): {black}, white(AB): {white}")
    if black > white:
        print("parallel ER wins")
    elif white > black:
        print("alpha-beta wins")
    else:
        print("a draw")


if __name__ == "__main__":
    main()
