#!/usr/bin/env python3
"""Head-to-head comparison of every parallel algorithm in the package.

The paper's Section 8 names this as future work: "We are currently
working on reimplementing some of the more important existing
algorithms, which will allow direct comparison."  With every algorithm
on the same simulator and cost model, this script runs that comparison —
parallel ER versus parallel aspiration, MWF, tree-splitting,
pv-splitting, and naive root splitting — across processor counts, on
both an unordered and a strongly ordered tree.

Run:  python examples/algorithm_shootout.py
"""

from __future__ import annotations

from repro import ERConfig, SearchProblem, alphabeta, parallel_er
from repro.games import IncrementalGameTree, RandomGameTree
from repro.parallel import mwf, naive_split, parallel_aspiration, pv_splitting, tree_splitting

COUNTS = (1, 2, 4, 8, 16)


def run_shootout(problem: SearchProblem, serial_cost: float, title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    algorithms = {
        "parallel ER": lambda p, k: parallel_er(p, k, config=ERConfig(serial_depth=4)),
        "aspiration": parallel_aspiration,
        "MWF": mwf,
        "tree-splitting": tree_splitting,
        "pv-splitting": pv_splitting,
        "naive split": naive_split,
    }
    header = f"{'algorithm':<16}" + "".join(f"  P={k:<5d}" for k in COUNTS)
    print(header + "   (speedup over best serial)")
    print("-" * len(header))
    reference_value = None
    for name, algo in algorithms.items():
        cells = []
        for k in COUNTS:
            result = algo(problem, k)
            if reference_value is None:
                reference_value = result.value
            assert result.value == reference_value, f"{name} disagrees at P={k}!"
            cells.append(f"{result.speedup(serial_cost):7.2f}")
        print(f"{name:<16}" + " ".join(cells))
    print(f"(all algorithms returned the same root value {reference_value})\n")


def main() -> None:
    # Unordered random tree: ER's home turf (Figure 11's regime).
    problem = SearchProblem(RandomGameTree(degree=4, height=7, seed=13), depth=7)
    serial = alphabeta(problem).stats.cost
    run_shootout(problem, serial, "Unordered random tree (degree 4, 7 ply)")

    # Strongly ordered tree: pv-splitting's home turf (Section 4.4).
    problem = SearchProblem(
        IncrementalGameTree(degree=4, height=7, seed=6, noise=0.3),
        depth=7,
        sort_below_root=7,
    )
    serial = alphabeta(problem).stats.cost
    run_shootout(problem, serial, "Strongly ordered tree (degree 4, 7 ply, sorted)")


if __name__ == "__main__":
    main()
