"""Simulated-time cost model shared by serial and parallel searches.

The paper reports wall-clock speedups on a 16-processor Sequent Symmetry.
Under CPython's GIL a threaded reimplementation cannot exhibit real parallel
speedup, so this reproduction charges every primitive operation a cost in
abstract *time units* and measures schedules in simulated time (see
DESIGN.md).  Both serial algorithms and simulated-parallel algorithms are
costed by the same :class:`CostModel`, making Fishburn's speedup definition
(best serial time / parallel time) directly computable.

The default constants encode the relative magnitudes that matter for the
paper's effects:

* a static evaluation is much more expensive than generating one child
  (this is what makes alpha-beta's child-sorting overhead visible on tree
  O1, Figure 12);
* shared-queue and lock operations are cheap but nonzero (this is what
  makes interference loss grow with the processor count, Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class CostModel:
    """Costs, in abstract time units, of the primitive search operations.

    Attributes:
        expand_base: fixed cost of generating the move list of one node.
        expand_per_child: additional cost per child generated.
        static_eval: cost of one application of the static evaluator.
        heap_op: cost of one push or pop on a shared work queue, charged
            while the queue lock is held.
        combine_step: cost of backing a value up one level of the tree,
            charged while the tree lock is held.
        bookkeeping: small per-node scheduling overhead charged outside
            any lock (reading flags, window recomputation, etc.).
        tt_probe: cost of one transposition-table lookup, charged while
            the stripe lock is held.
        tt_store: cost of one transposition-table store (including the
            replacement decision), charged while the stripe lock is held.
        batch_eval_base: fixed dispatch cost of one ``batch_eval`` call
            (argument marshalling, array setup) regardless of batch size.
        batch_eval_per_leaf: incremental cost per position inside a
            batch.  The default makes a batched leaf ~5x cheaper than a
            scalar ``static_eval`` — the amortization a vectorized
            evaluator buys (see DESIGN.md §10 for the calibration).
        eval_cache_probe: cost of one evaluation-cache lookup, charged
            while the stripe lock is held.
        eval_cache_store: cost of one evaluation-cache store, charged
            while the stripe lock is held.
    """

    expand_base: float = 2.0
    expand_per_child: float = 1.0
    static_eval: float = 20.0
    heap_op: float = 1.0
    combine_step: float = 1.0
    bookkeeping: float = 0.5
    tt_probe: float = 0.5
    tt_store: float = 0.5
    batch_eval_base: float = 5.0
    batch_eval_per_leaf: float = 4.0
    eval_cache_probe: float = 0.5
    eval_cache_store: float = 0.5

    def __post_init__(self) -> None:
        for field in fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"CostModel.{field.name} must be non-negative")

    def expansion(self, n_children: int) -> float:
        """Cost of generating ``n_children`` successors of one node."""
        return self.expand_base + self.expand_per_child * n_children

    def ordering(self, n_children: int) -> float:
        """Cost of statically evaluating ``n_children`` nodes for sorting.

        The comparison-sort cost itself is folded into the per-child
        evaluation charge; the evaluator applications dominate (Section 7).
        """
        return self.static_eval * n_children

    def batch_eval(self, n_leaves: int) -> float:
        """Cost of evaluating ``n_leaves`` positions as one vectorized batch."""
        return self.batch_eval_base + self.batch_eval_per_leaf * n_leaves

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            **{f.name: getattr(self, f.name) * factor for f in fields(self)},
        )


#: Cost model used by all experiments unless stated otherwise.
DEFAULT_COST_MODEL = CostModel()

#: Cost model with free synchronization, for isolating speculative loss
#: from interference loss in ablation experiments.
FRICTIONLESS_COST_MODEL = CostModel(heap_op=0.0, combine_step=0.0, bookkeeping=0.0)
