"""Simulated-time cost model shared by serial and parallel searches.

The paper reports wall-clock speedups on a 16-processor Sequent Symmetry.
Under CPython's GIL a threaded reimplementation cannot exhibit real parallel
speedup, so this reproduction charges every primitive operation a cost in
abstract *time units* and measures schedules in simulated time (see
DESIGN.md).  Both serial algorithms and simulated-parallel algorithms are
costed by the same :class:`CostModel`, making Fishburn's speedup definition
(best serial time / parallel time) directly computable.

The default constants encode the relative magnitudes that matter for the
paper's effects:

* a static evaluation is much more expensive than generating one child
  (this is what makes alpha-beta's child-sorting overhead visible on tree
  O1, Figure 12);
* shared-queue and lock operations are cheap but nonzero (this is what
  makes interference loss grow with the processor count, Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Costs, in abstract time units, of the primitive search operations.

    Attributes:
        expand_base: fixed cost of generating the move list of one node.
        expand_per_child: additional cost per child generated.
        static_eval: cost of one application of the static evaluator.
        heap_op: cost of one push or pop on a shared work queue, charged
            while the queue lock is held.
        combine_step: cost of backing a value up one level of the tree,
            charged while the tree lock is held.
        bookkeeping: small per-node scheduling overhead charged outside
            any lock (reading flags, window recomputation, etc.).
        tt_probe: cost of one transposition-table lookup, charged while
            the stripe lock is held.
        tt_store: cost of one transposition-table store (including the
            replacement decision), charged while the stripe lock is held.
    """

    expand_base: float = 2.0
    expand_per_child: float = 1.0
    static_eval: float = 20.0
    heap_op: float = 1.0
    combine_step: float = 1.0
    bookkeeping: float = 0.5
    tt_probe: float = 0.5
    tt_store: float = 0.5

    def __post_init__(self) -> None:
        for field in (
            "expand_base",
            "expand_per_child",
            "static_eval",
            "heap_op",
            "combine_step",
            "bookkeeping",
            "tt_probe",
            "tt_store",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"CostModel.{field} must be non-negative")

    def expansion(self, n_children: int) -> float:
        """Cost of generating ``n_children`` successors of one node."""
        return self.expand_base + self.expand_per_child * n_children

    def ordering(self, n_children: int) -> float:
        """Cost of statically evaluating ``n_children`` nodes for sorting.

        The comparison-sort cost itself is folded into the per-child
        evaluation charge; the evaluator applications dominate (Section 7).
        """
        return self.static_eval * n_children

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            expand_base=self.expand_base * factor,
            expand_per_child=self.expand_per_child * factor,
            static_eval=self.static_eval * factor,
            heap_op=self.heap_op * factor,
            combine_step=self.combine_step * factor,
            bookkeeping=self.bookkeeping * factor,
            tt_probe=self.tt_probe * factor,
            tt_store=self.tt_store * factor,
        )


#: Cost model used by all experiments unless stated otherwise.
DEFAULT_COST_MODEL = CostModel()

#: Cost model with free synchronization, for isolating speculative loss
#: from interference loss in ablation experiments.
FRICTIONLESS_COST_MODEL = CostModel(heap_op=0.0, combine_step=0.0, bookkeeping=0.0)
