"""Command-line entry points: regenerate any paper exhibit from a shell.

Examples::

    repro-gametree figure 11                 # ER efficiency, random trees
    repro-gametree figure 12 --scale paper   # Othello node counts, full size
    repro-gametree serial --tree O1          # serial AB vs serial ER
    repro-gametree baselines                 # Section 4 algorithm claims
    repro-gametree losses --tree R1 -P 8     # Section 3.1 decomposition
    repro-gametree explain --workload R3 --P 4   # critical path + what-if
    repro-gametree top --backend multiproc -P 4  # live dashboard of a real run
    repro-gametree trace --backend multiproc --trace full  # Perfetto + spans
    repro-gametree demo                      # 30-second tour
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .obs.events import EventBus
    from .obs.live import LiveTrace
    from .obs.snapshot import Snapshot
    from .serve import ServeConfig
    from .sim.metrics import SimReport

from .analysis.experiments import (
    cached_curve,
    er_config_for,
    figure10,
    figure11,
    format_efficiency_table,
    format_nodes_table,
    format_speedup_summary,
    serial_baselines,
)
from .analysis.losses import loss_report
from .cache import make_tt
from .core.er_parallel import parallel_er
from .costmodel import DEFAULT_COST_MODEL
from .games.base import SearchProblem
from .games.random_tree import IncrementalGameTree, RandomGameTree, SyntheticOrderedTree
from .parallel import mwf, parallel_aspiration, pv_splitting, tree_splitting
from .search.alphabeta import alphabeta
from .search.stats import SearchStats
from .workloads.suite import PROCESSOR_COUNTS, TreeSpec, table3_suite


def _cmd_figure(args: argparse.Namespace) -> int:
    counts = tuple(args.processors) if args.processors else PROCESSOR_COUNTS
    number = args.number
    if number in (10, 12):
        curves = figure10(args.scale, counts)
    elif number in (11, 13):
        curves = figure11(args.scale, counts)
    else:
        print(f"unknown figure {number}; this paper has figures 10-13", file=sys.stderr)
        return 2
    if number in (10, 11):
        print(f"Figure {number} — efficiency of parallel ER ({args.scale} scale)")
        print(format_efficiency_table(curves))
    else:
        print(f"Figure {number} — nodes generated ({args.scale} scale)")
        print(format_nodes_table(curves))
    print()
    print(format_speedup_summary(curves))
    return 0


def _cmd_serial(args: argparse.Namespace) -> int:
    spec = table3_suite(args.scale)[args.tree]
    base = serial_baselines(spec)
    print(f"{spec.name} ({spec.description}), value = {base.alphabeta.value}")
    for name, result in (("alpha-beta", base.alphabeta), ("serial ER", base.er)):
        s = result.stats
        print(
            f"  {name:10s}: cost={s.cost:10.0f}  nodes={s.nodes_generated:7d}  "
            f"leaves={s.leaf_evals:7d}  ordering-evals={s.ordering_evals:6d}"
        )
    print(f"  best serial: {base.best_name}")
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    counts = tuple(args.processors) if args.processors else (1, 2, 4, 8, 16)
    print("Parallel aspiration (Baudet) on a strongly ordered tree:")
    problem = SearchProblem(IncrementalGameTree(4, 8, seed=2, noise=0.5), depth=8)
    serial = alphabeta(problem).stats.cost
    for k in counts:
        r = parallel_aspiration(problem, k)
        print(f"  k={k:3d}  speedup={r.speedup(serial):5.2f}")
    print("Tree-splitting (Fishburn) on a best-first tree (expect ~c*sqrt(k)):")
    problem = SearchProblem(SyntheticOrderedTree(4, 8, seed=3), depth=8)
    serial = alphabeta(problem).stats.cost
    for k in counts:
        r = tree_splitting(problem, k)
        print(f"  k={k:3d}  speedup={r.speedup(serial):5.2f}")
    print("PV-splitting (Marsland) on a strongly ordered tree:")
    problem = SearchProblem(
        IncrementalGameTree(6, 6, seed=4, noise=0.3), depth=6, sort_below_root=6
    )
    serial = alphabeta(problem).stats.cost
    for k in counts:
        r = pv_splitting(problem, k)
        print(f"  k={k:3d}  speedup={r.speedup(serial):5.2f}")
    print("MWF (Akl et al.) on a random tree (expect a plateau):")
    problem = SearchProblem(RandomGameTree(8, 4, seed=5), depth=4)
    serial = alphabeta(problem, deep_cutoffs=False).stats.cost
    for k in counts:
        r = mwf(problem, k)
        print(f"  k={k:3d}  speedup={r.speedup(serial):5.2f}")
    return 0


def _cmd_losses(args: argparse.Namespace) -> int:
    spec = table3_suite(args.scale)[args.tree]
    problem = spec.problem()
    reference = SearchStats.with_trace()
    alphabeta(problem, stats=reference)
    base = serial_baselines(spec)
    result = parallel_er(
        problem, args.processors_single, config=er_config_for(spec), trace=True
    )
    report = loss_report(result, base.best_time, reference)
    print(f"{spec.name} with {report.n_processors} processors:")
    print(f"  efficiency            {report.efficiency:.3f}")
    print(f"  starvation fraction   {report.starvation_fraction:.3f}")
    print(f"  interference fraction {report.interference_fraction:.3f}")
    print(f"  speculative fraction  {report.speculative_fraction:.3f}")
    print(
        f"  nodes: parallel={report.work.parallel_total} "
        f"reference={report.work.reference_total} "
        f"expansion-ratio={report.work.expansion_ratio:.2f}"
    )
    return 0


def _config_json(config: object) -> dict[str, object]:
    """Flatten a config/cost-model dataclass to JSON-safe values."""
    import dataclasses

    out: dict[str, object] = {}
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        return out
    for field_info in dataclasses.fields(config):
        value = getattr(config, field_info.name)
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[field_info.name] = value
        else:
            out[field_info.name] = str(value)
    return out


def _observed_run(
    spec: TreeSpec,
    backend: str,
    count: int,
    tt_mode: str = "off",
    eval_mode: str = "off",
    batch: bool = False,
    trace: str = "off",
) -> "tuple[EventBus, Snapshot, SimReport | None, LiveTrace | None]":
    """Run one tree on one backend under a telemetry bus.

    Returns ``(bus, snapshot, sim_report_or_None, live_or_None)`` — the
    report carries the per-processor timelines the Perfetto exporter
    renders as tracks (only the simulated backend has exact timelines);
    ``live`` is the merged wall-clock span timeline when the real
    backend ran with ``trace`` enabled.  Each call builds a fresh eval
    cache, so the telemetry run is self-contained.
    """
    from .cache import make_tt
    from .eval import make_eval_cache
    from .obs import observing
    from .obs import snapshot as obs_snapshot

    problem = spec.problem()
    config = er_config_for(spec)
    with observing() as bus:
        if backend == "sim":
            result = parallel_er(
                problem, count, config=config, tt=make_tt(tt_mode),
                eval_cache=make_eval_cache(eval_mode), batch_eval=batch,
            )
            snap = obs_snapshot.snapshot_from_sim(result, workload=spec.name, bus=bus)
            return bus, snap, result.report, None
        if backend == "threaded":
            from .parallel.threaded import threaded_er_observed

            run = threaded_er_observed(
                problem, count, config=config, tt=make_tt(tt_mode),
                eval_cache=make_eval_cache(eval_mode), batch_eval=batch, trace=trace,
            )
            snap = obs_snapshot.snapshot_from_threaded(run, workload=spec.name, bus=bus)
            return bus, snap, None, run.trace
        from .parallel.multiproc import multiproc_er

        mp_result = multiproc_er(
            problem, count, config=config, tt_mode=tt_mode,
            eval_cache_mode=eval_mode, batch_eval=batch, trace=trace,
        )
        snap = obs_snapshot.snapshot_from_multiproc(mp_result, workload=spec.name, bus=bus)
        return bus, snap, None, mp_result.trace


def _write_ledger_record(
    spec: TreeSpec,
    snap: "Snapshot",
    directory: str,
    scale: str,
    tt_mode: str = "off",
    eval_mode: str = "off",
    batch: bool = False,
    live: "LiveTrace | None" = None,
) -> Path:
    from .obs import ledger

    trace_summary = None
    if live is not None:
        trace_summary = ledger.trace_block(
            live.mode,
            len(live.spans),
            live.total_dropped,
            live.overhead_fraction(snap.makespan),
        )
    record = ledger.make_record(
        snap,
        workload=spec.name,
        scale=scale,
        seed=spec.seed,
        config={
            "serial_depth": spec.serial_depth,
            "sort_below_root": spec.sort_below_root,
            "tt": tt_mode,
            "eval_cache": eval_mode,
            "batch_eval": batch,
        },
        cost_model=_config_json(DEFAULT_COST_MODEL),
        trace=trace_summary,
    )
    problems = ledger.validate_record(record)
    if problems:
        raise SystemExit("ledger record invalid: " + "; ".join(problems))
    return ledger.write_record(record, directory)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Emit a Perfetto-loadable Chrome trace (and optional ledger record)."""
    from .obs import export

    spec = table3_suite(args.scale)[args.tree]
    count = args.processors_single
    if args.trace != "off" and args.backend == "sim":
        print("trace: --trace applies to the real backends only", file=sys.stderr)
        return 2
    bus, snap, report, live = _observed_run(
        spec, args.backend, count, trace=args.trace
    )
    problems = snap.check_accounting()
    if problems:
        for problem in problems:
            print(f"accounting violation: {problem}", file=sys.stderr)
        return 1
    out = args.output or (
        f"results/traces/{args.tree}_{args.backend}_P{count}.trace.json"
    )
    path = export.write_chrome_trace(
        out,
        bus.events,
        report=report,
        time_unit=snap.time_unit,
        metadata={
            "workload": spec.name,
            "backend": args.backend,
            "n_processors": count,
            "scale": args.scale,
            "seed": spec.seed,
            "trace_mode": args.trace,
        },
        live=live,
    )
    print(f"{spec.name} {args.backend} P={count}: {len(bus.events)} events")
    if live is not None:
        print(
            f"live spans: {len(live.spans)} across {len(live.workers())} rows, "
            f"{live.total_dropped} dropped, "
            f"overhead {live.overhead_fraction(snap.makespan):.2%} of wall time"
        )
    print(f"trace: {path}  (open at https://ui.perfetto.dev or chrome://tracing)")
    if args.jsonl:
        jsonl_path = export.write_jsonl(Path(path).with_suffix(".jsonl"), bus.events)
        print(f"jsonl: {jsonl_path}")
    if args.ledger_dir:
        record_path = _write_ledger_record(
            spec, snap, args.ledger_dir, args.scale, live=live
        )
        print(f"ledger: {record_path}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over one running real-backend search.

    The search runs on a worker thread with a :class:`LiveFeed` attached
    to the telemetry bus, so the metrics registry updates *while* the
    coordinator emits events; the foreground loop re-renders the
    dashboard every ``--interval`` seconds until the search returns.
    With ``--prom-port`` the same registry is additionally served as a
    Prometheus ``/metrics`` endpoint for the run's duration.
    """
    import threading as _threading
    import time as _time

    from .eval import make_eval_cache
    from .obs import events as obs_events
    from .obs import live as obs_live
    from .obs.registry import MetricsRegistry

    spec = table3_suite(args.scale)[args.tree]
    config = er_config_for(spec)
    count = args.processors_single
    registry = MetricsRegistry()
    feed = obs_live.LiveFeed(registry)
    outcome: dict[str, object] = {}

    def run_search() -> None:
        try:
            if args.backend == "threaded":
                from .parallel.threaded import threaded_er_observed

                run = threaded_er_observed(
                    spec.problem(), count, config=config, tt=make_tt(args.tt),
                    eval_cache=make_eval_cache(args.eval_cache), trace=args.trace,
                )
                outcome["value"] = run.value
                outcome["wall"] = run.wall_time
                outcome["live"] = run.trace
            else:
                from .parallel.multiproc import multiproc_er

                result = multiproc_er(
                    spec.problem(), count, config=config, tt_mode=args.tt,
                    eval_cache_mode=args.eval_cache, trace=args.trace,
                )
                outcome["value"] = result.value
                outcome["wall"] = result.wall_time
                outcome["live"] = result.trace
        except BaseException as exc:  # re-raised after the render loop
            outcome["error"] = exc

    t0 = _time.perf_counter()

    def show(done: bool) -> None:
        frame = obs_live.render_top(
            feed.collect(), workload=spec.name, backend=args.backend,
            n_workers=count, elapsed=_time.perf_counter() - t0, done=done,
        )
        if args.plain:
            print(frame)
        else:
            # Home + clear-to-end redraws in place without scrollback spam.
            print("\x1b[H\x1b[2J" + frame, end="", flush=True)

    server = None
    with obs_events.observing() as bus:
        bus.attach_live(feed.on_event)
        if args.prom_port is not None:
            from .obs.promtext import MetricsServer

            server = MetricsServer(feed.collect, port=args.prom_port).start()
            print(f"serving metrics at {server.url}")
        worker = _threading.Thread(target=run_search, name="repro-top-search", daemon=True)
        worker.start()
        try:
            while worker.is_alive():
                show(done=False)
                worker.join(timeout=args.interval)
        finally:
            bus.attach_live(None)
            if server is not None:
                server.stop()
    show(done=True)
    error = outcome.get("error")
    if error is not None:
        raise error  # type: ignore[misc]
    print(f"value {outcome['value']!r} in {outcome['wall']:.3f}s wall")
    live = outcome.get("live")
    if isinstance(live, obs_live.LiveTrace) and live.spans:
        wall = float(outcome["wall"])  # type: ignore[arg-type]
        print(
            f"trace: {len(live.spans)} spans, {live.total_dropped} dropped, "
            f"overhead {live.overhead_fraction(wall):.2%}"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Critical-path blame report plus causal what-if profile for one run.

    The run happens once under a :class:`~repro.obs.critpath.ScheduleRecorder`
    (and the telemetry bus, for the optional trace/ledger outputs); the
    extracted path's length must equal the makespan exactly or the
    command fails.  The what-if sweep then re-runs the same fixed-seed
    workload under perturbed cost models and prints predicted-vs-actual
    speedups per (primitive, factor) point.
    """
    from .costmodel import CostModel
    from .eval import make_eval_cache
    from .obs import critpath, export, whatif
    from .obs import events as obs_events
    from .obs import snapshot as obs_snapshot

    spec = table3_suite(args.scale)[args.tree]
    config = er_config_for(spec)
    count = args.processors_single
    with obs_events.observing() as bus, critpath.recording() as rec:
        result = parallel_er(
            spec.problem(), count, config=config, record_timeline=True,
            eval_cache=make_eval_cache(args.eval_cache), batch_eval=args.batch_eval,
        )
    cp = critpath.extract(rec, result.sim_time)
    title = f"{spec.name} sim P={count} ({args.scale} scale)"
    print(critpath.render_report(cp, title=title, top=args.top), end="")
    if cp.length != result.sim_time:
        print(
            f"explain: path length {cp.length!r} != makespan {result.sim_time!r}",
            file=sys.stderr,
        )
        return 1

    points: list[whatif.WhatIfPoint] = []
    if not args.skip_whatif:

        def rerun(cm: CostModel) -> float:
            # A fresh cache per re-run: every point of the sweep starts
            # from the same cold-cache state as the base run, and the
            # cache's own op costs scale with the perturbed model.
            return parallel_er(
                spec.problem(), count, config=config, cost_model=cm,
                eval_cache=make_eval_cache(args.eval_cache, cost_model=cm),
                batch_eval=args.batch_eval,
            ).sim_time

        points = whatif.sweep(
            rerun,
            cp.by_primitive(),
            result.sim_time,
            primitives=args.whatif,
            factors=args.factors,
            cost_model=DEFAULT_COST_MODEL,
        )
        print()
        print(whatif.render_table(points), end="")

    if args.trace_out:
        path = export.write_chrome_trace(
            args.trace_out,
            bus.events,
            report=result.report,
            critpath=cp,
            metadata={
                "workload": spec.name,
                "backend": "sim",
                "n_processors": count,
                "scale": args.scale,
                "seed": spec.seed,
            },
        )
        print(f"trace: {path}  (critical-path overlay under pid 1)")

    if args.ledger_dir:
        from .obs import ledger

        snap = obs_snapshot.snapshot_from_sim(
            result, workload=spec.name, bus=bus, critpath=cp.composition()
        )
        record = ledger.make_record(
            snap,
            workload=spec.name,
            scale=args.scale,
            seed=spec.seed,
            config={
                "serial_depth": spec.serial_depth,
                "sort_below_root": spec.sort_below_root,
                "tt": "off",
                "eval_cache": args.eval_cache,
                "batch_eval": args.batch_eval,
            },
            cost_model=_config_json(DEFAULT_COST_MODEL),
            whatif=whatif.to_records(points) if points else None,
        )
        problems = ledger.validate_record(record)
        if problems:
            raise SystemExit("ledger record invalid: " + "; ".join(problems))
        record_path = ledger.write_record(
            record, args.ledger_dir, name=ledger.record_name(record) + "_explain"
        )
        print(f"ledger: {record_path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Diff two ledger records (by file path or git SHA prefix)."""
    from .obs import ledger

    try:
        baseline = ledger.resolve(args.baseline, args.ledger_dir)
        candidate = ledger.resolve(args.candidate, args.ledger_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    for name, record in (("baseline", baseline), ("candidate", candidate)):
        problems = ledger.validate_record(record)
        if problems:
            print(f"compare: {name} record invalid: {'; '.join(problems)}", file=sys.stderr)
            return 2
    report = ledger.compare_records(baseline, candidate, tolerance=args.tolerance)
    print(report.format())
    if not report.ok and not args.warn_only:
        return 1
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    """Compare one tree's parallel backends against serial ER.

    ``--backend sim`` reports simulated-time speedup (the paper's
    exhibits); ``--backend threaded`` and ``--backend multiproc`` report
    real wall-clock, of which only multiproc can beat 1.0 under CPython.
    With ``--obs``, each processor count is additionally run under the
    telemetry bus and persisted as a ledger record.
    """
    import time as _time

    from .parallel.multiproc import (
        format_scaling_table,
        measure_serial_seconds,
        scaling_run,
    )
    from .parallel.threaded import threaded_er

    from .eval import make_eval_cache

    spec = table3_suite(args.scale)[args.tree]
    counts = tuple(args.processors) if args.processors else (1, 2, 4, 8)
    status = 0
    if args.backend == "sim":
        if args.tt == "off" and args.eval_cache == "off" and not args.batch_eval:
            curve = cached_curve(args.scale, args.tree, counts)
            print(f"{spec.name} — simulated backend (discrete-event engine)")
            print(format_efficiency_table({args.tree: curve}))
            print(format_speedup_summary({args.tree: curve}))
        else:
            status = _sim_cache_sweep(
                spec, args.tt, counts, eval_mode=args.eval_cache, batch=args.batch_eval
            )
    elif args.backend == "threaded":
        problem = spec.problem()
        config = er_config_for(spec)
        tt = make_tt(args.tt)
        eval_cache = make_eval_cache(args.eval_cache)
        serial_seconds = measure_serial_seconds(problem)
        print(f"{spec.name} — serial ER wall time {serial_seconds:.3f}s")
        print(f"threaded backend (protocol check; the GIL forbids speedup; tt={args.tt}):")
        for count in counts:
            t0 = _time.perf_counter()
            threaded_er(
                problem, count, config=config, tt=tt,
                eval_cache=eval_cache, batch_eval=args.batch_eval,
            )
            wall = _time.perf_counter() - t0
            print(f"  P={count:2d}  wall={wall:.3f}s  speedup={serial_seconds / wall:5.2f}")
    else:
        problem = spec.problem()
        config = er_config_for(spec)
        serial_seconds = measure_serial_seconds(problem)
        print(f"{spec.name} — serial ER wall time {serial_seconds:.3f}s")
        _, points = scaling_run(
            problem, counts, config=config, serial_seconds=serial_seconds, tt_mode=args.tt,
            eval_cache_mode=args.eval_cache, batch_eval=args.batch_eval, trace=args.trace,
        )
        print(f"multiproc backend (worker processes; real parallelism; tt={args.tt}):")
        print(format_scaling_table(spec.name, serial_seconds, points))
    if args.obs:
        for count in counts:
            _, snap, _, live = _observed_run(
                spec, args.backend, count, tt_mode=args.tt,
                eval_mode=args.eval_cache, batch=args.batch_eval,
                trace=args.trace if args.backend != "sim" else "off",
            )
            problems = snap.check_accounting()
            if problems:
                status = 1
                for problem_text in problems:
                    print(f"accounting violation (P={count}): {problem_text}", file=sys.stderr)
                continue
            path = _write_ledger_record(
                spec, snap, args.obs_dir, args.scale, tt_mode=args.tt,
                eval_mode=args.eval_cache, batch=args.batch_eval, live=live,
            )
            print(f"ledger: {path}")
    return status


def _sim_cache_sweep(
    spec: TreeSpec,
    tt_mode: str,
    counts: tuple[int, ...],
    *,
    eval_mode: str = "off",
    batch: bool = False,
) -> int:
    """Simulated sweep with the caches persisted across counts.

    Random trees have no within-run transpositions, so a table's value
    shows up *across* the sweep: results proven at one processor count
    answer whole subtrees (TT) or leaves (eval cache) at the next.  Each
    count is also run with everything off so the cost savings and the
    value equality are visible in one report.
    """
    from .core.serial_er import er_search
    from .eval import make_eval_cache

    problem = spec.problem()
    config = er_config_for(spec)
    serial_cost = er_search(problem).stats.cost
    tt = make_tt(tt_mode)
    eval_cache = make_eval_cache(eval_mode)
    print(
        f"{spec.name} — simulated backend, --tt {tt_mode} --eval-cache {eval_mode}"
        f"{' --batch-eval' if batch else ''} (caches persist across the sweep)"
    )
    print(f"  {'P':>3s}  {'speedup':>7s}  {'cost(off)':>12s}  {'cost(on)':>12s}  value")
    status = 0
    for count in counts:
        off = parallel_er(problem, count, config=config)
        cached = parallel_er(
            problem, count, config=config, tt=tt, eval_cache=eval_cache, batch_eval=batch
        )
        if cached.value != off.value:
            print(f"  P={count}: VALUE MISMATCH on={cached.value} off={off.value}", file=sys.stderr)
            status = 1
        print(
            f"  {count:3d}  {serial_cost / cached.sim_time:7.2f}  "
            f"{off.sim_time:12.1f}  {cached.sim_time:12.1f}  "
            f"{cached.value:g}"
        )
    snapshot: dict[str, int] = {}
    if tt is not None:
        snapshot.update(tt.counter_snapshot())
    if eval_cache is not None:
        snapshot.update(eval_cache.counter_snapshot())
    if snapshot:
        print("  caches: " + "  ".join(f"{key}={value}" for key, value in snapshot.items()))
    return status


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import build_report

    counts = tuple(args.processors) if args.processors else PROCESSOR_COUNTS
    report = build_report(args.scale, processor_counts=counts)
    print(report.markdown)
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .analysis.gantt import render_gantt
    from .obs import critpath

    spec = table3_suite(args.scale)[args.tree]
    recorder = critpath.ScheduleRecorder() if args.critpath else None
    if recorder is not None:
        critpath.install(recorder)
    try:
        result = parallel_er(
            spec.problem(),
            args.processors_single,
            config=er_config_for(spec),
            record_timeline=True,
        )
    finally:
        if recorder is not None:
            critpath.uninstall()
    cp = critpath.extract(recorder, result.sim_time) if recorder is not None else None
    print(
        f"{spec.name} on {args.processors_single} processors "
        f"(makespan {result.sim_time:.0f} simulated units):"
    )
    print(render_gantt(result.report, width=args.width, critpath=cp))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    spec = table3_suite("reduced")["R1"]
    base = serial_baselines(spec)
    print(f"Tree {spec.name}: {spec.description}")
    print(f"root value {base.alphabeta.value}; best serial: {base.best_name}")
    curve = cached_curve("reduced", "R1", (1, 4, 16))
    for point in curve.points:
        print(
            f"  P={point.n_processors:2d}  speedup={point.speedup:5.2f}  "
            f"efficiency={point.efficiency:.2f}  nodes={point.nodes_generated}"
        )
    return 0


def _serve_config(args: argparse.Namespace) -> "ServeConfig":
    from .serve import ServeConfig

    slo_targets = None if args.no_slo else ServeConfig.slo_targets
    return ServeConfig(
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        tt_mode=args.tt,
        eval_cache_mode=args.eval_cache,
        scale=args.scale,
        trace_mode=args.trace,
        metrics_port=args.metrics_port,
        slo_targets=slo_targets,
        slo_objective=args.slo_objective,
        stall_overrun_factor=args.stall_overrun,
        flight_dir=args.flight_dir,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the search service until SIGINT/SIGTERM or a shutdown op."""
    import asyncio
    import signal

    from .serve import SearchService

    config = _serve_config(args)

    async def run() -> int:
        service = await SearchService(config).start()
        host, port = service.address
        print(f"serving Table 3 suite ({config.scale}) on {host}:{port}")
        if service.metrics_url is not None:
            print(f"metrics: {service.metrics_url}")
        print("stop with Ctrl-C or the 'shutdown' op; draining is graceful")
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service.request_shutdown)
        await service.serve_until_shutdown()
        problems = (
            service.scheduler.conservation_problems()
            if service.scheduler is not None
            else []
        )
        for problem in problems:
            print(f"accounting problem: {problem}", file=sys.stderr)
        snapshot = service.stats_snapshot()
        print(
            f"drained: {snapshot['completed']} completed, "
            f"{snapshot['shed']} shed of {snapshot['submitted']} submitted"
        )
        return 1 if problems else 0

    return asyncio.run(run())


def _cmd_bench_traffic(args: argparse.Namespace) -> int:
    """Measure serving throughput: warm shared caches vs a cold start.

    In-process by default: one service, the same deterministic trace
    served twice — the first pass hits cold tables, the second runs
    entirely warm — so the delta isolates what the persistent shared
    TT/eval-cache buys.  ``--connect`` instead drives one pass against
    an already-running ``repro-gametree serve`` over TCP.
    """
    import asyncio

    from .serve import SearchService, TrafficSpec, generate_trace, suite_catalog
    from .serve.traffic import (
        render_decomposition,
        run_trace,
        run_trace_client,
        service_snapshot,
    )

    spec = TrafficSpec(
        workloads=tuple(args.workloads),
        n_requests=args.requests,
        seed=args.seed,
        max_depth=args.depth,
        repeat_fraction=args.repeat,
    )
    catalog = suite_catalog(args.scale)
    trace = generate_trace(spec, catalog)

    if args.connect is not None:
        from .serve.client import ServiceClient

        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"--connect wants HOST:PORT, got {args.connect!r}", file=sys.stderr)
            return 2

        async def run_remote() -> int:
            async with ServiceClient(host, int(port_text)) as client:
                report = await run_trace_client(client, trace)
                print(report.render(f"remote traffic ({args.connect})"))
                print()
                print(
                    render_decomposition(report.replies, "latency decomposition")
                )
                if args.shutdown:
                    await client.shutdown_server()
                    print("sent shutdown; server is draining")
            return 0

        return asyncio.run(run_remote())

    config = _serve_config(args)

    async def run_local() -> int:
        async with SearchService(config, catalog=catalog) as service:
            cold = await run_trace(service, trace)
            warm = await run_trace(service, trace)
            print(cold.render("cold start (empty shared caches)"))
            print()
            print(warm.render("warm (same trace, caches populated)"))
            ratio = warm.rps / cold.rps if cold.rps > 0 else float("inf")
            print(f"\nwarm/cold throughput ratio: {ratio:.2f}x")
            print()
            print(render_decomposition(warm.replies, "warm latency decomposition"))
            snap = service_snapshot(service, warm, workload=f"traffic-{args.seed}")
            problems = snap.check_accounting()
            for problem in problems:
                print(f"accounting problem: {problem}", file=sys.stderr)
            return 1 if problems else 0

    return asyncio.run(run_local())


def _cmd_profile_service(args: argparse.Namespace) -> int:
    """Where do the service's milliseconds go, stage by stage?

    Replays one deterministic traffic trace through an in-process
    service with request tracing on, prints the traffic summary plus the
    p50/p95/p99 stage-decomposition table, optionally exports the
    per-request Perfetto tracks, and (with ``--ledger-dir``) records the
    run — ``service`` *and* ``latency`` blocks — so ``repro-gametree
    compare`` can flag a single stage regressing even when the
    end-to-end tail holds.
    """
    import asyncio

    from dataclasses import replace as _dc_replace

    from .obs import export, ledger
    from .serve import SearchService, TrafficSpec, generate_trace, suite_catalog
    from .serve.traffic import (
        latency_fields,
        render_decomposition,
        run_trace,
        service_snapshot,
    )

    spec = TrafficSpec(
        workloads=tuple(args.workloads),
        n_requests=args.requests,
        seed=args.seed,
        max_depth=args.depth,
        repeat_fraction=args.repeat,
    )
    catalog = suite_catalog(args.scale)
    trace = generate_trace(spec, catalog)
    config = _serve_config(args)
    if config.trace_mode == "off":
        # Worker spans are the point of the profile; default them on.
        config = _dc_replace(config, trace_mode="full")

    async def run() -> int:
        async with SearchService(config, catalog=catalog) as service:
            report = await run_trace(service, trace)
            print(report.render(f"profile-service (seed {args.seed})"))
            print()
            print(render_decomposition(report.replies, "latency decomposition"))
            exit_code = 0
            snap = service_snapshot(service, report, workload=f"traffic-{args.seed}")
            for problem in snap.check_accounting():
                print(f"accounting problem: {problem}", file=sys.stderr)
                exit_code = 1
            stored = service.traces.traces()
            conservation = [
                problem
                for stored_trace in stored
                for problem in stored_trace.timing.conservation_problems()
            ]
            for problem in conservation:
                print(f"conservation problem: {problem}", file=sys.stderr)
                exit_code = 1
            if args.trace_out is not None:
                pool = service.pool
                worker_spans = (
                    {t.request_id: pool.request_spans(t.request_id) for t in stored}
                    if pool is not None
                    else {}
                )
                path = export.write_service_trace(
                    args.trace_out,
                    stored,
                    worker_spans=worker_spans,
                    span_pids=pool.span_pids() if pool is not None else {},
                    metadata={"seed": args.seed, "requests": args.requests},
                )
                print(f"\nper-request Perfetto trace: {path}")
            if args.ledger_dir is not None:
                record = ledger.make_record(
                    snap,
                    workload=f"traffic-{args.seed}",
                    scale=args.scale,
                    seed=args.seed,
                    config={
                        "requests": args.requests,
                        "depth": args.depth,
                        "tt": config.tt_mode,
                        "eval_cache": config.eval_cache_mode,
                        "trace": config.trace_mode,
                    },
                    service=ledger.service_block(**report.service_fields()),  # type: ignore[arg-type]
                    latency=ledger.latency_block(**latency_fields(report.replies)),  # type: ignore[arg-type]
                )
                problems = ledger.validate_record(record)
                if problems:
                    raise SystemExit("ledger record invalid: " + "; ".join(problems))
                record_path = ledger.write_record(record, args.ledger_dir)
                print(f"ledger record: {record_path}")
            return exit_code

    return asyncio.run(run())


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run the concurrency-correctness toolkit end to end.

    Four gates, in increasing cost: the invariant lint, the detector's
    mutation-mode self-test, race analysis of fresh fixed-seed traces
    from every backend, and (when mypy is importable) the strict typing
    gate.  ``--deep`` adds the interprocedural flow analysis (lockset,
    escape, lock order, protocol conformance) with its baseline gate
    and seeded-mutation self-test.  Exit status 0 means every gate
    passed.
    """
    from .errors import VerificationError
    from .verify import harness
    from .verify.racedetect import analyze, self_test
    from .verify.staticcheck import check_repo
    from .verify.trace import Event

    failed = False

    print("== invariant lint (repro.verify.staticcheck) ==")
    findings = check_repo()
    for finding in findings:
        print(f"  {finding}")
    if findings:
        failed = True
    else:
        print("  OK: all invariants hold")

    print("== race detector self-test (mutation mode) ==")
    try:
        self_test()
    except VerificationError as exc:
        failed = True
        print(f"  {exc}")
    else:
        print("  OK: every seeded race is caught, clean trace passes")

    print("== clean-trace gates (fresh captures, fixed seeds) ==")
    captures: list[tuple[str, Callable[[], list[Event]]]] = [
        ("sim", harness.capture_sim_trace),
        ("sim-serial-depth", harness.capture_sim_serial_depth_trace),
        ("threaded", harness.capture_threaded_trace),
    ]
    if not args.fast:
        captures.append(("multiproc", harness.capture_multiproc_trace))
    for name, capture in captures:
        report = analyze(capture())
        if report.ok:
            print(f"  {name}: {report.events} events -> OK")
        else:
            failed = True
            print(f"  {name}: {report.summary()}")

    if args.deep:
        print("== flow analysis (repro.verify.flow) ==")
        from .verify.flow import analyze_repo, repo_root
        from .verify.flow.baseline import (
            BASELINE_NAME,
            filter_baselined,
            load_baseline,
        )
        from .verify.flow.sarif import to_sarif_bytes
        from .verify.flow.selftest import self_test as flow_self_test

        root = repo_root()
        flow_findings = analyze_repo(root)
        novel, baselined = filter_baselined(
            flow_findings, load_baseline(root / BASELINE_NAME)
        )
        if args.sarif_out is not None:
            args.sarif_out.parent.mkdir(parents=True, exist_ok=True)
            args.sarif_out.write_bytes(to_sarif_bytes(flow_findings))
            print(f"  SARIF report -> {args.sarif_out}")
        for finding in novel:
            print(f"  {finding}")
        if novel:
            failed = True
        else:
            suffix = f" ({len(baselined)} baselined)" if baselined else ""
            print(f"  OK: no non-baselined findings{suffix}")

        print("== flow analyzer self-test (seeded mutations) ==")
        try:
            killed, total = flow_self_test()
        except VerificationError as exc:
            failed = True
            print(f"  {exc}")
        else:
            print(f"  OK: {killed}/{total} seeded concurrency bugs caught")

    if args.obs:
        print("== telemetry self-check (repro.obs) ==")
        from .obs import self_check

        obs_problems = self_check()
        for problem in obs_problems:
            print(f"  {problem}")
        if obs_problems:
            failed = True
        else:
            print("  OK: snapshot accounting, trace export, ledger round-trip")

    print("== strict typing gate (mypy) ==")
    try:
        from mypy import api as mypy_api
    except ImportError:
        print("  mypy not installed; skipped (the CI verify job enforces it)")
    else:
        root = Path(__file__).resolve().parents[2]
        stdout, stderr, status = mypy_api.run(
            [
                "--strict",
                "--config-file",
                str(root / "pyproject.toml"),
                str(root / "src" / "repro"),
            ]
        )
        if stdout:
            print("  " + "\n  ".join(stdout.rstrip().splitlines()))
        if stderr:
            print("  " + "\n  ".join(stderr.rstrip().splitlines()), file=sys.stderr)
        if status != 0:
            failed = True

    print("verify: FAILED" if failed else "verify: OK")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gametree",
        description="Reproduce 'Searching Game Trees in Parallel' (ICPP 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(10, 11, 12, 13))
    fig.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    fig.add_argument("--processors", type=int, nargs="*", default=None)
    fig.set_defaults(func=_cmd_figure)

    ser = sub.add_parser("serial", help="serial alpha-beta vs serial ER on one tree")
    ser.add_argument("--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R1")
    ser.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    ser.set_defaults(func=_cmd_serial)

    base = sub.add_parser("baselines", help="Section 4 baseline algorithm claims")
    base.add_argument("--processors", type=int, nargs="*", default=None)
    base.set_defaults(func=_cmd_baselines)

    loss = sub.add_parser("losses", help="Section 3.1 loss decomposition")
    loss.add_argument("--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R1")
    loss.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    loss.add_argument("-P", "--processors", dest="processors_single", type=int, default=8)
    loss.set_defaults(func=_cmd_losses)

    speed = sub.add_parser(
        "speedup", help="compare backends (sim / threaded / multiproc) on one tree"
    )
    speed.add_argument(
        "--backend", choices=("sim", "threaded", "multiproc"), default="multiproc"
    )
    speed.add_argument(
        "--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R1"
    )
    speed.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    speed.add_argument("--processors", type=int, nargs="*", default=None)
    speed.add_argument(
        "--tt",
        choices=("off", "private", "shared"),
        default="off",
        help="transposition table: off, private (per worker), or shared "
        "(one concurrent table; on sim it persists across the sweep)",
    )
    speed.add_argument(
        "--eval-cache",
        choices=("off", "private", "shared"),
        default="off",
        help="Zobrist-keyed static-value cache: off, private (per worker), "
        "or shared (one concurrent cache; implies batched misses)",
    )
    speed.add_argument(
        "--batch-eval",
        action="store_true",
        help="batch frontier static evaluations (cheaper per leaf) even "
        "without a cache",
    )
    speed.add_argument(
        "--trace",
        choices=("off", "sampled", "full"),
        default="off",
        help="wall-clock span tracing on the real backends: off, sampled "
        "(1-in-16 cache spans), or full",
    )
    speed.add_argument(
        "--obs",
        action="store_true",
        help="also run each count under the telemetry bus and write ledger records",
    )
    speed.add_argument(
        "--obs-dir",
        default="results/ledger",
        help="directory for --obs ledger records (default: results/ledger)",
    )
    speed.set_defaults(func=_cmd_speedup)

    trace = sub.add_parser(
        "trace", help="emit a Perfetto-loadable Chrome trace for one run"
    )
    trace.add_argument(
        "--backend", choices=("sim", "threaded", "multiproc"), default="sim"
    )
    trace.add_argument(
        "--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R3"
    )
    trace.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    trace.add_argument("-P", "--processors", dest="processors_single", type=int, default=4)
    trace.add_argument(
        "-o", "--output", default=None, help="trace path (default: results/traces/...)"
    )
    trace.add_argument(
        "--trace",
        choices=("off", "sampled", "full"),
        default="off",
        help="real backends only: record wall-clock spans per OS worker and "
        "merge them into the Perfetto output (one process row per worker)",
    )
    trace.add_argument(
        "--jsonl", action="store_true", help="also write the raw event stream as JSONL"
    )
    trace.add_argument(
        "--ledger-dir",
        default=None,
        help="also write a ledger record into this directory",
    )
    trace.set_defaults(func=_cmd_trace)

    compare = sub.add_parser(
        "compare", help="diff two ledger records and flag regressions"
    )
    compare.add_argument("baseline", help="ledger record path or git SHA prefix")
    compare.add_argument("candidate", help="ledger record path or git SHA prefix")
    compare.add_argument(
        "--ledger-dir",
        default="results/ledger",
        help="directory searched when an operand is a SHA prefix",
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative (counters) / absolute (fractions) regression tolerance",
    )
    compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI gate mode)",
    )
    compare.set_defaults(func=_cmd_compare)

    explain = sub.add_parser(
        "explain",
        help="critical-path blame report + causal what-if profile for one sim run",
    )
    explain.add_argument(
        "--workload",
        "--tree",
        dest="tree",
        choices=("R1", "R2", "R3", "O1", "O2", "O3"),
        default="R3",
    )
    explain.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    explain.add_argument(
        "-P", "--P", "--processors", dest="processors_single", type=int, default=4
    )
    explain.add_argument(
        "--top", type=int, default=10, help="rows per blame/segment section"
    )
    explain.add_argument(
        "--eval-cache",
        choices=("off", "private", "shared"),
        default="off",
        help="run (and what-if re-run) with this eval-cache mode; each "
        "re-run gets a fresh cache so the sweep stays deterministic",
    )
    explain.add_argument(
        "--batch-eval",
        action="store_true",
        help="batch frontier static evaluations in the profiled run",
    )
    explain.add_argument(
        "--whatif",
        nargs="*",
        default=["static_eval", "heap_op", "expansion"],
        help="cost primitives to perturb (see repro.obs.whatif.PRIMITIVE_FIELDS)",
    )
    explain.add_argument(
        "--factors",
        nargs="*",
        type=float,
        default=[0.0, 0.5],
        help="scale factors per perturbed primitive (0 = free)",
    )
    explain.add_argument(
        "--skip-whatif",
        action="store_true",
        help="print only the critical-path report (no perturbed re-runs)",
    )
    explain.add_argument(
        "--trace-out",
        default=None,
        help="also write a Chrome trace with the critical-path overlay here",
    )
    explain.add_argument(
        "--ledger-dir",
        default=None,
        help="also write a ledger record (critpath composition + what-if points)",
    )
    explain.set_defaults(func=_cmd_explain)

    report = sub.add_parser("report", help="regenerate the headline exhibits as markdown")
    report.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    report.add_argument("--processors", type=int, nargs="*", default=None)
    report.set_defaults(func=_cmd_report)

    gantt = sub.add_parser("gantt", help="ASCII schedule chart of one parallel run")
    gantt.add_argument("--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R3")
    gantt.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    gantt.add_argument("-P", "--processors", dest="processors_single", type=int, default=8)
    gantt.add_argument("--width", type=int, default=72)
    gantt.add_argument(
        "--critpath",
        action="store_true",
        help="overlay the extracted critical path as ^ marker rows",
    )
    gantt.set_defaults(func=_cmd_gantt)

    top = sub.add_parser(
        "top", help="live terminal dashboard over one running real-backend search"
    )
    top.add_argument("--backend", choices=("threaded", "multiproc"), default="multiproc")
    top.add_argument("--tree", choices=("R1", "R2", "R3", "O1", "O2", "O3"), default="R3")
    top.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
    top.add_argument("-P", "--processors", dest="processors_single", type=int, default=4)
    top.add_argument(
        "--tt",
        choices=("off", "private", "shared"),
        default="off",
        help="transposition-table mode for the watched search",
    )
    top.add_argument(
        "--eval-cache",
        choices=("off", "private", "shared"),
        default="off",
        help="eval-cache mode for the watched search",
    )
    top.add_argument(
        "--trace",
        choices=("off", "sampled", "full"),
        default="sampled",
        help="span tracing mode of the watched search (default: sampled)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.2,
        help="seconds between dashboard refreshes (default: 0.2)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of redrawing in place (no ANSI escapes)",
    )
    top.add_argument(
        "--prom-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve the live registry as Prometheus text on this port "
        "(0 picks a free one) for the run's duration",
    )
    top.set_defaults(func=_cmd_top)

    demo = sub.add_parser("demo", help="30-second tour")
    demo.set_defaults(func=_cmd_demo)

    def add_service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0, help="0 picks a free port")
        p.add_argument("--workers", type=int, default=2, help="pool worker processes")
        p.add_argument(
            "--max-concurrency", type=int, default=2, help="requests deepening at once"
        )
        p.add_argument(
            "--queue-limit", type=int, default=32, help="waiting requests before shedding"
        )
        p.add_argument("--tt", choices=("off", "private", "shared"), default="shared")
        p.add_argument(
            "--eval-cache", choices=("off", "private", "shared"), default="off"
        )
        p.add_argument("--scale", choices=("reduced", "paper"), default="reduced")
        p.add_argument("--trace", choices=("off", "sampled", "full"), default="off")
        p.add_argument(
            "--metrics-port",
            type=int,
            default=None,
            metavar="PORT",
            help="serve Prometheus text metrics on this port (0 picks a free one)",
        )
        p.add_argument(
            "--no-slo",
            action="store_true",
            help="disable the per-priority SLO gauges (histograms stay on)",
        )
        p.add_argument(
            "--slo-objective",
            type=float,
            default=0.99,
            help="fraction of requests expected under their latency target",
        )
        p.add_argument(
            "--stall-overrun",
            type=float,
            default=0.0,
            metavar="FACTOR",
            help="flight-record a request once elapsed exceeds "
            "deadline * FACTOR (0 disables; needs --flight-dir)",
        )
        p.add_argument(
            "--flight-dir",
            default=None,
            metavar="DIR",
            help="directory receiving stall flight records",
        )

    serve = sub.add_parser(
        "serve",
        help="run the async search service over one persistent engine pool",
    )
    add_service_args(serve)
    serve.set_defaults(func=_cmd_serve)

    bench_traffic = sub.add_parser(
        "bench-traffic",
        help="throughput/latency of the service under synthetic traffic "
        "(warm shared caches vs cold start)",
    )
    add_service_args(bench_traffic)
    bench_traffic.add_argument("--requests", type=int, default=40)
    bench_traffic.add_argument(
        "--workloads", nargs="+", default=["R3"], metavar="NAME"
    )
    bench_traffic.add_argument("--depth", type=int, default=2)
    bench_traffic.add_argument("--seed", type=int, default=0)
    bench_traffic.add_argument(
        "--repeat",
        type=float,
        default=0.5,
        help="fraction of requests re-asking an already-issued position",
    )
    bench_traffic.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive an already-running server instead of an in-process one",
    )
    bench_traffic.add_argument(
        "--shutdown",
        action="store_true",
        help="with --connect: send the shutdown op after the run",
    )
    bench_traffic.set_defaults(func=_cmd_bench_traffic)

    profile_service = sub.add_parser(
        "profile-service",
        help="replay a traffic trace with request tracing on and print the "
        "p50/p95/p99 latency decomposition per stage",
    )
    add_service_args(profile_service)
    profile_service.add_argument("--requests", type=int, default=40)
    profile_service.add_argument(
        "--workloads", nargs="+", default=["R3"], metavar="NAME"
    )
    profile_service.add_argument("--depth", type=int, default=2)
    profile_service.add_argument("--seed", type=int, default=0)
    profile_service.add_argument(
        "--repeat",
        type=float,
        default=0.5,
        help="fraction of requests re-asking an already-issued position",
    )
    profile_service.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the per-request Perfetto tracks here",
    )
    profile_service.add_argument(
        "--ledger-dir",
        default=None,
        help="also write a ledger record (service + latency blocks)",
    )
    profile_service.set_defaults(func=_cmd_profile_service)

    verify = sub.add_parser(
        "verify", help="lint concurrency invariants and race-check all backends"
    )
    verify.add_argument(
        "--fast",
        action="store_true",
        help="skip the multiproc capture (spawns worker processes)",
    )
    verify.add_argument(
        "--obs",
        action="store_true",
        help="also self-check the telemetry pipeline (snapshot/trace/ledger)",
    )
    verify.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural flow analysis (lockset/escape/"
        "order/conformance) and its mutation self-test",
    )
    verify.add_argument(
        "--sarif-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --deep: write the flow findings as a SARIF 2.1.0 report",
    )
    verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.func
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
