"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GameError(ReproError):
    """A game rule or position was used inconsistently."""


class IllegalMoveError(GameError):
    """An attempt was made to play a move that the rules forbid."""


class SearchError(ReproError):
    """A search algorithm was configured or invoked incorrectly."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated processors are blocked and no event can fire."""


class WorkerProtocolError(SimulationError):
    """A worker coroutine yielded an operation the engine cannot honor."""


class LockOrderError(SimulationError):
    """Two locks were acquired in both nesting orders (potential deadlock)."""


class VerificationError(ReproError):
    """A :mod:`repro.verify` pass found a violated invariant."""


class ServeError(ReproError):
    """The search service was asked something it cannot honor."""
