"""Exporters: Chrome trace-event JSON (Perfetto) and JSONL.

The ASCII Gantt chart (:mod:`repro.analysis.gantt`) is good for a quick
terminal look; for deep dives the same schedule is better explored in
`Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``, which both
load the Chrome trace-event JSON format emitted here:

* per-processor ``"X"`` (complete) events for the busy / lock-wait /
  starve-wait intervals of a :class:`~repro.sim.metrics.ProcessorMetrics`
  timeline (one track per processor);
* ``"C"`` (counter) events for queue depths from the event bus;
* ``"i"`` (instant) events for node lifecycle, classification flips, and
  task flow;
* ``"M"`` (metadata) events naming the process and processor tracks.

With a :class:`~repro.obs.critpath.CriticalPath` supplied, a second
Perfetto process group (pid 1, "critical-path") overlays the extracted
path: one ``"X"`` row per path segment on the owning processor's lane,
one ``"i"`` marker per traversed lock/starve hand-off — so the exact
chain that bounds the makespan renders right under the full schedule.

Timestamps are Chrome-trace microseconds.  Simulated time maps one unit
to one microsecond, so the trace is byte-stable for a fixed seed; wall
clocks are rebased to the earliest event so traces start near zero.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from ..sim.metrics import SimReport
from . import events as _events
from .critpath import BUSY as _CP_BUSY
from .critpath import UNTAGGED, CriticalPath
from .live import COORDINATOR, LiveTrace, WorkerSpan, split_span_name
from .reqtrace import RequestTrace
from .snapshot import SECONDS, SIM_UNITS

#: Chrome-trace category names per event origin.
_CAT_PROC = "processor"
_CAT_NODES = "nodes"
_CAT_TASKS = "tasks"
_CAT_ENGINE = "engine"
_CAT_CRITPATH = "critpath"
_CAT_REQUEST = "request"

#: Perfetto process id of the critical-path overlay group.
_CRITPATH_PID = 1

#: Perfetto process id of the first per-request track of a service
#: trace; request ``i`` (by arrival order) renders at ``base + i``.
_REQUEST_PID_BASE = 1000

#: Perfetto process ids of the live wall-clock span groups: one pid per
#: OS worker at ``_LIVE_PID_BASE + index``, the coordinator one below.
#: The base leaves room under it for future overlay groups like pid 1.
_LIVE_PID_BASE = 100

#: Stable Perfetto thread id per span category within a worker group.
_LIVE_TIDS: Mapping[str, int] = {"task": 0, "tt": 1, "eval": 2, "heap": 3, "lock": 4}

_INSTANT_CATEGORIES: Mapping[str, str] = {
    _events.EV_NODE_CREATED: _CAT_NODES,
    _events.EV_NODE_POPPED: _CAT_NODES,
    _events.EV_NODE_DONE: _CAT_NODES,
    _events.EV_CLASS_FLIP: _CAT_NODES,
    _events.EV_TASK_SUBMIT: _CAT_TASKS,
    _events.EV_TASK_RESULT: _CAT_TASKS,
    _events.EV_ENGINE_CHOICE: _CAT_ENGINE,
}

TraceEvent = dict[str, object]


def _scale_for(time_unit: str) -> float:
    """Microseconds per bus-clock tick."""
    return 1e6 if time_unit == SECONDS else 1.0


def _timeline_events(report: SimReport) -> list[TraceEvent]:
    out: list[TraceEvent] = []
    for pid, proc in enumerate(report.processors):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": pid,
                "args": {"name": f"P{pid}"},
            }
        )
        for kind, start, end in proc.timeline or []:
            out.append(
                {
                    "ph": "X",
                    "name": kind,
                    "cat": _CAT_PROC,
                    "pid": 0,
                    "tid": pid,
                    "ts": start,
                    "dur": end - start,
                }
            )
    return out


def _critpath_events(path: CriticalPath) -> list[TraceEvent]:
    """Overlay rows for one extracted critical path (pid 1 group)."""
    out: list[TraceEvent] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _CRITPATH_PID,
            "tid": 0,
            "args": {"name": "critical-path"},
        }
    ]
    for pid in sorted({s.interval.wid for s in path.steps}):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _CRITPATH_PID,
                "tid": pid,
                "args": {"name": f"P{pid} (on path)"},
            }
        )
    for step in path.steps:
        iv = step.interval
        if iv.kind == _CP_BUSY:
            out.append(
                {
                    "ph": "X",
                    "name": iv.tag or UNTAGGED,
                    "cat": _CAT_CRITPATH,
                    "pid": _CRITPATH_PID,
                    "tid": iv.wid,
                    "ts": iv.end - step.credit,
                    "dur": step.credit,
                    "args": {"node": iv.node, "cls": iv.cls},
                }
            )
        else:
            out.append(
                {
                    "ph": "i",
                    "name": f"handoff {iv.kind}:{iv.tag}",
                    "cat": _CAT_CRITPATH,
                    "pid": _CRITPATH_PID,
                    "tid": iv.wid,
                    "ts": iv.end,
                    "s": "t",
                    "args": {"src": iv.src, "waited": iv.end - iv.start},
                }
            )
    return out


def _live_pid(worker: int) -> int:
    return _LIVE_PID_BASE - 1 if worker == COORDINATOR else _LIVE_PID_BASE + worker


def _live_events(trace: LiveTrace, *, scale: float, offset: float) -> list[TraceEvent]:
    """One Perfetto process group per OS worker of a traced real run.

    Workers become pid rows ``worker 0..n-1`` (coordinator just below),
    labelled with their OS pid; within a group each span category gets
    its own named thread lane.  Spans arrive already merged onto the
    coordinator timeline, so the rows line up even across processes.
    """
    out: list[TraceEvent] = []
    used: dict[int, set[str]] = {}
    for span in trace.spans:
        used.setdefault(span.worker, set()).add(span.cat)
    for worker in trace.workers():
        pid = _live_pid(worker)
        label = "coordinator" if worker == COORDINATOR else f"worker {worker}"
        os_pid = trace.pids.get(worker)
        if os_pid is not None:
            label += f" (os pid {os_pid})"
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for cat in sorted(used.get(worker, set()), key=lambda c: _LIVE_TIDS.get(c, 9)):
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": _LIVE_TIDS.get(cat, 9),
                    "args": {"name": cat},
                }
            )
    for span in trace.spans:
        out.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": f"live-{span.cat}",
                "pid": _live_pid(span.worker),
                "tid": _LIVE_TIDS.get(span.cat, 9),
                "ts": (span.start - offset) * scale,
                "dur": span.duration * scale,
            }
        )
    return out


def _bus_events(
    events: Iterable[_events.ObsEvent], *, scale: float, offset: float
) -> list[TraceEvent]:
    out: list[TraceEvent] = []
    for event in events:
        ts = (event.ts - offset) * scale
        if event.etype == _events.EV_QUEUE_DEPTH:
            queue = str(event.data.get("queue", "unknown"))
            out.append(
                {
                    "ph": "C",
                    "name": f"depth {queue}",
                    "cat": _CAT_PROC,
                    "pid": 0,
                    "tid": 0,
                    "ts": ts,
                    "args": {"depth": event.data.get("depth", 0)},
                }
            )
        elif event.etype == _events.EV_PROC_INTERVAL:
            start = float(event.data.get("start", event.ts))  # type: ignore[arg-type]
            end = float(event.data.get("end", event.ts))  # type: ignore[arg-type]
            out.append(
                {
                    "ph": "X",
                    "name": str(event.data.get("kind", "busy")),
                    "cat": _CAT_PROC,
                    "pid": 0,
                    "tid": event.task,
                    "ts": (start - offset) * scale,
                    "dur": (end - start) * scale,
                }
            )
        else:
            out.append(
                {
                    "ph": "i",
                    "name": event.etype,
                    "cat": _INSTANT_CATEGORIES.get(event.etype, "misc"),
                    "pid": 0,
                    "tid": event.task,
                    "ts": ts,
                    "s": "t",
                    "args": dict(event.data),
                }
            )
    return out


def render_chrome_trace(
    events: Iterable[_events.ObsEvent],
    *,
    report: Optional[SimReport] = None,
    time_unit: str = SIM_UNITS,
    metadata: Optional[Mapping[str, object]] = None,
    critpath: Optional[CriticalPath] = None,
    live: Optional[LiveTrace] = None,
) -> str:
    """Render one run as deterministic Chrome trace-event JSON.

    Args:
        events: bus events of the run (may be empty).
        report: engine report whose per-processor timelines become the
            schedule tracks (simulated backend only).
        time_unit: denomination of the event timestamps —
            :data:`~repro.obs.snapshot.SIM_UNITS` maps one unit to one
            microsecond and keeps absolute times (byte-stable for a
            fixed seed); :data:`~repro.obs.snapshot.SECONDS` rebases to
            the earliest event and scales to microseconds.
        metadata: extra key/values stored in the trace envelope.
        critpath: extracted critical path to overlay as a second process
            group (simulated time only — timestamps are used unscaled).
        live: merged wall-clock span timeline of a traced real-backend
            run — rendered as one Perfetto process group per OS worker
            (wall-clock time only; shares the rebasing offset with the
            bus events so both layers line up).

    Returns:
        JSON text with sorted keys and no incidental whitespace, so a
        fixed-seed simulated run renders byte-identically.
    """
    event_list = list(events)
    offset = 0.0
    if time_unit == SECONDS:
        starts = [event.ts for event in event_list]
        if live is not None:
            starts.extend(span.start for span in live.spans)
        if starts:
            offset = min(starts)
    trace_events: list[TraceEvent] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "er-search"},
        }
    ]
    if report is not None:
        trace_events.extend(_timeline_events(report))
    trace_events.extend(_bus_events(event_list, scale=_scale_for(time_unit), offset=offset))
    if critpath is not None:
        trace_events.extend(_critpath_events(critpath))
    if live is not None:
        trace_events.extend(_live_events(live, scale=_scale_for(time_unit), offset=offset))
    payload: dict[str, object] = {
        "displayTimeUnit": "ms",
        "metadata": dict(metadata) if metadata else {},
        "traceEvents": trace_events,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[_events.ObsEvent],
    *,
    report: Optional[SimReport] = None,
    time_unit: str = SIM_UNITS,
    metadata: Optional[Mapping[str, object]] = None,
    critpath: Optional[CriticalPath] = None,
    live: Optional[LiveTrace] = None,
) -> Path:
    """Write :func:`render_chrome_trace` output to ``path``; returns it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_chrome_trace(
            events, report=report, time_unit=time_unit, metadata=metadata,
            critpath=critpath, live=live,
        ),
        encoding="utf-8",
    )
    return target


def _request_stage_events(
    trace: RequestTrace, *, pid: int, scale: float, offset: float
) -> list[TraceEvent]:
    """The synthetic stage lane (tid 0) of one request's track.

    Stages are laid end to end from ``arrived_at`` in pipeline order —
    admission, queue wait, one slice per deepening iteration, reply
    serialization, then the explicit ``unattributed`` remainder.  Because
    the decomposition conserves, the lane spans *exactly*
    ``[arrived_at, finished_at]``: any gap would be a conservation bug,
    so the track doubles as a visual audit of the identity.
    """
    timing = trace.timing
    slices: list[tuple[str, float]] = [
        ("admission", timing.admission_s),
        ("queue_wait", timing.queue_wait_s),
    ]
    slices.extend(
        (f"iteration d{index + 1}", seconds)
        for index, seconds in enumerate(timing.iterations_s)
    )
    slices.append(("reply_serialize", timing.reply_serialize_s))
    slices.append(("unattributed", timing.unattributed_s))
    out: list[TraceEvent] = []
    cursor = trace.arrived_at
    for name, seconds in slices:
        out.append(
            {
                "ph": "X",
                "name": name,
                "cat": _CAT_REQUEST,
                "pid": pid,
                "tid": 0,
                "ts": (cursor - offset) * scale,
                "dur": max(0.0, seconds) * scale,
            }
        )
        cursor += seconds
    return out


def render_service_trace(
    traces: Iterable[RequestTrace],
    *,
    worker_spans: Optional[Mapping[str, Iterable[WorkerSpan]]] = None,
    span_pids: Optional[Mapping[int, int]] = None,
    metadata: Optional[Mapping[str, object]] = None,
) -> str:
    """Render a service run as per-request Perfetto tracks.

    Each :class:`~repro.obs.reqtrace.RequestTrace` becomes its own
    Perfetto process group (pids from :data:`_REQUEST_PID_BASE`, arrival
    order): thread 0 carries the conserved stage decomposition laid end
    to end over ``[arrived_at, finished_at]``, and — when the pool ran
    with tracing on — one extra thread per engine worker shows that
    worker's tagged spans for *this* request, threaded across OS
    processes (``worker_spans`` keyed by ``request_id``, already merged
    onto the server clock by the pool's offset estimators; ``span_pids``
    labels worker lanes with their OS pid).

    Timestamps are wall-clock seconds rebased to the earliest request
    arrival and scaled to Chrome-trace microseconds.
    """
    trace_list = sorted(traces, key=lambda t: (t.arrived_at, t.request_id))
    by_request: dict[str, list[WorkerSpan]] = {
        request_id: list(spans)
        for request_id, spans in (worker_spans or {}).items()
    }
    pids = dict(span_pids or {})
    starts = [trace.arrived_at for trace in trace_list]
    for spans in by_request.values():
        starts.extend(span.start for span in spans)
    offset = min(starts) if starts else 0.0
    scale = 1e6
    events: list[TraceEvent] = []
    for index, trace in enumerate(trace_list):
        pid = _REQUEST_PID_BASE + index
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": (
                        f"request {trace.request_id}/{trace.span_id} "
                        f"(prio {trace.priority}, {trace.status})"
                    )
                },
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": "stages"},
            }
        )
        events.extend(
            _request_stage_events(trace, pid=pid, scale=scale, offset=offset)
        )
        request_spans = by_request.get(trace.request_id, [])
        for worker in sorted({span.worker for span in request_spans}):
            label = f"engine worker {worker}"
            os_pid = pids.get(worker)
            if os_pid is not None:
                label += f" (os pid {os_pid})"
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": 1 + worker,
                    "args": {"name": label},
                }
            )
        for span in request_spans:
            base, tag = split_span_name(span.name)
            args: dict[str, object] = {"tag": tag or ""}
            os_pid = pids.get(span.worker)
            if os_pid is not None:
                args["os_pid"] = os_pid
            events.append(
                {
                    "ph": "X",
                    "name": base,
                    "cat": f"live-{span.cat}",
                    "pid": pid,
                    "tid": 1 + span.worker,
                    "ts": (span.start - offset) * scale,
                    "dur": span.duration * scale,
                    "args": args,
                }
            )
    payload: dict[str, object] = {
        "displayTimeUnit": "ms",
        "metadata": dict(metadata) if metadata else {},
        "traceEvents": events,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_service_trace(
    path: Union[str, Path],
    traces: Iterable[RequestTrace],
    *,
    worker_spans: Optional[Mapping[str, Iterable[WorkerSpan]]] = None,
    span_pids: Optional[Mapping[int, int]] = None,
    metadata: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write :func:`render_service_trace` output to ``path``; returns it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_service_trace(
            traces, worker_spans=worker_spans, span_pids=span_pids,
            metadata=metadata,
        ),
        encoding="utf-8",
    )
    return target


def render_jsonl(events: Iterable[_events.ObsEvent]) -> str:
    """One JSON object per line, in emission order (machine diffing)."""
    lines = [
        json.dumps(
            {"etype": e.etype, "ts": e.ts, "task": e.task, "data": dict(e.data)},
            sort_keys=True,
            separators=(",", ":"),
        )
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: Union[str, Path], events: Iterable[_events.ObsEvent]) -> Path:
    """Write :func:`render_jsonl` output to ``path``; returns it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_jsonl(events), encoding="utf-8")
    return target
