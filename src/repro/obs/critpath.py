"""Exact critical-path extraction over the simulated ER schedule.

The discrete-event engine charges every simulated microsecond to exactly
one interval per processor — busy (a ``Compute``), interference (a lock
wait), or starvation (a work wait) — and the telemetry invariants pin
the tiling: ``accounted == finish_time`` and ``accounted + tail_idle ==
makespan`` per processor (see :mod:`repro.sim.metrics`).  A
:class:`ScheduleRecorder` installed during a run captures those
intervals *with their dependency edges*:

* program order: on one processor, each interval starts where the
  previous one ended;
* lock hand-off: a lock-wait interval ends at the instant the releasing
  processor executed ``Release`` — the releaser is recorded as ``src``;
* work hand-off: a starvation interval ends at the instant the notifying
  processor called ``notify_all`` — again recorded as ``src``
  (the engine's wake-ups; see :mod:`repro.sim.locks`);
* heap hand-off: queue pops in :mod:`repro.core.er_queues` record which
  queue served each tree node, so blame rows can name the origin.

:func:`extract` walks this record *backwards* from the makespan: inside
a busy interval it follows program order; at the end of a wait interval
it jumps to the ``src`` processor, because that hand-off — not the
waiter's own history — is what the finish time actually depends on.
Wait intervals contribute zero path time (they are concurrent with the
``src`` processor's busy time); busy credits telescope, so the path
length equals the makespan *exactly*, by construction — asserted, not
approximated.  Everything here is pure arithmetic over the recorded
floats, so reports and overlays are byte-deterministic at a fixed seed.

The walker never imports :mod:`repro.sim` (the engine imports *us*);
the interval kind strings below deliberately mirror
``repro.sim.metrics.BUSY/LOCK_WAIT/STARVE``.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from ..errors import SimulationError
from . import events as _events

#: Interval kind strings — same vocabulary as ``repro.sim.metrics``.
BUSY = "busy"
LOCK_WAIT = "lock"
STARVE = "starve"

#: How each charged op kind from ``repro.sim.ops`` shows up in critical-
#: path attribution.  The VER006 staticcheck rule requires every Op
#: subclass to appear here (and every entry to name a real loss class),
#: so a new op kind cannot silently escape the profiler.
OP_ATTRIBUTION: dict[str, str] = {
    "Compute": "busy",
    "Acquire": "interference",
    "Release": "interference",
    "WaitWork": "starvation",
}

#: Fractional cost decomposition attached to mixed charges:
#: ``(("static_eval", 40.0), ("expansion", 10.0))`` — raw weights,
#: normalised at attribution time.
Parts = tuple[tuple[str, float], ...]

#: Tag used when a busy charge carries no primitive annotation.
UNTAGGED = "(untagged)"


@dataclass(frozen=True)
class Interval:
    """One charged interval on one simulated processor.

    For ``kind == BUSY`` the charge metadata (``tag``/``node``/``cls``/
    ``parts``) comes from the ``Compute`` op; for waits, ``tag`` names
    the lock or signal waited on and ``src`` the processor whose
    release/notify ended the wait.
    """

    wid: int
    kind: str
    start: float
    end: float
    tag: str = ""
    node: str = ""
    cls: str = ""
    parts: Parts = ()
    src: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


class ScheduleRecorder:
    """Collects the dependency-annotated schedule of one sim run.

    Install via :func:`recording`; the engine and the ER queues feed it
    through the module-global ``CURRENT`` hook (the same idiom as
    :mod:`repro.verify.trace` and :mod:`repro.obs.events`).
    """

    def __init__(self) -> None:
        self.intervals: list[Interval] = []
        #: node path -> name of the queue that last served it.
        self.node_queue: dict[str, str] = {}

    def on_busy(
        self,
        wid: int,
        start: float,
        end: float,
        tag: str = "",
        node: str = "",
        cls: str = "",
        parts: Parts = (),
    ) -> None:
        """Record a positive-length ``Compute`` charge."""
        self.intervals.append(
            Interval(wid=wid, kind=BUSY, start=start, end=end, tag=tag,
                     node=node, cls=cls, parts=parts)
        )

    def on_wait(
        self, wid: int, kind: str, start: float, end: float, via: str, src: int
    ) -> None:
        """Record a positive-length lock or work wait ended by ``src``."""
        self.intervals.append(
            Interval(wid=wid, kind=kind, start=start, end=end, tag=via, src=src)
        )

    def on_pop(self, queue: str, node: str) -> None:
        """Record which heap queue handed out a tree node."""
        self.node_queue[node] = queue


#: Module-global recorder hook, engine-facing.
CURRENT: Optional[ScheduleRecorder] = None


def install(recorder: ScheduleRecorder) -> None:
    global CURRENT
    if CURRENT is not None:
        raise SimulationError("a schedule recorder is already installed")
    CURRENT = recorder


def uninstall() -> None:
    global CURRENT
    CURRENT = None


@contextmanager
def recording() -> Iterator[ScheduleRecorder]:
    """Install a fresh :class:`ScheduleRecorder` for the enclosed run."""
    recorder = ScheduleRecorder()
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()


@dataclass(frozen=True)
class PathStep:
    """One traversed element of the critical path, in forward time order.

    Busy steps carry ``credit`` — the slice of the interval that lies on
    the path (usually the whole interval).  Wait steps are zero-credit
    hand-off markers: the path jumps *to* this processor from
    ``interval.src`` at ``interval.end``.
    """

    interval: Interval
    credit: float


@dataclass(frozen=True)
class CriticalPath:
    """The exact longest dependency chain through one sim schedule."""

    makespan: float
    steps: tuple[PathStep, ...]
    #: node path -> serving queue name (from the recorder's pop log).
    node_queue: Mapping[str, str] = field(default_factory=dict)

    @property
    def length(self) -> float:
        """Total busy credit on the path; equals ``makespan`` exactly."""
        return sum(s.credit for s in self.busy_steps)

    @property
    def busy_steps(self) -> tuple[PathStep, ...]:
        return tuple(s for s in self.steps if s.interval.kind == BUSY)

    @property
    def handoffs(self) -> tuple[PathStep, ...]:
        return tuple(s for s in self.steps if s.interval.kind != BUSY)

    def handoff_counts(self) -> dict[str, int]:
        """Lock/starve hand-offs traversed, keyed by loss class."""
        counts = {"lock": 0, "starve": 0}
        for step in self.handoffs:
            counts[step.interval.kind] += 1
        return counts

    def by_primitive(self) -> dict[str, float]:
        """Path time per cost primitive; mixed charges split by ``parts``."""
        out: dict[str, float] = {}
        for step in self.busy_steps:
            iv = step.interval
            if iv.parts:
                total = sum(w for _, w in iv.parts)
                if total > 0:
                    for name, weight in iv.parts:
                        out[name] = out.get(name, 0.0) + step.credit * (weight / total)
                    continue
            tag = iv.tag or UNTAGGED
            out[tag] = out.get(tag, 0.0) + step.credit
        return out

    def by_node(self) -> dict[str, float]:
        """Path time per tree node (infrastructure charges -> ``(infra)``)."""
        out: dict[str, float] = {}
        for step in self.busy_steps:
            node = step.interval.node or "(infra)"
            out[node] = out.get(node, 0.0) + step.credit
        return out

    def by_class(self) -> dict[str, float]:
        """Path time per e/r classification at charge time."""
        out: dict[str, float] = {}
        for step in self.busy_steps:
            cls = step.interval.cls or "(infra)"
            out[cls] = out.get(cls, 0.0) + step.credit
        return out

    def composition(self) -> dict[str, float]:
        """Flat, ledger-friendly summary (stable key names).

        ``primitive.*`` entries sum to ``length``; ``handoffs.*`` count
        the hand-off edges the path traversed.
        """
        flat: dict[str, float] = {"length": self.length, "makespan": self.makespan}
        for name, value in sorted(self.by_primitive().items()):
            flat[f"primitive.{name}"] = value
        for kind, count in sorted(self.handoff_counts().items()):
            flat[f"handoffs.{kind}"] = float(count)
        return flat


def extract(recorder: ScheduleRecorder, makespan: float) -> CriticalPath:
    """Walk the recorded schedule backwards from ``makespan`` to time 0.

    Raises:
        SimulationError: if the record does not tile the schedule (which
            would mean the engine hooks and the accounting invariants
            disagree — a bug, not a data condition).
    """
    eps = 1e-9 * max(1.0, makespan)
    by_wid: dict[int, list[Interval]] = {}
    for iv in recorder.intervals:
        by_wid.setdefault(iv.wid, []).append(iv)
    for ivs in by_wid.values():
        ivs.sort(key=lambda iv: (iv.start, iv.end))
    starts = {wid: [iv.start for iv in ivs] for wid, ivs in by_wid.items()}
    # Monotone per-processor consumption pointer: re-entering a processor
    # may only look strictly earlier than what the path already consumed,
    # which rules out cycles among zero-length hand-offs at one instant.
    pointer = {wid: len(ivs) for wid, ivs in by_wid.items()}

    if makespan <= eps or not by_wid:
        return CriticalPath(makespan=makespan, steps=(),
                            node_queue=dict(recorder.node_queue))

    # Start on the processor whose last interval ends at the makespan
    # (lowest wid on ties, deterministically).
    wid = min(
        (w for w, ivs in sorted(by_wid.items()) if abs(ivs[-1].end - makespan) <= eps),
        default=-1,
    )
    if wid < 0:
        raise SimulationError("no recorded interval reaches the makespan")

    steps: list[PathStep] = []
    t = makespan
    while t > eps:
        ivs = by_wid.get(wid)
        if not ivs:
            raise SimulationError(f"critical path fell off processor {wid} at t={t}")
        # Rightmost interval with start < t, clamped below the pointer.
        idx = min(bisect_left(starts[wid], t) - 1, pointer[wid] - 1)
        if idx < 0 or ivs[idx].end < t - eps:
            raise SimulationError(
                f"schedule gap on processor {wid} before t={t}: "
                "recorded intervals do not tile the run"
            )
        iv = ivs[idx]
        pointer[wid] = idx
        if iv.kind == BUSY:
            steps.append(PathStep(interval=iv, credit=t - iv.start))
            t = iv.start
        else:
            if iv.src < 0:
                raise SimulationError(f"wait interval without a waker: {iv!r}")
            steps.append(PathStep(interval=iv, credit=0.0))
            wid = iv.src  # the hand-off is the binding dependency
    steps.reverse()
    return CriticalPath(makespan=makespan, steps=tuple(steps),
                        node_queue=dict(recorder.node_queue))


def bus_events(path: CriticalPath) -> list[_events.ObsEvent]:
    """Render the path as telemetry events (``EV_CRIT_SEGMENT``).

    Useful for JSONL export alongside a run's live event stream; the
    Chrome-trace overlay in :mod:`repro.obs.export` draws from the path
    directly instead.
    """
    out: list[_events.ObsEvent] = []
    for step in path.steps:
        iv = step.interval
        out.append(
            _events.ObsEvent(
                etype=_events.EV_CRIT_SEGMENT,
                ts=iv.start,
                task=iv.wid,
                data={
                    "kind": iv.kind,
                    "end": iv.end,
                    "credit": step.credit,
                    "tag": iv.tag,
                    "node": iv.node,
                },
            )
        )
    return out


def _fmt(value: float) -> str:
    return f"{value:.6f}".rstrip("0").rstrip(".")


def _share(value: float, total: float) -> str:
    if total <= 0:
        return "0.0%"
    return f"{100.0 * value / total:.1f}%"


def render_report(
    path: CriticalPath,
    *,
    title: str = "",
    top: int = 10,
) -> str:
    """Deterministic plain-text blame report for one critical path."""
    lines: list[str] = []
    header = "critical path"
    if title:
        header += f": {title}"
    lines.append(header)
    exact = abs(path.length - path.makespan) <= 1e-9 * max(1.0, path.makespan)
    lines.append(
        f"  path length {_fmt(path.length)} "
        + ("== makespan (exact)" if exact else f"!= makespan {_fmt(path.makespan)}")
    )
    counts = path.handoff_counts()
    lines.append(
        f"  segments {len(path.busy_steps)}"
        f"  lock hand-offs {counts['lock']}"
        f"  starve hand-offs {counts['starve']}"
    )

    lines.append("attribution by primitive (path time, share of makespan):")
    prim = path.by_primitive()
    for name, value in sorted(prim.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:<14} {_fmt(value):>14}  {_share(value, path.makespan):>6}")

    lines.append("attribution by e/r class:")
    for name, value in sorted(path.by_class().items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:<14} {_fmt(value):>14}  {_share(value, path.makespan):>6}")

    lines.append(f"blame by node (top {top}):")
    nodes = path.by_node()
    for name, value in sorted(nodes.items(), key=lambda kv: (-kv[1], kv[0]))[:top]:
        via = path.node_queue.get(name, "")
        suffix = f"  via {via}" if via else ""
        lines.append(f"  {name:<18} {_fmt(value):>14}  {_share(value, path.makespan):>6}{suffix}")

    lines.append(f"longest path segments (top {top}):")
    longest = sorted(
        path.busy_steps,
        key=lambda s: (-s.credit, s.interval.start, s.interval.wid),
    )[:top]
    for step in longest:
        iv = step.interval
        tag = iv.tag or UNTAGGED
        node = f" node {iv.node}" if iv.node else ""
        cls = f" [{iv.cls}]" if iv.cls else ""
        mix = ""
        if iv.parts:
            total = sum(w for _, w in iv.parts)
            if total > 0:
                mix = " (" + ", ".join(
                    f"{name} {_share(w, total)}" for name, w in iv.parts
                ) + ")"
        lines.append(
            f"  [{_fmt(iv.start):>12}, {_fmt(iv.end):>12}] "
            f"P{iv.wid} {tag}{node}{cls}{mix}"
        )

    lines.append("hand-off chain (first %d traversed):" % top)
    for step in path.handoffs[:top]:
        iv = step.interval
        lines.append(
            f"  t={_fmt(iv.end):>12}  P{iv.src} -> P{iv.wid} via {iv.kind}:{iv.tag}"
            f"  (waited {_fmt(iv.duration)})"
        )
    return "\n".join(lines) + "\n"
