"""Structured telemetry event bus shared by all three ER backends.

:mod:`repro.verify.trace` records *synchronization* events for the race
detector; this module records *semantic* telemetry on top of it: queue
depths, speculative-heap size, node lifecycle transitions,
e/r-classification flips, multiproc task flow, and engine move choices.
The two buses are deliberately separate — the race detector needs a
minimal, lockset-friendly vocabulary, while telemetry wants rich payloads
and timestamps — but they share the install/uninstall idiom: with no bus
installed every hook is one module-global ``is None`` test, so the
instrumentation is free on the hot path.

Timestamps come from the bus *clock*.  The discrete-event engine installs
its simulated clock for the duration of a run (one simulated unit per
tick); the threaded driver and the multiproc coordinator leave the
default wall clock (``time.perf_counter``) in place.  Exporters
(:mod:`repro.obs.export`) normalize either to Chrome trace-event
microseconds.

Task attribution mirrors :mod:`repro.verify.trace`: the simulator sets
the current task id explicitly before resuming each worker; the threaded
backend falls back to ``threading.get_ident()``.  ``list.append`` is
atomic under the GIL, so threads may share one bus.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional

#: Depth of a problem-heap queue after a push or pop (`queue`, `depth`).
EV_QUEUE_DEPTH = "queue-depth"
#: A tree node came into existence (`path`, `ntype`).
EV_NODE_CREATED = "node-created"
#: A node was taken off the problem heap (`path`, `speculative`).
EV_NODE_POPPED = "node-popped"
#: A node combined or was cut off (`path`, `value`).
EV_NODE_DONE = "node-done"
#: An undecided node was classified (`path`, `flip` of "u->e" / "u->r").
EV_CLASS_FLIP = "class-flip"
#: The multiproc coordinator handed a subtree task to a worker
#: (`path`, `kind` of "eval" / "refute").
EV_TASK_SUBMIT = "task-submit"
#: A subtree task's result arrived (`path`, `applied`, `duration`, `worker`).
EV_TASK_RESULT = "task-result"
#: The game engine chose a move (`depth`, `cost`, `move_index`).
EV_ENGINE_CHOICE = "engine-choice"
#: One processor schedule interval, synthesized by the exporters from a
#: :class:`~repro.sim.metrics.ProcessorMetrics` timeline
#: (`kind` of busy / lock / starve, `start`, `end`).
EV_PROC_INTERVAL = "proc-interval"
#: A transposition-table probe at the parallel level (`stripe`, `hit`).
#: Serial-subtree probes are counted in the table's own counters but not
#: re-emitted per probe — they would dominate the event stream.
EV_TT_PROBE = "tt-probe"
#: A transposition-table store at the parallel level (`stripe`, `evicted`).
EV_TT_STORE = "tt-store"
#: A worker found its table stripe's lock already held (`stripe`, `op`) —
#: the cache's contribution to interference loss.
EV_TT_CONTENTION = "tt-contention"
#: An evaluation-cache probe at the parallel level (`stripe`, `hit`).
#: Serial-subtree probes stay in the cache's own counters, like TT ones.
EV_EVAL_PROBE = "eval-probe"
#: An evaluation-cache store at the parallel level (`stripe`, `evicted`).
EV_EVAL_STORE = "eval-store"
#: One batched static evaluation (`n` leaves amortized in the call).
EV_EVAL_BATCH = "eval-batch"
#: A worker found its eval-cache stripe's lock already held
#: (`stripe`, `op`) — the cache's contribution to interference loss.
EV_EVAL_CONTENTION = "eval-contention"
#: One element of an extracted critical path, synthesized after a run by
#: :func:`repro.obs.critpath.bus_events` (`kind`, `end`, `credit`, `tag`,
#: `node`) — never emitted live.
EV_CRIT_SEGMENT = "crit-segment"

#: Every event type the bus may carry, in documentation order.
ALL_EVENT_TYPES: tuple[str, ...] = (
    EV_QUEUE_DEPTH,
    EV_NODE_CREATED,
    EV_NODE_POPPED,
    EV_NODE_DONE,
    EV_CLASS_FLIP,
    EV_TASK_SUBMIT,
    EV_TASK_RESULT,
    EV_ENGINE_CHOICE,
    EV_PROC_INTERVAL,
    EV_TT_PROBE,
    EV_TT_STORE,
    EV_TT_CONTENTION,
    EV_EVAL_PROBE,
    EV_EVAL_STORE,
    EV_EVAL_BATCH,
    EV_EVAL_CONTENTION,
    EV_CRIT_SEGMENT,
)


@dataclass(frozen=True)
class ObsEvent:
    """One telemetry event.

    Attributes:
        etype: one of the ``EV_*`` constants above.
        ts: bus-clock timestamp (simulated units or wall seconds).
        task: worker/processor id, or an OS thread id, or -1 when the
            emitter runs outside any worker (e.g. the multiproc
            coordinator before the run starts).
        data: event-type-specific payload, JSON-serializable by
            construction (strings, numbers, booleans).
    """

    etype: str
    ts: float
    task: int
    data: Mapping[str, object] = field(default_factory=dict)


class EventBus:
    """Accumulates events; install with :func:`observing` or :func:`install`."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.events: list[ObsEvent] = []
        #: Per-op-kind counts fed by the simulator's dispatch loop
        #: (:meth:`count_op`); folded into a registry by
        #: :func:`repro.obs.registry.aggregate`.
        self.op_counts: dict[str, int] = {}
        #: Explicit task id (simulated worker); ``None`` = use thread id.
        self.task: Optional[int] = None
        self._clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        #: Optional live sink called with every emitted event, after it
        #: is appended (``None`` = record-only, the default).  Used by
        #: :class:`repro.obs.live.LiveFeed` to keep a metrics registry
        #: current *during* a run; the sink owns its thread safety.
        self._live_sink: Optional[Callable[[ObsEvent], None]] = None

    def task_id(self) -> int:
        return self.task if self.task is not None else threading.get_ident()

    def now(self) -> float:
        return self._clock()

    def use_clock(self, clock: Optional[Callable[[], float]]) -> Callable[[], float]:
        """Swap the time source (``None`` restores the wall clock).

        Returns:
            The previous source, so nested installers (the simulation
            engine inside :func:`repro.core.er_parallel.parallel_er`)
            can restore it rather than clobber the outer clock.
        """
        prev = self._clock
        self._clock = clock if clock is not None else time.perf_counter
        return prev

    def attach_live(self, sink: Optional[Callable[[ObsEvent], None]]) -> None:
        """Forward every subsequent event to ``sink`` (``None`` detaches).

        The sink runs inline on the emitting thread — keep it cheap and
        make it thread-safe; a raising sink would propagate into the
        instrumented code.
        """
        self._live_sink = sink

    def emit(self, etype: str, task: Optional[int] = None, **data: object) -> None:
        """Record one event stamped with the bus clock."""
        event = ObsEvent(etype, self._clock(), task if task is not None else self.task_id(), data)
        self.events.append(event)
        if self._live_sink is not None:
            self._live_sink(event)

    def count_op(self, kind: str) -> None:
        """Tally one simulator op dispatch (``Compute``, ``Acquire``, ...)."""
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1


#: The active bus; ``None`` disables all telemetry.  Read directly by the
#: instrumented modules (``events.CURRENT is not None``) so the disabled
#: path costs one global load.
CURRENT: Optional[EventBus] = None


def install(bus: EventBus) -> None:
    global CURRENT
    CURRENT = bus


def uninstall() -> None:
    global CURRENT
    CURRENT = None


@contextmanager
def observing(clock: Optional[Callable[[], float]] = None) -> Iterator[EventBus]:
    """Collect telemetry for everything run within the block.

    Yields:
        The bus; read ``bus.events`` / ``bus.op_counts`` after the block.
    """
    bus = EventBus(clock)
    install(bus)
    try:
        yield bus
    finally:
        uninstall()


def set_task(task: Optional[int]) -> None:
    """Attribute subsequent events to ``task`` (simulator use)."""
    if CURRENT is not None:
        CURRENT.task = task
