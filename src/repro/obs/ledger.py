"""Persistent run ledger: one JSON record per observed run, plus diffing.

``results/ledger/`` accumulates one record per run — git SHA, seed,
workload, backend, processor count, cost model, and the full
:class:`~repro.obs.snapshot.Snapshot` — so any two points in the repo's
history can be compared.  :func:`compare_records` flags efficiency,
node-count, and critical-path-composition regressions beyond a
tolerance; the ``repro-gametree compare`` subcommand and the failing CI
gate (±10 %, ``[skip-ledger-gate]`` commit-message escape hatch) are
thin wrappers over it.  The simulated backend is deterministic across
machines, which is what makes a *committed* baseline record a
meaningful CI reference.

Records may additionally carry a ``whatif`` array (causal what-if sweep
points from :mod:`repro.obs.whatif`), a ``snapshot.critpath`` block
(flat :meth:`~repro.obs.critpath.CriticalPath.composition`), and a
``trace`` block (wall-clock tracing summary of a traced real-backend
run — mode, span count, drops, measured overhead); all are optional so
older records stay valid.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from .snapshot import SIM_UNITS, Snapshot

SCHEMA_VERSION = 1

#: JSON-schema (draft 2020-12 subset) for one ledger record.  Kept in
#: sync with :func:`make_record`; :func:`validate_record` enforces the
#: same structure without requiring the ``jsonschema`` package.
LEDGER_SCHEMA: dict[str, object] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro-gametree run ledger record",
    "type": "object",
    "required": [
        "schema_version",
        "git_sha",
        "created_at",
        "seed",
        "workload",
        "scale",
        "backend",
        "n_processors",
        "cost_model",
        "config",
        "snapshot",
    ],
    "properties": {
        "schema_version": {"const": SCHEMA_VERSION},
        "git_sha": {"type": "string"},
        "created_at": {"type": "number"},
        "seed": {"type": ["integer", "null"]},
        "workload": {"type": "string"},
        "scale": {"type": "string"},
        "backend": {"enum": ["sim", "threaded", "multiproc", "serve"]},
        "n_processors": {"type": "integer", "minimum": 1},
        "cost_model": {"type": "object"},
        "config": {"type": "object"},
        # Optional: causal what-if sweep (repro.obs.whatif), one point per
        # perturbed (primitive, factor) pair.  Absent on pre-critpath
        # records and on runs that skipped the sweep.
        "whatif": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "primitive",
                    "factor",
                    "predicted_makespan",
                    "actual_makespan",
                ],
            },
        },
        # Optional: service-level traffic summary (repro.serve), present
        # on "serve"-backend records produced by the traffic benchmark.
        # Latencies are end-to-end per request (admission to reply);
        # counter conservation (requests == completed + shed) is
        # enforced by validate_record.
        "service": {
            "type": "object",
            "required": [
                "requests",
                "admitted",
                "completed",
                "shed",
                "rps",
                "p50_s",
                "p95_s",
                "p99_s",
            ],
            "properties": {
                "requests": {"type": "integer", "minimum": 0},
                "admitted": {"type": "integer", "minimum": 0},
                "completed": {"type": "integer", "minimum": 0},
                "shed": {"type": "integer", "minimum": 0},
                "rps": {"type": "number", "minimum": 0},
                "p50_s": {"type": "number", "minimum": 0},
                "p95_s": {"type": "number", "minimum": 0},
                "p99_s": {"type": "number", "minimum": 0},
            },
        },
        # Optional: per-stage latency decomposition (repro.obs.reqtrace),
        # present on "serve"-backend records produced with request
        # tracing.  Stage keys follow repro.serve.traffic.STAGE_ORDER
        # plus the conserved "end_to_end" total; "unattributed" must be
        # present — the remainder is reported, never hidden.
        "latency": {
            "type": "object",
            "required": ["samples", "stages"],
            "properties": {
                "samples": {"type": "integer", "minimum": 0},
                "stages": {
                    "type": "object",
                    "required": ["end_to_end", "unattributed"],
                    "additionalProperties": {
                        "type": "object",
                        "required": ["mean_s", "p50_s", "p95_s", "p99_s"],
                    },
                },
            },
        },
        # Optional: live wall-clock tracing summary (repro.obs.live).
        # Absent on untraced runs and on all simulated-backend records.
        "trace": {
            "type": "object",
            "required": ["mode", "spans", "dropped", "overhead_fraction"],
            "properties": {
                "mode": {"enum": ["off", "sampled", "full"]},
                "spans": {"type": "integer", "minimum": 0},
                "dropped": {"type": "integer", "minimum": 0},
                "overhead_fraction": {"type": "number", "minimum": 0},
            },
        },
        "snapshot": {
            "type": "object",
            "required": [
                "backend",
                "time_unit",
                "n_processors",
                "makespan",
                "value",
                "processors",
                "counters",
                "work",
                "fractions",
            ],
            "properties": {
                "time_unit": {"enum": [SIM_UNITS, "seconds"]},
                "makespan": {"type": "number", "minimum": 0},
                # Optional: flat critical-path composition
                # (CriticalPath.composition()); absent pre-critpath.
                "critpath": {"type": "object"},
                "processors": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": [
                            "pid",
                            "busy",
                            "starvation",
                            "interference",
                            "speculative",
                            "tail_idle",
                            "finish_time",
                        ],
                    },
                },
            },
        },
    },
}

Record = dict[str, object]


def current_git_sha() -> str:
    """HEAD's SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def make_record(
    snap: Snapshot,
    *,
    workload: str,
    scale: str = "reduced",
    seed: Optional[int] = None,
    cost_model: Optional[Mapping[str, object]] = None,
    config: Optional[Mapping[str, object]] = None,
    git_sha: Optional[str] = None,
    whatif: Optional[list[Mapping[str, object]]] = None,
    trace: Optional[Mapping[str, object]] = None,
    service: Optional[Mapping[str, object]] = None,
    latency: Optional[Mapping[str, object]] = None,
) -> Record:
    """Assemble one ledger record from a snapshot plus run identity.

    ``whatif`` — the flat points of a causal sweep
    (:func:`repro.obs.whatif.to_records`) — ``trace`` — the
    wall-clock tracing summary (:func:`trace_block`) — ``service``
    — the traffic summary of a search-service run
    (:func:`service_block`) — and ``latency`` — the per-stage
    decomposition of the same run (:func:`latency_block`) — are stored
    only when given, so records from runs without them stay
    byte-identical to schema v1.
    """
    record: Record = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "created_at": time.time(),
        "seed": seed,
        "workload": workload,
        "scale": scale,
        "backend": snap.backend,
        "n_processors": snap.n_processors,
        "cost_model": dict(cost_model) if cost_model else {},
        "config": dict(config) if config else {},
        "snapshot": snap.to_dict(),
    }
    if whatif is not None:
        record["whatif"] = [dict(point) for point in whatif]
    if trace is not None:
        record["trace"] = dict(trace)
    if service is not None:
        record["service"] = dict(service)
    if latency is not None:
        record["latency"] = dict(latency)
    return record


def trace_block(mode: str, spans: int, dropped: int, overhead_fraction: float) -> Record:
    """Assemble the optional ``trace`` record block from a traced run.

    Callers typically derive the arguments from a
    :class:`~repro.obs.live.LiveTrace`:  ``len(trace.spans)``,
    ``trace.dropped``, ``trace.overhead_fraction(wall_time)``.
    """
    return {
        "mode": mode,
        "spans": int(spans),
        "dropped": int(dropped),
        "overhead_fraction": float(overhead_fraction),
    }


def service_block(
    *,
    requests: int,
    admitted: int,
    completed: int,
    shed: int,
    rps: float,
    p50_s: float,
    p95_s: float,
    p99_s: float,
) -> Record:
    """Assemble the optional ``service`` record block from a traffic run.

    Callers typically derive the arguments from a
    :class:`~repro.serve.traffic.TrafficReport`.
    """
    return {
        "requests": int(requests),
        "admitted": int(admitted),
        "completed": int(completed),
        "shed": int(shed),
        "rps": float(rps),
        "p50_s": float(p50_s),
        "p95_s": float(p95_s),
        "p99_s": float(p99_s),
    }


#: Percentile stats required of every ``latency`` stage entry.
_LATENCY_STATS = ("mean_s", "p50_s", "p95_s", "p99_s")


def latency_block(
    *, samples: int, stages: Mapping[str, Mapping[str, float]]
) -> Record:
    """Assemble the optional ``latency`` record block from a traffic run.

    Callers typically splat :func:`repro.serve.traffic.latency_fields`
    output: ``latency_block(**latency_fields(replies))``.  ``stages``
    must carry the conserved ``end_to_end`` total and the explicit
    ``unattributed`` remainder — validation rejects records that hide
    either.
    """
    return {
        "samples": int(samples),
        "stages": {
            name: {stat: float(row.get(stat, 0.0)) for stat in _LATENCY_STATS}
            for name, row in stages.items()
        },
    }


def validate_record(record: Record) -> list[str]:
    """Structural validation (no external deps); [] when the record is well-formed."""
    problems: list[str] = []
    required = LEDGER_SCHEMA["properties"]
    assert isinstance(required, dict)
    for key in LEDGER_SCHEMA["required"]:  # type: ignore[union-attr]
        if key not in record:
            problems.append(f"missing field: {key}")
    if problems:
        return problems
    if record["schema_version"] != SCHEMA_VERSION:
        problems.append(f"schema_version {record['schema_version']!r} != {SCHEMA_VERSION}")
    if record["backend"] not in ("sim", "threaded", "multiproc", "serve"):
        problems.append(f"unknown backend {record['backend']!r}")
    if not isinstance(record["git_sha"], str):
        problems.append("git_sha must be a string")
    if not (record["seed"] is None or isinstance(record["seed"], int)):
        problems.append("seed must be an integer or null")
    n = record["n_processors"]
    if not isinstance(n, int) or n < 1:
        problems.append(f"n_processors must be a positive integer, got {n!r}")
    snapshot = record["snapshot"]
    if not isinstance(snapshot, dict):
        return problems + ["snapshot must be an object"]
    for key in (
        "backend",
        "time_unit",
        "n_processors",
        "makespan",
        "value",
        "processors",
        "counters",
        "work",
        "fractions",
    ):
        if key not in snapshot:
            problems.append(f"snapshot missing field: {key}")
    if problems:
        return problems
    if snapshot["backend"] != record["backend"]:
        problems.append("snapshot backend disagrees with record backend")
    rows = snapshot["processors"]
    if not isinstance(rows, list):
        problems.append("snapshot processors must be a list")
    else:
        if len(rows) != n:
            problems.append(f"snapshot has {len(rows)} processor rows, expected {n}")
        for row in rows:
            if not isinstance(row, dict):
                problems.append("processor row must be an object")
                continue
            for key in (
                "pid",
                "busy",
                "starvation",
                "interference",
                "speculative",
                "tail_idle",
                "finish_time",
            ):
                if key not in row:
                    problems.append(f"processor row missing field: {key}")
    whatif = record.get("whatif")
    if whatif is not None:
        if not isinstance(whatif, list):
            problems.append("whatif must be a list")
        else:
            for i, point in enumerate(whatif):
                if not isinstance(point, dict):
                    problems.append(f"whatif[{i}] must be an object")
                    continue
                for key in ("primitive", "factor", "predicted_makespan", "actual_makespan"):
                    if key not in point:
                        problems.append(f"whatif[{i}] missing field: {key}")
    trace = record.get("trace")
    if trace is not None:
        if not isinstance(trace, dict):
            problems.append("trace must be an object")
        else:
            for key in ("mode", "spans", "dropped", "overhead_fraction"):
                if key not in trace:
                    problems.append(f"trace missing field: {key}")
            if trace.get("mode") not in ("off", "sampled", "full"):
                problems.append(f"unknown trace mode {trace.get('mode')!r}")
            for key in ("spans", "dropped"):
                count = trace.get(key)
                if count is not None and (not isinstance(count, int) or count < 0):
                    problems.append(f"trace {key} must be a non-negative integer")
            overhead = trace.get("overhead_fraction")
            if overhead is not None and (
                not isinstance(overhead, (int, float)) or overhead < 0
            ):
                problems.append("trace overhead_fraction must be a non-negative number")
    service = record.get("service")
    if service is not None:
        if not isinstance(service, dict):
            problems.append("service must be an object")
        else:
            for key in ("requests", "admitted", "completed", "shed"):
                count = service.get(key)
                if not isinstance(count, int) or count < 0:
                    problems.append(f"service {key} must be a non-negative integer")
            for key in ("rps", "p50_s", "p95_s", "p99_s"):
                number = service.get(key)
                if not isinstance(number, (int, float)) or number < 0:
                    problems.append(f"service {key} must be a non-negative number")
            requests = service.get("requests")
            completed = service.get("completed")
            shed = service.get("shed")
            if (
                isinstance(requests, int)
                and isinstance(completed, int)
                and isinstance(shed, int)
                and completed + shed != requests
            ):
                problems.append(
                    f"service counters do not conserve: completed {completed} "
                    f"+ shed {shed} != requests {requests}"
                )
    latency = record.get("latency")
    if latency is not None:
        if not isinstance(latency, dict):
            problems.append("latency must be an object")
        else:
            samples = latency.get("samples")
            if not isinstance(samples, int) or samples < 0:
                problems.append("latency samples must be a non-negative integer")
            stages = latency.get("stages")
            if not isinstance(stages, dict):
                problems.append("latency stages must be an object")
            else:
                for required_stage in ("end_to_end", "unattributed"):
                    if required_stage not in stages:
                        problems.append(
                            f"latency stages missing {required_stage!r} — the "
                            "decomposition must report its total and remainder"
                        )
                for stage, row in stages.items():
                    if not isinstance(row, dict):
                        problems.append(f"latency stage {stage!r} must be an object")
                        continue
                    for stat in _LATENCY_STATS:
                        value = row.get(stat)
                        if not isinstance(value, (int, float)) or value < 0:
                            problems.append(
                                f"latency stage {stage!r} {stat} must be a "
                                "non-negative number"
                            )
    snap = Snapshot.from_dict(snapshot)
    problems.extend(snap.check_accounting())
    return problems


def record_name(record: Record) -> str:
    """Deterministic filename stem for a record."""
    sha = str(record.get("git_sha", "unknown"))[:10] or "unknown"
    return (
        f"{record['backend']}_{record['workload']}_P{record['n_processors']}_{sha}"
    )


def write_record(record: Record, directory: Union[str, Path], name: Optional[str] = None) -> Path:
    """Persist a record under ``directory`` (created if needed); returns the path."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name or record_name(record)}.json"
    path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return path


def load_record(path: Union[str, Path]) -> Record:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: ledger record must be a JSON object")
    return data


def find_by_sha(directory: Union[str, Path], sha_prefix: str) -> Record:
    """Newest record in ``directory`` whose git SHA starts with ``sha_prefix``."""
    matches: list[Record] = []
    for path in sorted(Path(directory).glob("*.json")):
        try:
            record = load_record(path)
        except (ValueError, json.JSONDecodeError):
            continue
        if str(record.get("git_sha", "")).startswith(sha_prefix):
            matches.append(record)
    if not matches:
        raise FileNotFoundError(f"no ledger record in {directory} with SHA prefix {sha_prefix!r}")
    return max(matches, key=lambda r: float(r.get("created_at", 0.0)))  # type: ignore[arg-type]


def resolve(spec: str, ledger_dir: Union[str, Path]) -> Record:
    """Turn a compare operand — file path or git SHA prefix — into a record."""
    path = Path(spec)
    if path.is_file():
        return load_record(path)
    return find_by_sha(ledger_dir, spec)


@dataclass
class CompareReport:
    """Outcome of diffing a candidate run against a baseline run."""

    baseline: str
    candidate: str
    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [f"compare: {self.baseline} -> {self.candidate}"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for item in self.improvements:
            lines.append(f"  improved: {item}")
        for item in self.regressions:
            lines.append(f"  REGRESSION: {item}")
        if self.ok:
            lines.append("  no regressions")
        return "\n".join(lines)


def _ident(record: Record) -> str:
    sha = str(record.get("git_sha", "unknown"))[:10]
    return f"{record['backend']}/{record['workload']}/P{record['n_processors']}@{sha}"


def _rel_change(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / abs(old)


def compare_records(
    baseline: Record, candidate: Record, *, tolerance: float = 0.05
) -> CompareReport:
    """Diff two ledger records; regressions are changes for the worse.

    Checked, in order of severity:

    * **value** — the negmax root value must match exactly (the protocol
      is deterministic on every backend);
    * **work counters** — ``nodes_examined``, ``leaf_evals``, ``cost``
      growing by more than ``tolerance`` (relative);
    * **makespan** — growing by more than ``tolerance`` (relative; for
      wall-clock backends this is noisy — the failing CI gate compares
      simulated records only, where makespan is exactly reproducible);
    * **loss fractions** — starvation / interference / speculative
      fractions growing by more than ``tolerance`` (absolute, since they
      are already normalized);
    * **critical-path composition** — when both snapshots carry a
      ``critpath`` block, each primitive's share of the makespan growing
      by more than ``tolerance`` (absolute).  A record without critpath
      data (pre-critpath baseline) is noted, not flagged.

    Shrinking any of those is reported as an improvement, never a
    regression.
    """
    report = CompareReport(baseline=_ident(baseline), candidate=_ident(candidate))
    for key in ("backend", "workload", "n_processors", "scale"):
        if baseline.get(key) != candidate.get(key):
            report.notes.append(
                f"{key} differs: {baseline.get(key)!r} vs {candidate.get(key)!r}"
            )
    base_snap = Snapshot.from_dict(baseline["snapshot"])  # type: ignore[arg-type]
    cand_snap = Snapshot.from_dict(candidate["snapshot"])  # type: ignore[arg-type]

    if base_snap.value != cand_snap.value:
        report.regressions.append(
            f"root value changed: {base_snap.value!r} -> {cand_snap.value!r}"
        )

    for counter in ("nodes_examined", "leaf_evals", "cost"):
        old = base_snap.work.get(counter, 0.0)
        new = cand_snap.work.get(counter, 0.0)
        change = _rel_change(old, new)
        if change > tolerance:
            report.regressions.append(f"{counter}: {old:g} -> {new:g} (+{change:.1%})")
        elif change < -tolerance:
            report.improvements.append(f"{counter}: {old:g} -> {new:g} ({change:.1%})")

    change = _rel_change(base_snap.makespan, cand_snap.makespan)
    unit = base_snap.time_unit
    if change > tolerance:
        report.regressions.append(
            f"makespan ({unit}): {base_snap.makespan:g} -> {cand_snap.makespan:g} (+{change:.1%})"
        )
    elif change < -tolerance:
        report.improvements.append(
            f"makespan ({unit}): {base_snap.makespan:g} -> {cand_snap.makespan:g} ({change:.1%})"
        )

    for name, old, new in (
        ("starvation_fraction", base_snap.starvation_fraction, cand_snap.starvation_fraction),
        (
            "interference_fraction",
            base_snap.interference_fraction,
            cand_snap.interference_fraction,
        ),
        ("speculative_fraction", base_snap.speculative_fraction, cand_snap.speculative_fraction),
    ):
        delta = new - old
        if delta > tolerance:
            report.regressions.append(f"{name}: {old:.4f} -> {new:.4f} (+{delta:.4f})")
        elif delta < -tolerance:
            report.improvements.append(f"{name}: {old:.4f} -> {new:.4f} ({delta:+.4f})")

    _compare_critpath(report, base_snap.critpath, cand_snap.critpath, tolerance)
    _compare_service(report, baseline.get("service"), candidate.get("service"), tolerance)
    _compare_latency(report, baseline.get("latency"), candidate.get("latency"), tolerance)
    return report


def _critpath_shares(composition: Mapping[str, float]) -> dict[str, float]:
    """Per-primitive share of the makespan from a flat critpath block."""
    makespan = composition.get("makespan", 0.0)
    if makespan <= 0:
        return {}
    prefix = "primitive."
    return {
        key[len(prefix) :]: value / makespan
        for key, value in composition.items()
        if key.startswith(prefix)
    }


def _compare_critpath(
    report: CompareReport,
    base: Mapping[str, float],
    cand: Mapping[str, float],
    tolerance: float,
) -> None:
    """Diff critical-path composition; shares are absolute-delta checked."""
    if not base and not cand:
        return
    if not base:
        report.notes.append("baseline has no critical-path data; composition not compared")
        return
    if not cand:
        report.notes.append("candidate has no critical-path data; composition not compared")
        return
    base_shares = _critpath_shares(base)
    cand_shares = _critpath_shares(cand)
    for primitive in sorted(base_shares.keys() | cand_shares.keys()):
        old = base_shares.get(primitive, 0.0)
        new = cand_shares.get(primitive, 0.0)
        delta = new - old
        label = f"critpath share {primitive}"
        if delta > tolerance:
            report.regressions.append(f"{label}: {old:.4f} -> {new:.4f} (+{delta:.4f})")
        elif delta < -tolerance:
            report.improvements.append(f"{label}: {old:.4f} -> {new:.4f} ({delta:+.4f})")


def _compare_service(
    report: CompareReport,
    base: Optional[object],
    cand: Optional[object],
    tolerance: float,
) -> None:
    """Diff service traffic summaries when both records carry one.

    Throughput dropping or tail latency growing beyond ``tolerance``
    (relative) is a regression; the opposite is an improvement.  A
    record without a service block (non-serve backend, or a pre-service
    baseline) is noted, not flagged.
    """
    if not isinstance(base, dict) and not isinstance(cand, dict):
        return
    if not isinstance(base, dict):
        report.notes.append("baseline has no service data; traffic not compared")
        return
    if not isinstance(cand, dict):
        report.notes.append("candidate has no service data; traffic not compared")
        return
    old_rps = float(base.get("rps", 0.0))
    new_rps = float(cand.get("rps", 0.0))
    change = _rel_change(old_rps, new_rps)
    if change < -tolerance:
        report.regressions.append(f"rps: {old_rps:g} -> {new_rps:g} ({change:.1%})")
    elif change > tolerance:
        report.improvements.append(f"rps: {old_rps:g} -> {new_rps:g} (+{change:.1%})")
    for key in ("p50_s", "p95_s", "p99_s"):
        old = float(base.get(key, 0.0))
        new = float(cand.get(key, 0.0))
        change = _rel_change(old, new)
        if change > tolerance:
            report.regressions.append(f"{key}: {old:g} -> {new:g} (+{change:.1%})")
        elif change < -tolerance:
            report.improvements.append(f"{key}: {old:g} -> {new:g} ({change:.1%})")


#: Floor under the latency-stage p99 comparison, in seconds.  Stages
#: whose tails sit under this on both sides are scheduler-hop noise —
#: a 0.2 ms → 0.5 ms jump is a 150 % "regression" that means nothing.
_LATENCY_FLOOR_S = 1e-3


def _compare_latency(
    report: CompareReport,
    base: Optional[object],
    cand: Optional[object],
    tolerance: float,
) -> None:
    """Diff per-stage latency decompositions when both records carry one.

    A stage's p99 growing beyond ``tolerance`` (relative) is a
    regression — this is what catches "queue_wait doubled" even when the
    end-to-end p99 moved within tolerance.  Stages under
    :data:`_LATENCY_FLOOR_S` on both sides are skipped as noise; a
    record without a latency block (pre-tracing baseline) is noted, not
    flagged.
    """
    if not isinstance(base, dict) and not isinstance(cand, dict):
        return
    if not isinstance(base, dict):
        report.notes.append("baseline has no latency decomposition; stages not compared")
        return
    if not isinstance(cand, dict):
        report.notes.append("candidate has no latency decomposition; stages not compared")
        return
    base_stages = base.get("stages")
    cand_stages = cand.get("stages")
    if not isinstance(base_stages, dict) or not isinstance(cand_stages, dict):
        return
    for stage in sorted(base_stages.keys() & cand_stages.keys()):
        base_row = base_stages.get(stage)
        cand_row = cand_stages.get(stage)
        if not isinstance(base_row, dict) or not isinstance(cand_row, dict):
            continue
        old = float(base_row.get("p99_s", 0.0))
        new = float(cand_row.get("p99_s", 0.0))
        if old < _LATENCY_FLOOR_S and new < _LATENCY_FLOOR_S:
            continue
        change = _rel_change(old, new)
        label = f"latency stage {stage} p99_s"
        if change > tolerance:
            report.regressions.append(f"{label}: {old:g} -> {new:g} (+{change:.1%})")
        elif change < -tolerance:
            report.improvements.append(f"{label}: {old:g} -> {new:g} ({change:.1%})")


def _series_point(summary: Record) -> Record:
    """One per-PR sample for the makespan/nodes/efficiency series."""
    fractions = summary.get("fractions")
    work = summary.get("work")
    efficiency = fractions.get("busy") if isinstance(fractions, dict) else None
    nodes = work.get("nodes_examined") if isinstance(work, dict) else None
    return {
        "git_sha": summary.get("git_sha"),
        "created_at": summary.get("created_at"),
        "makespan": summary.get("makespan"),
        "nodes": nodes,
        "efficiency": efficiency,
    }


def aggregate(directory: Union[str, Path], out_path: Optional[Union[str, Path]] = None) -> Record:
    """Summarize every record in ``directory`` into one ``BENCH_obs.json`` payload.

    Besides the flat per-record summaries, the payload carries one
    ``series`` entry per (backend, workload, scale, P) configuration:
    the records of that configuration ordered by ``created_at``, reduced
    to {git_sha, created_at, makespan, nodes, efficiency} — the per-PR
    trend lines CI appends to across commits.
    """
    summaries: list[Record] = []
    for path in sorted(Path(directory).glob("*.json")):
        try:
            record = load_record(path)
        except (ValueError, json.JSONDecodeError):
            continue
        snapshot = record.get("snapshot")
        if not isinstance(snapshot, dict):
            continue
        summary: Record = {
            "file": path.name,
            "backend": record.get("backend"),
            "workload": record.get("workload"),
            "scale": record.get("scale"),
            "seed": record.get("seed"),
            "n_processors": record.get("n_processors"),
            "git_sha": record.get("git_sha"),
            "created_at": record.get("created_at"),
            "makespan": snapshot.get("makespan"),
            "time_unit": snapshot.get("time_unit"),
            "value": snapshot.get("value"),
            "fractions": snapshot.get("fractions"),
            "work": snapshot.get("work"),
        }
        critpath = snapshot.get("critpath")
        if isinstance(critpath, dict) and critpath:
            summary["critpath"] = critpath
        if record.get("whatif") is not None:
            summary["whatif"] = record.get("whatif")
        if record.get("service") is not None:
            summary["service"] = record.get("service")
        if record.get("latency") is not None:
            summary["latency"] = record.get("latency")
        summaries.append(summary)
    series: dict[str, list[Record]] = {}
    for summary in summaries:
        key = (
            f"{summary.get('backend')}/{summary.get('workload')}"
            f"/{summary.get('scale')}/P{summary.get('n_processors')}"
        )
        series.setdefault(key, []).append(_series_point(summary))
    for points in series.values():
        points.sort(key=lambda p: (float(p.get("created_at") or 0.0), str(p.get("git_sha"))))
    ledger_dir = Path(directory)
    try:
        # Relative paths keep the aggregate portable across checkouts.
        ledger_dir = ledger_dir.resolve().relative_to(Path.cwd())
    except ValueError:
        pass
    payload: Record = {
        "schema_version": SCHEMA_VERSION,
        "ledger_dir": str(ledger_dir),
        "n_records": len(summaries),
        "records": summaries,
        "series": {key: series[key] for key in sorted(series)},
    }
    if out_path is not None:
        target = Path(out_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return payload
