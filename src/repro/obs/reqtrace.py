"""Request-scoped tracing and latency attribution for the search service.

``repro.serve`` turned the repo into a multi-user service, but its
telemetry stopped at endpoint aggregates: ``TrafficReport`` says *what*
the p99 is, not *where* those milliseconds went.  This module extends
the repo's attribution discipline — the paper's Section 3.1 loss
decomposition and PR 5's exact ``path == makespan`` critical-path
invariant — to the request path:

* **Trace context** (:class:`TraceContext`): a ``(request_id, span_id)``
  pair originated by :class:`~repro.serve.client.ServiceClient`, carried
  on :class:`~repro.serve.api.SearchRequest`, and propagated by the pool
  into worker-process span names via
  :func:`repro.obs.live.tag_span_name` — the tag piggybacks on the
  existing result-pickle blobs, so no new wire channel exists for it.
* **Conserved decomposition** (:class:`RequestTiming`, built by
  :func:`attribute`): every request's end-to-end latency splits into
  ``admission + queue_wait + Σ iterations + reply_serialize +
  unattributed`` and the split *conserves exactly by construction*: the
  ``unattributed`` component is defined as the remainder, is always
  reported, and is asserted non-negative (a violation means two stamps
  came from different clocks — the scheduler and server share
  :func:`repro.obs.live.wall_clock` precisely so that cannot happen).
* **Request records** (:class:`RequestTrace`, kept in a bounded
  :class:`TraceStore`): one per completed request, joining the timing
  decomposition with the absolute iteration bounds used by the Perfetto
  per-request tracks in :mod:`repro.obs.export`.
* **SLO policy** (:class:`SLOPolicy`): per-priority-class latency
  targets plus an objective (the fraction of requests expected under
  target); :class:`~repro.serve.scheduler.ServeMetrics` folds it into
  per-priority histograms, good/bad counters and an error-budget
  burn-rate gauge (1.0 = burning exactly the budget the objective
  allows).
* **Flight recorder** (:class:`FlightRecorder`): when a request overruns
  its deadline by a configurable factor, the server snapshots the live
  span rings (service ring plus merged worker spans) to a JSON file —
  evidence captured *while the stall is happening*, not reconstructed
  from aggregates afterwards.

Per VER008 this module never reads a clock: every timestamp arrives as a
value, stamped by the caller through one shared clock seam.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from . import live as _live

__all__ = [
    "CONSERVATION_TOL_S",
    "STAGES",
    "TIMING_WIRE_VERSION",
    "FlightRecorder",
    "RequestTiming",
    "RequestTrace",
    "SLOPolicy",
    "TraceContext",
    "TraceStore",
    "attribute",
    "span_tag",
    "timing_from_wire",
]

#: Wire schema version of the ``timing`` block on ``SearchReply``.
#: Clients drop (rather than reject) blocks from a newer server.
TIMING_WIRE_VERSION = 1

#: Absolute slack allowed on the conservation identity, in seconds.
#: The decomposition is exact in real arithmetic; this only absorbs
#: float rounding across the component sum.
CONSERVATION_TOL_S = 1e-6

#: Decomposition components, in pipeline order.  ``iterations`` is the
#: summed deepening-loop time; ``unattributed`` is the explicit
#: remainder (scheduler hops, future wakeups) — reported, never hidden.
STAGES = ("admission", "queue_wait", "iterations", "reply_serialize", "unattributed")


def span_tag(request_id: str, span_id: str) -> str:
    """The tag carried inside worker span names: ``request_id/span_id``."""
    return f"{request_id}/{span_id}"


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one request's trace tree.

    The client originates the root context; each layer derives child
    span ids by suffixing (``root`` → ``root.d3`` for the depth-3
    iteration), so a worker span's tag encodes its full path back to
    the originating request.
    """

    request_id: str
    span_id: str = "root"

    def child(self, suffix: str) -> "TraceContext":
        return TraceContext(self.request_id, f"{self.span_id}.{suffix}")

    @property
    def tag(self) -> str:
        return span_tag(self.request_id, self.span_id)


# ---------------------------------------------------------------------------
# Conserved latency decomposition.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestTiming:
    """One request's latency decomposition, conserved by construction.

    All fields are seconds on the server's clock.  The identity

    ``admission_s + queue_wait_s + sum(iterations_s) + reply_serialize_s
    + unattributed_s == end_to_end_s``

    holds to within :data:`CONSERVATION_TOL_S` because :func:`attribute`
    *defines* ``unattributed_s`` as the remainder; a request with a
    negative remainder (beyond tolerance) is a clock-domain bug and is
    flagged by :meth:`conservation_problems`, mirroring the scheduler's
    counter-conservation audit.
    """

    end_to_end_s: float
    admission_s: float
    queue_wait_s: float
    iterations_s: tuple[float, ...]
    reply_serialize_s: float
    unattributed_s: float
    version: int = TIMING_WIRE_VERSION

    @property
    def iterations_total_s(self) -> float:
        return sum(self.iterations_s)

    def components_total_s(self) -> float:
        """The attributed sum — must equal ``end_to_end_s``."""
        return (
            self.admission_s
            + self.queue_wait_s
            + self.iterations_total_s
            + self.reply_serialize_s
            + self.unattributed_s
        )

    def stage_seconds(self) -> dict[str, float]:
        """Seconds per :data:`STAGES` entry (iterations summed)."""
        return {
            "admission": self.admission_s,
            "queue_wait": self.queue_wait_s,
            "iterations": self.iterations_total_s,
            "reply_serialize": self.reply_serialize_s,
            "unattributed": self.unattributed_s,
        }

    def conservation_problems(self) -> list[str]:
        """Violations of the decomposition identity (empty when sound)."""
        problems: list[str] = []
        for stage, seconds in self.stage_seconds().items():
            if seconds < -CONSERVATION_TOL_S:
                problems.append(f"stage {stage} is negative: {seconds:.9f}s")
        for index, seconds in enumerate(self.iterations_s):
            if seconds < -CONSERVATION_TOL_S:
                problems.append(f"iteration {index + 1} is negative: {seconds:.9f}s")
        gap = self.components_total_s() - self.end_to_end_s
        if abs(gap) > CONSERVATION_TOL_S:
            problems.append(
                f"decomposition does not conserve: components sum to "
                f"{self.components_total_s():.9f}s but end-to-end is "
                f"{self.end_to_end_s:.9f}s (gap {gap:+.9f}s)"
            )
        return problems

    # -- wire codec ---------------------------------------------------------

    def to_wire(self) -> dict[str, object]:
        return {
            "v": self.version,
            "end_to_end_s": self.end_to_end_s,
            "admission_s": self.admission_s,
            "queue_wait_s": self.queue_wait_s,
            "iterations_s": list(self.iterations_s),
            "reply_serialize_s": self.reply_serialize_s,
            "unattributed_s": self.unattributed_s,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "RequestTiming":
        """Decode a version-:data:`TIMING_WIRE_VERSION` timing block.

        Raises :class:`ValueError` on malformed payloads; callers that
        want forward compatibility should check ``payload["v"]`` first
        (see :func:`timing_from_wire`).
        """
        version = payload.get("v")
        if version != TIMING_WIRE_VERSION:
            raise ValueError(f"unsupported timing version {version!r}")
        raw_iters = payload.get("iterations_s")
        if not isinstance(raw_iters, (list, tuple)):
            raise ValueError("timing iterations_s must be a list of seconds")
        iterations = tuple(_seconds(v, "iterations_s entry") for v in raw_iters)
        return cls(
            end_to_end_s=_seconds(payload.get("end_to_end_s"), "end_to_end_s"),
            admission_s=_seconds(payload.get("admission_s"), "admission_s"),
            queue_wait_s=_seconds(payload.get("queue_wait_s"), "queue_wait_s"),
            iterations_s=iterations,
            reply_serialize_s=_seconds(
                payload.get("reply_serialize_s"), "reply_serialize_s"
            ),
            unattributed_s=_seconds(payload.get("unattributed_s"), "unattributed_s"),
        )


def _seconds(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"timing {what} must be a number, got {value!r}")
    return float(value)


def timing_from_wire(value: object) -> Optional[RequestTiming]:
    """Tolerant decode for reply parsing: ``None`` when absent or newer.

    A missing block or a block stamped with a *newer* version decodes to
    ``None`` (old clients keep working against new servers); a
    structurally malformed current-version block raises
    :class:`ValueError` — corruption should not parse as silence.
    """
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise ValueError("timing block must be an object")
    version = value.get("v")
    if isinstance(version, int) and not isinstance(version, bool):
        if version > TIMING_WIRE_VERSION:
            return None
    return RequestTiming.from_wire(value)


def attribute(
    *,
    arrived_at: float,
    admitted_at: float,
    started_at: float,
    finished_at: float,
    iterations_s: Sequence[float],
    reply_serialize_s: float,
) -> RequestTiming:
    """Build the conserved decomposition from one clock's stamps.

    All four timestamps must come from the *same* monotonic clock (the
    server threads :func:`repro.obs.live.wall_clock` through the
    scheduler for exactly this reason).  ``unattributed`` is defined as
    the remainder, so the conservation identity holds by construction;
    with a monotonic clock every component is also non-negative.
    """
    end_to_end = max(0.0, finished_at - arrived_at)
    admission = max(0.0, admitted_at - arrived_at)
    queue_wait = max(0.0, started_at - admitted_at)
    iterations = tuple(max(0.0, float(s)) for s in iterations_s)
    serialize = max(0.0, reply_serialize_s)
    attributed = admission + queue_wait + sum(iterations) + serialize
    return RequestTiming(
        end_to_end_s=end_to_end,
        admission_s=admission,
        queue_wait_s=queue_wait,
        iterations_s=iterations,
        reply_serialize_s=serialize,
        unattributed_s=end_to_end - attributed,
    )


# ---------------------------------------------------------------------------
# Per-request server-side records.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestTrace:
    """One request's server-side trace record.

    ``arrived_at`` and ``iteration_bounds`` are absolute seconds on the
    server clock, so the Perfetto exporter can place this request's
    track against the worker-span timeline without re-deriving offsets.
    """

    request_id: str
    span_id: str
    priority: int
    status: str
    arrived_at: float
    timing: RequestTiming
    iteration_bounds: tuple[tuple[float, float], ...] = ()

    @property
    def tag(self) -> str:
        return span_tag(self.request_id, self.span_id)

    @property
    def finished_at(self) -> float:
        return self.arrived_at + self.timing.end_to_end_s


class TraceStore:
    """Bounded keep-latest store of :class:`RequestTrace` records.

    Confined to the service event loop (single writer, post-run
    readers); eviction is oldest-first so a long-lived service holds a
    sliding window of recent requests rather than growing without
    bound.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be positive")
        self.capacity = capacity
        self._traces: deque[RequestTrace] = deque(maxlen=capacity)
        self.added = 0

    def add(self, trace: RequestTrace) -> None:
        self._traces.append(trace)
        self.added += 1

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def evicted(self) -> int:
        return self.added - len(self._traces)

    def traces(self) -> tuple[RequestTrace, ...]:
        """Stored traces, oldest first."""
        return tuple(self._traces)

    def get(self, request_id: str) -> Optional[RequestTrace]:
        """The most recent stored trace for ``request_id``, if any."""
        for trace in reversed(self._traces):
            if trace.request_id == request_id:
                return trace
        return None


# ---------------------------------------------------------------------------
# SLO policy.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLOPolicy:
    """Per-priority-class latency targets with a shared objective.

    ``targets`` maps a priority class to its latency target in seconds;
    ``objective`` is the fraction of requests expected to finish under
    target (0.99 → a 1 % error budget).  The burn rate of a class is
    ``bad_fraction / (1 - objective)``: 1.0 means the service is
    spending its budget exactly as fast as the objective allows, above
    1.0 it is on course to blow the SLO.
    """

    targets: tuple[tuple[int, float], ...]
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"SLO objective must be in (0, 1), got {self.objective}")
        for priority, target in self.targets:
            if target <= 0.0:
                raise ValueError(
                    f"SLO target for priority {priority} must be positive, got {target}"
                )

    @property
    def error_budget(self) -> float:
        """The tolerated fraction of over-target requests."""
        return 1.0 - self.objective

    def target_for(self, priority: int) -> Optional[float]:
        for known, target in self.targets:
            if known == priority:
                return target
        return None

    def burn_rate(self, good: int, bad: int) -> float:
        """Error-budget burn rate for one class's good/bad counts."""
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / self.error_budget


# ---------------------------------------------------------------------------
# Stall flight recorder.
# ---------------------------------------------------------------------------


def _safe_stem(request_id: str) -> str:
    """A filesystem-safe stem derived from a client-chosen request id."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "_" for c in request_id)
    return cleaned[:80] or "request"


class FlightRecorder:
    """Dumps live span rings to disk when a request overruns its deadline.

    The watchdog in :class:`~repro.serve.scheduler.RequestScheduler`
    fires between deepening iterations once a request's elapsed time
    exceeds ``deadline_s * overrun_factor``; the server then calls
    :meth:`record` with a *non-destructive* snapshot of its service ring
    and the pool's merged worker spans.  Each request is recorded at
    most once and the recorder stops after ``limit`` files, so a stalled
    fleet cannot flood the disk.
    """

    SCHEMA = 1

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        overrun_factor: float,
        limit: int = 16,
    ) -> None:
        if overrun_factor <= 0.0:
            raise ValueError("flight-recorder overrun factor must be positive")
        if limit < 1:
            raise ValueError("flight-recorder file limit must be positive")
        self.directory = Path(directory)
        self.overrun_factor = overrun_factor
        self.limit = limit
        self.recorded: dict[str, Path] = {}
        self.suppressed = 0

    def record(
        self,
        *,
        request_id: str,
        span_id: str,
        deadline_s: Optional[float],
        elapsed_s: float,
        service_spans: Sequence[_live.SpanRec],
        worker_spans: Sequence[_live.WorkerSpan],
        pids: Mapping[int, int],
    ) -> Optional[Path]:
        """Write one flight record; ``None`` if deduped or over the limit."""
        if request_id in self.recorded or len(self.recorded) >= self.limit:
            self.suppressed += 1
            return None
        payload: dict[str, object] = {
            "flight_schema": self.SCHEMA,
            "request_id": request_id,
            "span_id": span_id,
            "deadline_s": deadline_s,
            "elapsed_s": elapsed_s,
            "overrun_factor": self.overrun_factor,
            "service_spans": [
                {"cat": cat, "name": name, "start": start, "end": end}
                for cat, name, start, end in service_spans
            ],
            "worker_spans": [
                {
                    "worker": span.worker,
                    "os_pid": pids.get(span.worker),
                    "cat": span.cat,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                }
                for span in worker_spans
            ],
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"flight_{_safe_stem(request_id)}.json"
        path.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        self.recorded[request_id] = path
        return path
