"""Live wall-clock tracing and runtime telemetry for the real backends.

The simulated backend's Section 3.1 decomposition is exact because the
engine owns the clock; the *real* backends (threaded, multiproc) used to
expose only end-of-run aggregates — ``ThreadTiming`` totals and
``MultiprocResult.per_worker`` busy splits.  This module closes that gap
with three pieces:

* **Span rings** (:class:`SpanRing`): bounded, preallocated ring buffers
  of ``(category, name, t_start, t_end)`` spans, one per OS worker.  A
  full ring overwrites its oldest span and counts the drop instead of
  growing, so a runaway producer can never balloon the process.  Each
  ring also measures the cost of its own recording
  (:attr:`SpanRing.self_cost_seconds`), which is how the instrumentation
  budget (≤5 % of untraced wall time, asserted by
  ``benchmarks/test_bench_trace_overhead.py``) is accounted rather than
  guessed.  The ``sampled`` trace mode records every
  :data:`SAMPLED_STRIDE`-th span per ring, which is what keeps the hot
  task/cache loops cheap when full fidelity is not needed.
* **Clock calibration** (:class:`OffsetEstimator`): worker spans are
  stamped with the worker's own ``perf_counter``.  On Linux that clock
  is CLOCK_MONOTONIC and shared across processes, but the merge does not
  *assume* it: every task round-trip ``(submit, start, end, receive)``
  bounds the worker-to-coordinator offset to the interval
  ``[submit - start, receive - end]``, intervals intersect across tasks,
  and :func:`merge_spans` rebases each worker's spans by the estimate —
  so all spans land on one coordinator timeline even where the clock
  domains genuinely differ.
* **Live metrics** (:class:`LiveFeed`): an event-bus sink that folds
  each :class:`~repro.obs.events.ObsEvent` into a
  :class:`~repro.obs.registry.MetricsRegistry` *as it is emitted* (via
  :func:`repro.obs.registry.feed_event`, the same code path the post-hoc
  :func:`~repro.obs.registry.aggregate` uses), behind one lock so any
  thread may read a consistent snapshot mid-run.  ``repro-gametree top``
  and the Prometheus exporter (:mod:`repro.obs.promtext`) read from it
  while a search is still running.

Trace data crosses the process boundary on the existing result channel:
workers drain their ring into every task outcome, and a best-effort
drain-on-exit flush collects whatever recorded after the last result.

The one wall-clock seam is :func:`wall_clock` (sanctioned by VER008);
everything else takes time through an injected clock or as a value.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from . import events as _events
from . import registry as _registry

__all__ = [
    "TRACE_OFF",
    "TRACE_SAMPLED",
    "TRACE_FULL",
    "TRACE_MODES",
    "SpanRec",
    "SpanRing",
    "WorkerSpan",
    "LiveTrace",
    "LiveFeed",
    "OffsetEstimator",
    "COORDINATOR",
    "RING",
    "TAG_SEPARATOR",
    "install_ring",
    "uninstall_ring",
    "ring_for_mode",
    "merge_spans",
    "render_top",
    "split_span_name",
    "tag_span_name",
    "wall_clock",
]

#: Accepted values of every ``--trace`` flag and ``trace=`` parameter.
TRACE_OFF = "off"
TRACE_SAMPLED = "sampled"
TRACE_FULL = "full"
TRACE_MODES = (TRACE_OFF, TRACE_SAMPLED, TRACE_FULL)

#: Spans a ring holds before overwriting its oldest (per OS worker).
DEFAULT_RING_CAPACITY = 4096

#: In ``sampled`` mode, record one span out of every this-many begun.
SAMPLED_STRIDE = 16

#: Synthetic worker id of coordinator-side spans (heap waits, its own
#: shared-table probes); real workers are indexed 0..n-1.
COORDINATOR = -1

#: One recorded span: ``(category, name, t_start, t_end)`` in the
#: recording process's monotonic seconds.  Categories in use: ``task``
#: (one subtree search), ``tt`` / ``eval`` (shared-cache probe/store),
#: ``heap`` (coordinator/worker waits for work).
SpanRec = tuple[str, str, float, float]


def wall_clock() -> float:
    """The one sanctioned wall-clock seam of this module (VER008)."""
    return time.perf_counter()


#: Separates a span's base name from its request tag.  None of the base
#: names in use ("eval", "refute", "iteration", "request", cache ops)
#: contain it, so the first occurrence splits unambiguously.
TAG_SEPARATOR = "@"


def tag_span_name(name: str, tag: str) -> str:
    """Attach a request tag (``request_id/span_id``) to a span name.

    The tag rides inside the existing ``SpanRec`` name field, so tagged
    spans cross the worker result channel with zero wire changes — the
    coordinator recovers identity with :func:`split_span_name`.
    """
    if TAG_SEPARATOR in name:
        raise ValueError(f"span name {name!r} already carries a tag")
    return f"{name}{TAG_SEPARATOR}{tag}"


def split_span_name(name: str) -> tuple[str, Optional[str]]:
    """``(base_name, tag)``; tag is ``None`` for untagged spans."""
    base, sep, tag = name.partition(TAG_SEPARATOR)
    return (base, tag if sep else None)


class SpanRing:
    """Bounded ring buffer of spans with self-measured recording cost.

    The slot list is preallocated once; recording overwrites slots in
    place and never grows the buffer, so a saturated ring costs O(1)
    per span and a fixed amount of memory for the life of the worker.

    Args:
        capacity: slot count; once exceeded the oldest span is
            overwritten and :attr:`dropped` incremented.
        stride: record one span per ``stride`` calls to :meth:`begin`
            (1 = every span; :data:`SAMPLED_STRIDE` for ``sampled``
            mode).  Pre-measured spans via :meth:`record` are also
            strided so the hot task loop pays the same discount.
        clock: injectable time source (tests pass a fake); defaults to
            :func:`wall_clock`.
    """

    __slots__ = (
        "capacity",
        "_slots",
        "_count",
        "_total",
        "_dropped",
        "_tick",
        "_stride",
        "_clock",
        "self_cost_seconds",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        *,
        stride: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        if stride < 1:
            raise ValueError("ring stride must be positive")
        self.capacity = capacity
        self._slots: list[Optional[SpanRec]] = [None] * capacity
        #: Spans stored since the last drain (wraps drive overwrites).
        self._count = 0
        #: Lifetime totals; survive :meth:`drain` so workers can ship
        #: cumulative values with every result.
        self._total = 0
        self._dropped = 0
        self._tick = 0
        self._stride = stride
        self._clock: Callable[[], float] = clock if clock is not None else wall_clock
        #: Accumulated seconds spent inside :meth:`end`/:meth:`record`
        #: themselves (clock read + slot store).  Measured per span —
        #: sampling this and scaling up would amplify scheduler
        #: preemptions landing in the measured window.  The paired
        #: :meth:`begin` clock read is of the same order, so doubling
        #: this is a fair estimate of total recording cost.
        self.self_cost_seconds = 0.0

    # -- recording ----------------------------------------------------------

    def begin(self) -> float:
        """Start a span: its start timestamp, or ``-1.0`` if sampled out.

        A negative token makes the matching :meth:`end` a no-op, so
        call sites need no mode check beyond ``ring is not None``.
        """
        self._tick += 1
        if self._tick % self._stride:
            return -1.0
        return self._clock()

    def end(self, cat: str, name: str, token: float) -> None:
        """Close the span opened by :meth:`begin` (no-op when sampled out)."""
        if token < 0.0:
            return
        t_end = self._clock()
        count = self._count
        if count >= self.capacity:
            self._dropped += 1
        self._slots[count % self.capacity] = (cat, name, token, t_end)
        self._count = count + 1
        self._total += 1
        self.self_cost_seconds += self._clock() - t_end

    def record(self, cat: str, name: str, t_start: float, t_end: float) -> None:
        """Store a span whose endpoints were already measured.

        Subject to the same sampling stride as :meth:`begin`, so hot
        call sites that happen to have timestamps in hand (the multiproc
        task loop) pay the same discount in ``sampled`` mode.
        """
        self._tick += 1
        if self._tick % self._stride:
            return
        t0 = self._clock()
        count = self._count
        if count >= self.capacity:
            self._dropped += 1
        self._slots[count % self.capacity] = (cat, name, t_start, t_end)
        self._count = count + 1
        self._total += 1
        self.self_cost_seconds += self._clock() - t0

    # -- introspection ------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Spans stored over the ring's lifetime (including overwritten)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Spans lost to overwriting, over the ring's lifetime."""
        return self._dropped

    def drain(self) -> list[SpanRec]:
        """Remove and return the buffered spans, oldest first.

        Drop and self-cost counters survive the drain — they describe
        the ring's lifetime, and the multiproc workers ship them with
        every result so the coordinator sees cumulative values.
        """
        out = self.peek()
        self._slots = [None] * self.capacity
        self._count = 0
        return out

    def peek(self) -> list[SpanRec]:
        """The buffered spans, oldest first, *without* clearing them.

        The flight recorder uses this to snapshot a live ring while the
        overrunning request is still in flight — a drain there would
        steal spans from the run's own end-of-run trace.
        """
        held = min(self._count, self.capacity)
        start = (self._count - held) % self.capacity
        out: list[SpanRec] = []
        for i in range(held):
            span = self._slots[(start + i) % self.capacity]
            if span is not None:
                out.append(span)
        return out

    def snapshot_counters(self) -> tuple[int, float]:
        """``(dropped, self_cost_seconds)`` — shipped alongside drains."""
        return self._dropped, self.self_cost_seconds


def ring_for_mode(
    mode: str,
    *,
    capacity: int = DEFAULT_RING_CAPACITY,
    clock: Optional[Callable[[], float]] = None,
) -> Optional[SpanRing]:
    """A ring configured for ``mode``, or ``None`` for ``off``."""
    if mode not in TRACE_MODES:
        raise ValueError(f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}")
    if mode == TRACE_OFF:
        return None
    stride = SAMPLED_STRIDE if mode == TRACE_SAMPLED else 1
    return SpanRing(capacity, stride=stride, clock=clock)


#: The process's active span ring; ``None`` disables span recording.
#: Instrumented modules (:mod:`repro.cache.sharedmem`) read this
#: directly — the disabled path is one module-global load, mirroring
#: :data:`repro.obs.events.CURRENT`.  Worker processes install theirs in
#: the pool initializer; the multiproc coordinator installs its own for
#: the duration of a run.
RING: Optional[SpanRing] = None


def install_ring(mode: str, *, capacity: int = DEFAULT_RING_CAPACITY) -> Optional[SpanRing]:
    """Install (and return) this process's span ring for ``mode``."""
    global RING
    RING = ring_for_mode(mode, capacity=capacity)
    return RING


def uninstall_ring() -> None:
    global RING
    RING = None


# ---------------------------------------------------------------------------
# Clock-offset calibration.
# ---------------------------------------------------------------------------


class OffsetEstimator:
    """Bounds one worker clock's offset from the coordinator clock.

    For a task submitted at coordinator time ``c0``, executed on the
    worker clock over ``[w0, w1]``, and received back at coordinator
    time ``c1``, the true offset δ (coordinator = worker + δ) satisfies
    ``c0 <= w0 + δ`` and ``w1 + δ <= c1``, i.e. δ lies in
    ``[c0 - w0, c1 - w1]``.  Observing many tasks intersects the
    intervals; :attr:`offset` is then 0 when the intersection allows it
    (the common same-clock-domain case, where snapping to zero beats
    adding estimator noise) and the interval midpoint otherwise.
    """

    __slots__ = ("lo", "hi", "observations")

    def __init__(self) -> None:
        self.lo = float("-inf")
        self.hi = float("inf")
        self.observations = 0

    def observe(self, c_submit: float, w_start: float, w_end: float, c_receive: float) -> None:
        """Tighten the bounds with one task round-trip."""
        self.lo = max(self.lo, c_submit - w_start)
        self.hi = min(self.hi, c_receive - w_end)
        self.observations += 1

    @property
    def width(self) -> float:
        """Remaining uncertainty of the offset, in seconds."""
        return self.hi - self.lo

    @property
    def offset(self) -> float:
        """Best estimate of δ (coordinator = worker + δ)."""
        if not self.observations:
            return 0.0
        lo, hi = self.lo, self.hi
        if lo <= 0.0 <= hi:
            return 0.0
        if lo > hi:
            # Inconsistent bounds (clock drift within the run, or
            # scheduler noise on tiny tasks): split the difference.
            return (lo + hi) / 2.0
        return (lo + hi) / 2.0


# ---------------------------------------------------------------------------
# Merged timeline.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpan:
    """One span rebased onto the coordinator timeline."""

    worker: int
    cat: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def merge_spans(
    spans_by_worker: Mapping[int, Sequence[SpanRec]],
    offsets: Mapping[int, float],
) -> tuple[WorkerSpan, ...]:
    """Rebase every worker's spans onto the coordinator clock and sort."""
    merged: list[WorkerSpan] = []
    for worker, spans in spans_by_worker.items():
        delta = offsets.get(worker, 0.0)
        for cat, name, t_start, t_end in spans:
            merged.append(WorkerSpan(worker, cat, name, t_start + delta, t_end + delta))
    merged.sort(key=lambda s: (s.start, s.worker, s.end))
    return tuple(merged)


@dataclass(frozen=True)
class LiveTrace:
    """The merged wall-clock trace of one real-backend run.

    Attributes:
        mode: the trace mode the run used (``sampled`` or ``full``).
        spans: every collected span, on the coordinator timeline.
        pids: OS pid per worker index (coordinator's own pid under
            :data:`COORDINATOR`), so exported timelines can label one
            row per OS worker.
        dropped: per-worker spans lost to ring overwrites.
        offsets: per-worker clock offset applied during the merge.
        self_cost_seconds: summed self-measured recording cost across
            every ring (coordinator included) — the numerator of the
            instrumentation-overhead budget.
    """

    mode: str
    spans: tuple[WorkerSpan, ...]
    pids: dict[int, int] = field(default_factory=dict)
    dropped: dict[int, int] = field(default_factory=dict)
    offsets: dict[int, float] = field(default_factory=dict)
    self_cost_seconds: float = 0.0

    def workers(self) -> list[int]:
        """Worker ids with at least one span or a known pid, sorted."""
        ids = {span.worker for span in self.spans} | set(self.pids)
        return sorted(ids)

    def busy_seconds(self, cat: str = "task") -> dict[int, float]:
        """Summed span seconds per worker for one category."""
        out: dict[int, float] = {}
        for span in self.spans:
            if span.cat == cat:
                out[span.worker] = out.get(span.worker, 0.0) + span.duration
        return out

    @property
    def total_dropped(self) -> int:
        """Spans lost to ring overwrites, summed across every worker."""
        return sum(self.dropped.values())

    def overhead_fraction(self, wall_time: float) -> float:
        """Self-measured recording cost as a fraction of the run's wall time."""
        if wall_time <= 0.0:
            return 0.0
        return self.self_cost_seconds / wall_time


# ---------------------------------------------------------------------------
# Live metrics feed.
# ---------------------------------------------------------------------------


class LiveFeed:
    """Thread-safe incremental registry feed for an event bus.

    Attach to a bus with ``bus.attach_live(feed.on_event)``: every
    emitted event is folded into the registry immediately (same
    :func:`repro.obs.registry.feed_event` path as the post-hoc
    aggregation), so ``repro-gametree top`` and the Prometheus endpoint
    can read consistent metrics *while the search runs* instead of
    reconstructing them afterwards.
    """

    def __init__(self, registry: Optional[_registry.MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else _registry.MetricsRegistry()
        self._lock = threading.Lock()
        self.n_events = 0

    def on_event(self, event: _events.ObsEvent) -> None:
        with self._lock:
            _registry.feed_event(self.registry, event)
            self.n_events += 1

    def collect(self) -> dict[str, _registry.MetricValue]:
        """A consistent snapshot of every metric, safe mid-run."""
        with self._lock:
            return self.registry.collect()


# ---------------------------------------------------------------------------
# Terminal live view (``repro-gametree top``).
# ---------------------------------------------------------------------------


def _as_float(value: object, default: float = 0.0) -> float:
    return float(value) if isinstance(value, (int, float)) else default


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    metrics: Mapping[str, _registry.MetricValue],
    *,
    workload: str,
    backend: str,
    n_workers: int,
    elapsed: float,
    done: bool = False,
) -> str:
    """Render one frame of the live view from a registry snapshot.

    Pure function of the metrics mapping (as returned by
    :meth:`LiveFeed.collect`), so it is unit-testable without a running
    search; the CLI loop owns screen clearing and refresh pacing.
    """
    submitted = _as_float(metrics.get("tasks.submitted"))
    completed = _as_float(metrics.get("tasks.completed"))
    in_flight = max(0.0, submitted - completed)
    state = "done" if done else "running"
    lines = [
        f"repro-gametree top — {workload} {backend} P={n_workers}  "
        f"[{state}, {elapsed:6.2f}s]",
        f"tasks: submitted={submitted:.0f} completed={completed:.0f} "
        f"in-flight={in_flight:.0f}   nodes done={_as_float(metrics.get('nodes.done')):.0f}",
    ]
    depth_parts = []
    for key in sorted(metrics):
        if key.startswith("queue.depth.") and key.endswith(".current"):
            queue = key[len("queue.depth.") : -len(".current")]
            depth_parts.append(f"{queue}={_as_float(metrics.get(key)):.0f}")
    if depth_parts:
        lines.append("queue depth: " + "  ".join(depth_parts))
    cache_parts = []
    for prefix in ("tt", "eval"):
        hits = _as_float(metrics.get(f"{prefix}.hits"))
        misses = _as_float(metrics.get(f"{prefix}.misses"))
        if hits or misses:
            rate = hits / (hits + misses) if hits + misses else 0.0
            cache_parts.append(f"{prefix}: {hits:.0f}/{hits + misses:.0f} ({rate:.0%})")
    if cache_parts:
        lines.append("cache hits: " + "  ".join(cache_parts))

    lines.append("")
    lines.append(f"{'worker':>8s}  {'busy s':>8s}  {'wasted s':>8s}  utilization")
    denominator = elapsed if elapsed > 0 else 1.0
    for worker in range(n_workers):
        busy = _as_float(metrics.get(f"workers.w{worker}.busy_applied_seconds"))
        wasted = _as_float(metrics.get(f"workers.w{worker}.busy_wasted_seconds"))
        lines.append(
            f"{f'w{worker}':>8s}  {busy:8.3f}  {wasted:8.3f}  "
            f"{_bar((busy + wasted) / denominator)}"
        )
    return "\n".join(lines) + "\n"


def spans_as_events(spans: Iterable[WorkerSpan]) -> list[_events.ObsEvent]:
    """View merged spans as bus events (for JSONL export and diffing)."""
    return [
        _events.ObsEvent(
            "live-span",
            span.start,
            span.worker,
            {"cat": span.cat, "name": span.name, "end": span.end},
        )
        for span in spans
    ]
