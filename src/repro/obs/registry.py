"""Metrics registry: counters, gauges, histograms, time-series samplers.

One naming scheme and one aggregation path for quantities that used to
live in three places — :class:`~repro.sim.metrics.ProcessorMetrics`,
:class:`~repro.search.stats.SearchStats`, and the parallel drivers'
ad-hoc counter dicts.  :func:`aggregate` folds an event bus into a
registry; :mod:`repro.obs.snapshot` then freezes registry + per-backend
reports into one comparable :class:`~repro.obs.snapshot.Snapshot`.

The coverage maps at the bottom are load-bearing: VER005 in
:mod:`repro.verify.staticcheck` asserts that every simulator op kind and
every bus event type appears in them, so no op or event can be added
without deciding how it is accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from . import events

MetricValue = Union[float, int, dict[str, float], list[tuple[float, float]]]


@dataclass
class Counter:
    """Monotonically increasing tally."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    With ``bounds`` set (ascending upper bucket edges), the histogram
    additionally counts observations per bucket, and :meth:`summary`
    exposes Prometheus-style cumulative ``le:<bound>`` keys — which is
    what lets :mod:`repro.obs.promtext` render a real ``histogram``
    family (with ``+Inf`` implied by ``count``) instead of a summary.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    bounds: tuple[float, ...] = ()
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            out = {"count": 0.0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        else:
            out = {
                "count": float(self.count),
                "total": self.total,
                "mean": self.mean,
                "min": self.minimum,
                "max": self.maximum,
            }
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            out[f"le:{bound:g}"] = float(cumulative)
        return out


@dataclass
class TimeSeries:
    """Timestamped samples of one evolving quantity (e.g. a queue depth)."""

    samples: list[tuple[float, float]] = field(default_factory=list)

    def sample(self, ts: float, value: float) -> None:
        self.samples.append((ts, value))

    @property
    def peak(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0


class MetricsRegistry:
    """Get-or-create store of named metrics, one namespace per run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] = ()
    ) -> Histogram:
        """Get or create a histogram; ``bounds`` only applies on creation."""
        return self._histograms.setdefault(name, Histogram(bounds=bounds))

    def timeseries(self, name: str) -> TimeSeries:
        return self._series.setdefault(name, TimeSeries())

    def collect(self) -> dict[str, MetricValue]:
        """Flatten every metric to plain JSON-serializable values."""
        out: dict[str, MetricValue] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        for name, series in self._series.items():
            out[name] = {
                "peak": series.peak,
                "last": series.last,
                "samples": float(len(series.samples)),
            }
        return out


# ---------------------------------------------------------------------------
# Coverage maps (enforced by VER005).
# ---------------------------------------------------------------------------

#: How each simulator op kind is accounted.  Keys are the class names in
#: :mod:`repro.sim.ops`; values are registry counter names.
OP_METRICS: Mapping[str, str] = {
    "Compute": "sim.ops.compute",
    "Acquire": "sim.ops.acquire",
    "Release": "sim.ops.release",
    "WaitWork": "sim.ops.wait_work",
}

#: How each bus event type is accounted.  Keys are the ``EV_*`` constants
#: of :mod:`repro.obs.events`; values are registry metric names (counter,
#: plus a time series for sampled quantities).
EVENT_METRICS: Mapping[str, str] = {
    events.EV_QUEUE_DEPTH: "queue.depth",
    events.EV_NODE_CREATED: "nodes.created",
    events.EV_NODE_POPPED: "nodes.popped",
    events.EV_NODE_DONE: "nodes.done",
    events.EV_CLASS_FLIP: "nodes.class_flips",
    events.EV_TASK_SUBMIT: "tasks.submitted",
    events.EV_TASK_RESULT: "tasks.completed",
    events.EV_ENGINE_CHOICE: "engine.choices",
    events.EV_PROC_INTERVAL: "proc.intervals",
    events.EV_TT_PROBE: "tt.probes",
    events.EV_TT_STORE: "tt.stores",
    events.EV_TT_CONTENTION: "tt.contention",
    events.EV_EVAL_PROBE: "eval.probes",
    events.EV_EVAL_STORE: "eval.stores",
    events.EV_EVAL_BATCH: "eval.batches",
    events.EV_EVAL_CONTENTION: "eval.contention",
    events.EV_CRIT_SEGMENT: "critpath.segments",
}


def feed_event(registry: MetricsRegistry, event: events.ObsEvent) -> None:
    """Fold one event into a registry.

    This is the single accounting path for bus events: the post-hoc
    :func:`aggregate` and the live incremental feed
    (:class:`repro.obs.live.LiveFeed`) both call it, so a metric visible
    mid-run via ``repro-gametree top`` is byte-for-byte the metric the
    snapshot and ledger see after the run (VER009 enforces that
    ``aggregate`` routes through here).

    Every event bumps its mapped counter; queue-depth events additionally
    feed one time series per queue (so snapshots can report peak depth),
    and task results feed a duration histogram plus per-worker
    busy-applied / busy-wasted second counters.
    """
    metric = EVENT_METRICS.get(event.etype, f"events.{event.etype}")
    registry.counter(metric).inc()
    if event.etype == events.EV_QUEUE_DEPTH:
        queue = str(event.data.get("queue", "unknown"))
        depth = float(event.data.get("depth", 0))  # type: ignore[arg-type]
        registry.timeseries(f"{metric}.{queue}").sample(event.ts, depth)
        registry.gauge(f"{metric}.{queue}.current").set(depth)
    elif event.etype == events.EV_TASK_RESULT:
        duration = float(event.data.get("duration", 0.0))  # type: ignore[arg-type]
        registry.histogram("tasks.duration_seconds").observe(duration)
        worker = event.data.get("worker")
        if isinstance(worker, int) and worker >= 0:
            bucket = (
                "busy_applied_seconds"
                if bool(event.data.get("applied", True))
                else "busy_wasted_seconds"
            )
            registry.counter(f"workers.w{worker}.{bucket}").inc(duration)
    elif event.etype == events.EV_TT_PROBE:
        outcome = "tt.hits" if bool(event.data.get("hit", False)) else "tt.misses"
        registry.counter(outcome).inc()
    elif event.etype == events.EV_TT_STORE:
        if bool(event.data.get("evicted", False)):
            registry.counter("tt.evictions").inc()
    elif event.etype == events.EV_EVAL_PROBE:
        outcome = "eval.hits" if bool(event.data.get("hit", False)) else "eval.misses"
        registry.counter(outcome).inc()
    elif event.etype == events.EV_EVAL_BATCH:
        leaves = float(event.data.get("n", 0))  # type: ignore[arg-type]
        registry.histogram("eval.batch_leaves").observe(leaves)


def aggregate(bus: events.EventBus) -> MetricsRegistry:
    """Fold one observed run into a registry.

    Same per-event accounting as the live feed — both delegate to
    :func:`feed_event` — plus the simulator op-dispatch tallies that only
    exist post-hoc on the bus.
    """
    registry = MetricsRegistry()
    for kind, count in sorted(bus.op_counts.items()):
        name = OP_METRICS.get(kind, f"sim.ops.{kind.lower()}")
        registry.counter(name).inc(count)
    for event in bus.events:
        feed_event(registry, event)
    return registry
