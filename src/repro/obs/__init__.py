"""Unified telemetry for the ER backends (sim, threaded, multiproc).

Four layers, lowest first:

* :mod:`repro.obs.events` — the structured event bus (queue depths,
  node lifecycle, classification flips, task flow) that the execution
  substrates feed when a bus is installed;
* :mod:`repro.obs.registry` — counters / gauges / histograms /
  time-series plus the op/event coverage maps VER005 enforces;
* :mod:`repro.obs.snapshot` — the one comparable record of a run: a
  per-processor busy / starvation / interference / speculative / tail
  breakdown with the protocol counters and work stats attached;
* :mod:`repro.obs.critpath` and :mod:`repro.obs.whatif` — exact
  critical-path extraction over the simulated schedule (per-node blame,
  per-primitive makespan attribution) and the causal what-if engine
  that re-runs fixed-seed workloads under perturbed cost models;
* :mod:`repro.obs.export` and :mod:`repro.obs.ledger` — Chrome
  trace-event JSON (Perfetto, with optional critical-path overlay) +
  JSONL exporters, and the persistent run ledger with regression
  comparison over counters, fractions, and critical-path composition;
* :mod:`repro.obs.live` and :mod:`repro.obs.promtext` — wall-clock
  tracing of the real backends (per-worker span rings, cross-process
  clock-offset calibration, the live metrics feed behind
  ``repro-gametree top``) and the Prometheus text exporter + HTTP
  endpoint for the metrics registry.

Only the first two are imported at package load: the engine and queue
modules import this package from the bottom of the dependency graph, so
the heavier layers (which import the backends) must be pulled in
explicitly (``from repro.obs import snapshot``).
"""

from __future__ import annotations

from .events import (
    ALL_EVENT_TYPES,
    EV_CLASS_FLIP,
    EV_CRIT_SEGMENT,
    EV_ENGINE_CHOICE,
    EV_NODE_CREATED,
    EV_NODE_DONE,
    EV_NODE_POPPED,
    EV_PROC_INTERVAL,
    EV_QUEUE_DEPTH,
    EV_TASK_RESULT,
    EV_TASK_SUBMIT,
    EventBus,
    ObsEvent,
    observing,
)
from .registry import EVENT_METRICS, OP_METRICS, MetricsRegistry, aggregate

__all__ = [
    "ALL_EVENT_TYPES",
    "EV_CLASS_FLIP",
    "EV_CRIT_SEGMENT",
    "EV_ENGINE_CHOICE",
    "EV_NODE_CREATED",
    "EV_NODE_DONE",
    "EV_NODE_POPPED",
    "EV_PROC_INTERVAL",
    "EV_QUEUE_DEPTH",
    "EV_TASK_RESULT",
    "EV_TASK_SUBMIT",
    "EVENT_METRICS",
    "OP_METRICS",
    "EventBus",
    "MetricsRegistry",
    "ObsEvent",
    "aggregate",
    "observing",
    "self_check",
]


def self_check() -> list[str]:
    """End-to-end exercise of the telemetry pipeline on a tiny sim run.

    Used by ``repro-gametree verify --obs``: runs a fixed-seed simulated
    search under an event bus, then checks the snapshot accounting
    invariant, the Chrome trace structure, and the ledger record schema.
    Returns a list of problems (empty = everything holds).
    """
    import json

    from ..core.er_parallel import parallel_er
    from ..games.base import SearchProblem
    from ..games.random_tree import RandomGameTree
    from . import critpath, export, ledger, snapshot
    from .events import observing as _observing

    problems: list[str] = []
    problem = SearchProblem(RandomGameTree(3, 5, seed=7), depth=5)
    with _observing() as bus, critpath.recording() as rec:
        result = parallel_er(problem, 4)
    path = critpath.extract(rec, result.sim_time)
    if path.length != result.sim_time:
        problems.append(
            f"critical-path length {path.length!r} != makespan {result.sim_time!r}"
        )
    snap = snapshot.snapshot_from_sim(result, workload="selfcheck", bus=bus)
    problems.extend(snap.check_accounting())
    if not bus.events:
        problems.append("event bus recorded no events during a parallel run")

    trace_text = export.render_chrome_trace(bus.events, report=result.report)
    try:
        payload = json.loads(trace_text)
    except json.JSONDecodeError as exc:  # pragma: no cover - would be a bug
        problems.append(f"chrome trace is not valid JSON: {exc}")
    else:
        if not isinstance(payload.get("traceEvents"), list) or not payload["traceEvents"]:
            problems.append("chrome trace has no traceEvents")

    record = ledger.make_record(snap, workload="selfcheck", scale="reduced", seed=7)
    problems.extend(ledger.validate_record(record))
    report = ledger.compare_records(record, record)
    if report.regressions:
        problems.append("self-comparison of one record reported regressions")
    return problems
