"""Prometheus text-exposition rendering of a metrics registry.

The run ledger answers "how did that run go"; a scrape endpoint answers
"how is *this* run going" — the surface the search-as-a-service roadmap
item mounts unchanged.  This module renders any metrics mapping (as
returned by :meth:`MetricsRegistry.collect` or
:meth:`repro.obs.live.LiveFeed.collect`) in the Prometheus text format
(version 0.0.4), and serves it from a background stdlib HTTP server —
no third-party client library involved.

Mapping rules:

* plain numbers (counters and gauges collapse to numbers in
  ``collect()``) -> one ``gauge`` sample;
* bucketed histograms (dicts with ``count``/``total`` *and* cumulative
  ``le:<bound>`` keys, produced by a
  :class:`~repro.obs.registry.Histogram` with bounds — the per-priority
  SLO latency histograms) -> a real ``histogram`` family:
  ``<name>_bucket{le="..."}`` samples ending at ``le="+Inf"``, plus
  ``<name>_sum`` / ``<name>_count``;
* unbucketed histogram summaries (dicts with ``count``/``total``) -> a
  ``summary``-style family: ``<name>_count``, ``<name>_sum``, plus
  ``_min`` / ``_max`` / ``_mean`` gauges;
* time-series summaries (dicts with ``peak``/``last``) -> ``_peak`` /
  ``_last`` / ``_samples`` gauges.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) by mapping every other character to
``_``; the registry's dotted names come through as underscored ones
(``tasks.completed`` -> ``repro_tasks_completed``).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Optional

from .registry import MetricValue

__all__ = ["render_prometheus", "MetricsServer"]

#: Prefix every exported family carries, namespacing us in a shared scrape.
_PREFIX = "repro_"


def _sanitize(name: str) -> str:
    """Map a registry metric name onto the Prometheus name grammar."""
    safe = [
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_" for ch in name
    ]
    if safe and safe[0].isdigit():
        safe.insert(0, "_")
    return _PREFIX + "".join(safe)


def _fmt(value: float) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _is_histogram(value: dict[str, float]) -> bool:
    return "count" in value and "total" in value


def _is_series(value: dict[str, float]) -> bool:
    return "peak" in value and "last" in value


def _bucket_items(value: dict[str, float]) -> list[tuple[str, float]]:
    """Cumulative ``(upper_bound, count)`` pairs from ``le:`` summary keys."""
    items = [
        (float(key[3:]), count)
        for key, count in value.items()
        if key.startswith("le:")
    ]
    items.sort()
    return [(_fmt(bound), count) for bound, count in items]


def render_prometheus(metrics: Mapping[str, MetricValue]) -> str:
    """Render a collected metrics mapping as Prometheus exposition text."""
    lines: list[str] = []
    for name in sorted(metrics):
        value = metrics[name]
        family = _sanitize(name)
        if isinstance(value, (int, float)):
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_fmt(float(value))}")
        elif isinstance(value, dict) and _is_histogram(value):
            buckets = _bucket_items(value)
            if buckets:
                lines.append(f"# TYPE {family} histogram")
                for bound, cumulative in buckets:
                    lines.append(
                        f'{family}_bucket{{le="{bound}"}} {_fmt(cumulative)}'
                    )
                lines.append(f'{family}_bucket{{le="+Inf"}} {_fmt(value["count"])}')
                lines.append(f"{family}_sum {_fmt(value['total'])}")
                lines.append(f"{family}_count {_fmt(value['count'])}")
                continue
            lines.append(f"# TYPE {family} summary")
            lines.append(f"{family}_count {_fmt(value['count'])}")
            lines.append(f"{family}_sum {_fmt(value['total'])}")
            for stat in ("min", "max", "mean"):
                if stat in value:
                    lines.append(f"# TYPE {family}_{stat} gauge")
                    lines.append(f"{family}_{stat} {_fmt(value[stat])}")
        elif isinstance(value, dict) and _is_series(value):
            for stat in ("peak", "last", "samples"):
                if stat in value:
                    lines.append(f"# TYPE {family}_{stat} gauge")
                    lines.append(f"{family}_{stat} {_fmt(value[stat])}")
        # Raw sample lists (TimeSeries.samples) are not scrapeable state
        # and are skipped; collect() summarizes them before we see them.
    return "\n".join(lines) + ("\n" if lines else "")


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` from the collector the server carries."""

    server: "MetricsServer"  # narrowed for the collector attribute

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics lives here")
            return
        body = render_prometheus(self.server.collect()).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Scrapes are routine; stay quiet instead of spamming stderr."""


class MetricsServer(ThreadingHTTPServer):
    """Background ``/metrics`` endpoint over a live metrics collector.

    Args:
        collect: zero-argument callable returning the current metrics
            mapping (``LiveFeed.collect`` is the intended argument —
            it snapshots under the feed's lock, so scrapes during a
            running search are consistent).
        port: TCP port; 0 picks a free one (read :attr:`port` after).
        host: bind address, loopback by default.

    Lifecycle (safe to embed in a long-lived server process):
    :meth:`start` is idempotent — a second call is a no-op returning the
    same instance, never a second serving thread.  :meth:`stop` is
    idempotent and deterministic: it only calls ``shutdown()`` when the
    serving thread actually ran (``shutdown()`` on a never-served
    ``socketserver`` blocks forever), closes the listening socket
    exactly once so the port is immediately rebindable, and joins the
    thread.  ``stop()`` before ``start()`` just releases the socket.  A
    stopped server cannot be restarted — its socket is gone — so
    ``start()`` after ``stop()`` raises instead of serving nothing.

    Raises:
        OSError: when the requested port cannot be bound (typically
            ``EADDRINUSE`` from another process scraping the same
            port); the message names the requested address.
    """

    daemon_threads = True

    def __init__(
        self,
        collect: Callable[[], Mapping[str, MetricValue]],
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        try:
            super().__init__((host, port), _Handler)
        except OSError as error:
            raise OSError(
                f"metrics endpoint cannot bind {host}:{port}: {error} "
                "(is another exporter already serving that port?)"
            ) from error
        self._collect = collect
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    def collect(self) -> Mapping[str, MetricValue]:
        return self._collect()

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = str(self.server_address[0])
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve in a daemon thread; returns self for chaining.

        Idempotent: calling again while serving returns the same
        instance without spawning a second thread.
        """
        if self._stopped:
            raise OSError(
                "MetricsServer cannot restart after stop(): the listening "
                "socket is closed; build a new instance"
            )
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port; idempotent, never blocks.

        Safe in any state: before :meth:`start` (just closes the
        socket), while serving (shuts the loop down and joins the
        thread), or after a previous :meth:`stop` (no-op).
        """
        if self._stopped:
            return
        self._stopped = True
        thread, self._thread = self._thread, None
        if thread is not None:
            # shutdown() handshakes with serve_forever; only valid when
            # the serving thread actually entered that loop.
            self.shutdown()
        self.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
