"""The one comparable record of a parallel run, for any backend.

The paper's evaluation decomposes lost efficiency into starvation,
interference, and speculative loss (Section 3.1, Figures 10-13).  Before
this module each backend reported that decomposition in its own shape —
:class:`~repro.sim.metrics.SimReport` for the simulator, ad-hoc counter
dicts for the threaded driver, and
:class:`~repro.parallel.multiproc.MultiprocResult` for the process pool.
A :class:`Snapshot` normalizes all three into per-processor
busy / starvation / interference / speculative / tail-idle rows plus the
shared protocol counters and work stats, which is what the run ledger
(:mod:`repro.obs.ledger`) persists and compares.

Accounting semantics per backend:

* **sim** — exact.  Every simulated instant of a processor's life up to
  its ``finish_time`` is busy, lock-blocked, or work-blocked, so
  ``busy + interference + starvation (+ speculative=0) == finish_time``
  to float round-off, and ``tail_idle`` covers the gap to the makespan.
  Speculative loss is semantic in the simulator (wasted *busy* time, not
  a separate timing state) and is reported at run level through the node
  traces (:mod:`repro.analysis.losses`), so the per-processor column is
  zero by construction.
* **threaded** — measured.  The driver times each thread's lock waits
  and work waits with the wall clock; busy is the remainder of the
  thread's lifetime.  Sums match each thread's measured lifetime, not
  the makespan, and carry scheduler noise.
* **multiproc** — measured.  Worker busy time is split into applied
  (mandatory) and moot-on-arrival (speculative) per worker process from
  task timestamps; the coordinator's starvation integral and the IPC
  residual are spread evenly across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..search.stats import SearchStats
from . import events as _events
from . import registry as _registry

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..parallel.base import ParallelResult
    from ..parallel.multiproc import MultiprocResult
    from ..parallel.threaded import ThreadedRun

#: Time units a snapshot can be denominated in.
SIM_UNITS = "sim-units"
SECONDS = "seconds"


@dataclass(frozen=True)
class ProcBreakdown:
    """Where one processor's time went, in the snapshot's time unit."""

    pid: int
    busy: float
    starvation: float
    interference: float
    speculative: float
    tail_idle: float
    finish_time: float

    @property
    def accounted(self) -> float:
        """Busy plus every loss category (excluding the idle tail)."""
        return self.busy + self.starvation + self.interference + self.speculative

    def to_dict(self) -> dict[str, float]:
        return {
            "pid": float(self.pid),
            "busy": self.busy,
            "starvation": self.starvation,
            "interference": self.interference,
            "speculative": self.speculative,
            "tail_idle": self.tail_idle,
            "finish_time": self.finish_time,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "ProcBreakdown":
        return cls(
            pid=int(data["pid"]),
            busy=float(data["busy"]),
            starvation=float(data["starvation"]),
            interference=float(data["interference"]),
            speculative=float(data["speculative"]),
            tail_idle=float(data["tail_idle"]),
            finish_time=float(data["finish_time"]),
        )


@dataclass(frozen=True)
class Snapshot:
    """Normalized outcome of one parallel run, any backend."""

    backend: str
    time_unit: str
    workload: str
    n_processors: int
    makespan: float
    value: float
    processors: tuple[ProcBreakdown, ...]
    counters: dict[str, float] = field(default_factory=dict)
    work: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, _registry.MetricValue] = field(default_factory=dict)
    #: Critical-path composition from
    #: :meth:`repro.obs.critpath.CriticalPath.composition` (sim backend
    #: only; empty when no path was extracted).  Flat ``primitive.*`` /
    #: ``handoffs.*`` keys so the ledger can diff composition shifts.
    critpath: dict[str, float] = field(default_factory=dict)

    # -- derived fractions (denominator: processor-time of the run) --------

    @property
    def processor_time(self) -> float:
        return self.makespan * max(1, self.n_processors)

    def _fraction(self, amount: float) -> float:
        total = self.processor_time
        return amount / total if total > 0 else 0.0

    @property
    def busy_fraction(self) -> float:
        return self._fraction(sum(p.busy for p in self.processors))

    @property
    def starvation_fraction(self) -> float:
        """Empty-heap waits plus the idle tails (the paper's convention)."""
        return self._fraction(sum(p.starvation + p.tail_idle for p in self.processors))

    @property
    def interference_fraction(self) -> float:
        return self._fraction(sum(p.interference for p in self.processors))

    @property
    def speculative_fraction(self) -> float:
        return self._fraction(sum(p.speculative for p in self.processors))

    # -- invariants ---------------------------------------------------------

    def check_accounting(self, rel_tolerance: float = 1e-9) -> list[str]:
        """Verify the per-processor time decomposition; [] when it holds.

        For the simulated backend the decomposition is exact:
        ``accounted == finish_time`` and
        ``accounted + tail_idle == makespan`` within float round-off.
        Wall-clock backends only promise non-negative categories and
        totals bounded by the run's processor-time.
        """
        problems: list[str] = []
        for proc in self.processors:
            for name in ("busy", "starvation", "interference", "speculative", "tail_idle"):
                if getattr(proc, name) < 0:
                    problems.append(f"P{proc.pid}: negative {name}")
        if self.time_unit != SIM_UNITS:
            return problems
        tol = rel_tolerance * max(1.0, self.makespan)
        for proc in self.processors:
            if abs(proc.accounted - proc.finish_time) > tol:
                problems.append(
                    f"P{proc.pid}: busy+losses {proc.accounted!r} != "
                    f"finish_time {proc.finish_time!r}"
                )
            if abs(proc.accounted + proc.tail_idle - self.makespan) > tol:
                problems.append(
                    f"P{proc.pid}: accounted+tail {proc.accounted + proc.tail_idle!r} "
                    f"!= makespan {self.makespan!r}"
                )
        return problems

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "backend": self.backend,
            "time_unit": self.time_unit,
            "workload": self.workload,
            "n_processors": self.n_processors,
            "makespan": self.makespan,
            "value": self.value,
            "processors": [p.to_dict() for p in self.processors],
            "counters": dict(self.counters),
            "work": dict(self.work),
            "metrics": dict(self.metrics),
            "fractions": {
                "busy": self.busy_fraction,
                "starvation": self.starvation_fraction,
                "interference": self.interference_fraction,
                "speculative": self.speculative_fraction,
            },
        }
        # Omitted when empty so pre-critpath records and golden bytes
        # stay unchanged.
        if self.critpath:
            out["critpath"] = dict(self.critpath)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Snapshot":
        processors = tuple(
            ProcBreakdown.from_dict(row)  # type: ignore[arg-type]
            for row in data.get("processors", [])  # type: ignore[union-attr]
        )
        return cls(
            backend=str(data["backend"]),
            time_unit=str(data["time_unit"]),
            workload=str(data.get("workload", "")),
            n_processors=int(data["n_processors"]),  # type: ignore[arg-type]
            makespan=float(data["makespan"]),  # type: ignore[arg-type]
            value=float(data["value"]),  # type: ignore[arg-type]
            processors=processors,
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            work=dict(data.get("work", {})),  # type: ignore[arg-type]
            metrics=dict(data.get("metrics", {})),  # type: ignore[arg-type]
            critpath=dict(data.get("critpath", {})),  # type: ignore[arg-type]
        )


def work_dict(stats: SearchStats) -> dict[str, float]:
    """The comparable work counters of one run's merged stats."""
    return {
        "interior_visits": float(stats.interior_visits),
        "leaf_evals": float(stats.leaf_evals),
        "ordering_evals": float(stats.ordering_evals),
        "nodes_generated": float(stats.nodes_generated),
        "nodes_examined": float(stats.nodes_examined),
        "cutoffs": float(stats.cutoffs),
        "tt_probes": float(stats.tt_probes),
        "tt_stores": float(stats.tt_stores),
        "cost": float(stats.cost),
    }


def _metrics_from(bus: Optional[_events.EventBus]) -> dict[str, _registry.MetricValue]:
    if bus is None:
        return {}
    return _registry.aggregate(bus).collect()


# ---------------------------------------------------------------------------
# Per-backend builders.
# ---------------------------------------------------------------------------


def snapshot_from_sim(
    result: "ParallelResult",
    *,
    workload: str = "",
    bus: Optional[_events.EventBus] = None,
    critpath: Optional[dict[str, float]] = None,
) -> Snapshot:
    """Freeze a simulated run (exact decomposition, simulated units).

    ``critpath`` takes a flat composition dict
    (:meth:`repro.obs.critpath.CriticalPath.composition`) when the run
    was recorded under a schedule recorder.
    """
    processors = tuple(
        ProcBreakdown(
            pid=pid,
            busy=m.busy,
            starvation=m.starve_wait,
            interference=m.lock_wait,
            speculative=0.0,
            tail_idle=m.tail_idle,
            finish_time=m.finish_time,
        )
        for pid, m in enumerate(result.report.processors)
    )
    return Snapshot(
        backend="sim",
        time_unit=SIM_UNITS,
        workload=workload,
        n_processors=result.n_processors,
        makespan=result.report.makespan,
        value=result.value,
        processors=processors,
        counters={k: float(v) for k, v in result.extras.items()},
        work=work_dict(result.stats),
        metrics=_metrics_from(bus),
        critpath=dict(critpath) if critpath else {},
    )


def _nonneg(amount: float) -> float:
    """Clamp a measured quantity to zero.

    Wall-clock micro-runs can hand the builders degenerate inputs —
    ``wall_time == 0`` from timer quantization, per-thread walls a hair
    past the run wall — which would otherwise surface as negative (and,
    divided through, NaN-prone) loss rows.  Measured categories are
    physically non-negative, so clamping is correction, not distortion.
    """
    return amount if amount > 0.0 else 0.0


def snapshot_from_threaded(
    run: "ThreadedRun",
    *,
    workload: str = "",
    bus: Optional[_events.EventBus] = None,
) -> Snapshot:
    """Freeze a real-thread run (measured decomposition, wall seconds)."""
    processors = tuple(
        ProcBreakdown(
            pid=pid,
            busy=_nonneg(t.busy),
            starvation=_nonneg(t.starve_wait),
            interference=_nonneg(t.lock_wait),
            speculative=0.0,
            tail_idle=_nonneg(run.wall_time - t.wall),
            finish_time=_nonneg(t.wall),
        )
        for pid, t in enumerate(run.timings)
    )
    return Snapshot(
        backend="threaded",
        time_unit=SECONDS,
        workload=workload,
        n_processors=len(run.timings),
        makespan=_nonneg(run.wall_time),
        value=run.value,
        processors=processors,
        counters={k: float(v) for k, v in run.counters.items()},
        work=work_dict(run.stats),
        metrics=_metrics_from(bus),
    )


def snapshot_from_multiproc(
    result: "MultiprocResult",
    *,
    workload: str = "",
    bus: Optional[_events.EventBus] = None,
) -> Snapshot:
    """Freeze a multiprocess run (measured decomposition, wall seconds).

    Worker busy time comes from per-task timestamps, attributed by the
    stable worker indices ``MultiprocResult.per_worker`` is keyed with
    (the OS pid stays inside the value dict); the coordinator-integrated
    starvation and the IPC residual have no per-worker attribution and
    are spread evenly.
    """
    n = result.n_workers
    starve_each = _nonneg(result.starvation_seconds) / n
    interfere_each = _nonneg(result.interference_seconds) / n
    rows: list[ProcBreakdown] = []
    for index in range(n):
        split = result.per_worker.get(index)
        applied = _nonneg(float(split["applied"])) if split else 0.0
        wasted = _nonneg(float(split["wasted"])) if split else 0.0
        rows.append(
            ProcBreakdown(
                pid=index,
                busy=applied,
                starvation=starve_each,
                interference=interfere_each,
                speculative=wasted,
                tail_idle=0.0,
                finish_time=_nonneg(result.wall_time),
            )
        )
    counters = {k: float(v) for k, v in result.extras.items() if isinstance(v, (int, float))}
    counters["busy_applied_seconds"] = result.busy_applied_seconds
    counters["busy_wasted_seconds"] = result.busy_wasted_seconds
    counters["starvation_seconds"] = result.starvation_seconds
    counters["interference_seconds"] = result.interference_seconds
    return Snapshot(
        backend="multiproc",
        time_unit=SECONDS,
        workload=workload,
        n_processors=n,
        makespan=_nonneg(result.wall_time),
        value=result.value,
        processors=tuple(rows),
        counters=counters,
        work=work_dict(result.stats),
        metrics=_metrics_from(bus),
    )
