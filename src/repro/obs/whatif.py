"""Causal "what-if" profiling over perturbed cost models.

Critical-path attribution (:mod:`repro.obs.critpath`) says how much of
the makespan the schedule *spent* on each cost primitive; this module
asks the sharper causal question: what would the makespan become if a
primitive were cheaper?  Two answers are produced per ``(primitive,
factor)`` point:

* **predicted** — the Coz-style virtual speedup computed from the base
  run alone: scaling a primitive's cost by ``factor`` removes
  ``(1 - factor)`` of the path time attributed to it, so
  ``predicted = base_makespan - (1 - factor) * attributed``.  This is
  exact only if the schedule's shape were frozen.
* **actual** — the makespan of a genuine re-run of the same fixed-seed
  workload under a ``CostModel`` with the primitive's fields scaled by
  ``factor`` (``dataclasses.replace``; zero means free).  The schedule
  *reshapes*: pops land in different orders, speculation changes, other
  primitives rotate onto the critical path.

The gap between the two is the causal-profile signal — how much of the
naive headroom survives contact with the scheduler.  Everything is a
deterministic pure function of the runner, so sweeps are
byte-reproducible and ledger-recordable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping

from ..costmodel import CostModel
from ..errors import SimulationError

#: Cost primitives a sweep may perturb, mapped to the ``CostModel``
#: fields they scale.  ``expansion`` covers both the per-node base and
#: the per-child increment; the rest are one field each.
PRIMITIVE_FIELDS: dict[str, tuple[str, ...]] = {
    "static_eval": ("static_eval",),
    "expansion": ("expand_base", "expand_per_child"),
    "heap_op": ("heap_op",),
    "combine_step": ("combine_step",),
    "bookkeeping": ("bookkeeping",),
    "tt_probe": ("tt_probe",),
    "tt_store": ("tt_store",),
    "batch_eval": ("batch_eval_base", "batch_eval_per_leaf"),
    "eval_cache": ("eval_cache_probe", "eval_cache_store"),
}

#: A runner maps a cost model to the resulting makespan for the fixed
#: workload under study (same problem, seed, P, config every call).
Runner = Callable[[CostModel], float]


def perturbed(cost_model: CostModel, primitive: str, factor: float) -> CostModel:
    """Return ``cost_model`` with ``primitive``'s fields scaled by ``factor``."""
    try:
        fields = PRIMITIVE_FIELDS[primitive]
    except KeyError:
        raise SimulationError(
            f"unknown cost primitive {primitive!r}; "
            f"choose from {sorted(PRIMITIVE_FIELDS)}"
        ) from None
    if factor < 0:
        raise SimulationError("perturbation factor must be non-negative")
    changes = {name: getattr(cost_model, name) * factor for name in fields}
    return replace(cost_model, **changes)


@dataclass(frozen=True)
class WhatIfPoint:
    """One point of a causal profile: a primitive scaled by a factor."""

    primitive: str
    factor: float
    base_makespan: float
    attributed: float
    predicted_makespan: float
    actual_makespan: float

    @property
    def predicted_speedup(self) -> float:
        return self.base_makespan / max(self.predicted_makespan, 1e-12)

    @property
    def actual_speedup(self) -> float:
        return self.base_makespan / max(self.actual_makespan, 1e-12)

    @property
    def prediction_error(self) -> float:
        """Predicted minus actual makespan (positive: run beat the model)."""
        return self.predicted_makespan - self.actual_makespan

    def to_record(self) -> dict[str, float | str]:
        """Flat, JSON/ledger-friendly form."""
        return {
            "primitive": self.primitive,
            "factor": self.factor,
            "base_makespan": self.base_makespan,
            "attributed": self.attributed,
            "predicted_makespan": self.predicted_makespan,
            "actual_makespan": self.actual_makespan,
            "predicted_speedup": self.predicted_speedup,
            "actual_speedup": self.actual_speedup,
        }


def sweep(
    runner: Runner,
    attribution: Mapping[str, float],
    base_makespan: float,
    *,
    primitives: Iterable[str],
    factors: Iterable[float],
    cost_model: CostModel,
) -> list[WhatIfPoint]:
    """Run the full ``primitives x factors`` causal-profile grid.

    ``attribution`` is ``CriticalPath.by_primitive()`` from the *base*
    run; primitives absent from it get zero attributed time (predicted
    makespan unchanged), which is itself informative when the actual
    re-run still moves.
    """
    points: list[WhatIfPoint] = []
    for primitive in primitives:
        attributed = attribution.get(primitive, 0.0)
        for factor in factors:
            predicted = base_makespan - (1.0 - factor) * attributed
            actual = (
                base_makespan
                if factor == 1.0
                else runner(perturbed(cost_model, primitive, factor))
            )
            points.append(
                WhatIfPoint(
                    primitive=primitive,
                    factor=factor,
                    base_makespan=base_makespan,
                    attributed=attributed,
                    predicted_makespan=predicted,
                    actual_makespan=actual,
                )
            )
    return points


def to_records(points: Iterable[WhatIfPoint]) -> list[dict[str, float | str]]:
    """Serialise a sweep for the run ledger (``record["whatif"]``)."""
    return [p.to_record() for p in points]


def render_table(points: Iterable[WhatIfPoint]) -> str:
    """Deterministic text table of predicted-vs-actual speedups."""
    lines = [
        "what-if causal profile (virtual speedup vs re-run):",
        f"  {'primitive':<14} {'factor':>6} {'attributed':>12} "
        f"{'predicted':>12} {'actual':>12} {'pred-x':>7} {'act-x':>7}",
    ]
    for p in points:
        lines.append(
            f"  {p.primitive:<14} {p.factor:>6.2f} {p.attributed:>12.1f} "
            f"{p.predicted_makespan:>12.1f} {p.actual_makespan:>12.1f} "
            f"{p.predicted_speedup:>7.3f} {p.actual_speedup:>7.3f}"
        )
    return "\n".join(lines) + "\n"
