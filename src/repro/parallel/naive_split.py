"""Naive root splitting — the straw-man partitioning of Section 1.

The root's children are handed to the processor pool, each searched by
serial alpha-beta with the *full* window and no information sharing.
This is the algorithm the paper's introduction dismisses: it "will search
a much greater portion of the tree than serial alpha-beta, resulting in
low efficiency" — the benchmark uses it as the speculative-loss ceiling.
"""

from __future__ import annotations

from typing import Any

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, SearchProblem, subproblem
from ..search.alphabeta import alphabeta
from ..search.stats import SearchStats
from .base import ParallelResult
from .schedule import ScheduledTask, list_schedule


class _NaiveRun:
    def __init__(self, problem: SearchProblem, cost_model: CostModel):
        self.problem = problem
        self.cost_model = cost_model
        self.stats = SearchStats()
        self.best = NEG_INF
        self.outstanding = 0
        self.root_is_leaf = False

    def initial_tasks(self) -> list[ScheduledTask]:
        game = self.problem.game
        root = game.root()
        children = [] if self.problem.is_horizon(0) else list(game.children(root))
        if not children:
            self.root_is_leaf = True

            def leaf_cost() -> tuple[float, Any]:
                charge = self.stats.on_leaf((), self.cost_model)
                return charge, game.evaluate(root)

            return [ScheduledTask(key=("root",), cost_fn=leaf_cost)]
        self.stats.on_expand((), len(children), self.cost_model)
        tasks = []
        for index, child in enumerate(children):

            def cost_fn(child=child, index=index) -> tuple[float, Any]:
                sub = subproblem(self.problem, child, 1)
                local = SearchStats()
                result = alphabeta(
                    sub, NEG_INF, POS_INF, cost_model=self.cost_model, stats=local
                )
                self.stats.merge(local)
                return local.cost, result.value

            tasks.append(ScheduledTask(key=("child", index), cost_fn=cost_fn))
        self.outstanding = len(tasks)
        return tasks

    def on_complete(self, task: ScheduledTask, payload: Any, now: float) -> list[ScheduledTask]:
        if self.root_is_leaf:
            self.best = payload
            return []
        if -payload > self.best:
            self.best = -payload
        self.outstanding -= 1
        return []


def naive_split(
    problem: SearchProblem,
    n_processors: int,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelResult:
    """Simulate naive root partitioning on ``n_processors``."""
    if n_processors < 1:
        raise SearchError("need at least one processor")
    run = _NaiveRun(problem, cost_model)
    report = list_schedule(n_processors, run)
    return ParallelResult(
        value=run.best,
        n_processors=n_processors,
        report=report,
        stats=run.stats,
        algorithm="naive-split",
    )
