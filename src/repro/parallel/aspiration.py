"""Parallel aspiration search — Baudet's algorithm (paper Section 4.1).

The open alpha-beta window is partitioned into ``k`` disjoint intervals
clustered around an estimate of the root value; processor ``i`` runs a
full serial alpha-beta search with window ``(l_i, r_i)``.  Exactly one
processor's window brackets the true value — it terminates with the
answer and the others are aborted.

The paper's observations, which the baseline benchmark reproduces:
with 2–3 processors efficiency can exceed 1 (the winning narrow window
prunes more than the open window), but speedup is bounded by 5–6 no
matter how many processors are used, because even a zero-width window
must still search the minimal tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, SearchProblem
from ..search.alphabeta import alphabeta
from ..search.stats import SearchStats
from ..sim.metrics import ProcessorMetrics, SimReport
from .base import ParallelResult


def aspiration_windows(estimate: float, width: float, k: int) -> list[tuple[float, float]]:
    """Partition ``(-inf, +inf)`` into ``k`` disjoint windows.

    Windows of ``width`` units are stacked around ``estimate``, with the
    two extreme windows extended to infinity so the partition is total.
    Interior boundaries are shared: window ``i`` is ``(b_i, b_{i+1})``
    and a root value exactly on a boundary is resolved by the window
    above it (alpha-beta returns the true value when ``alpha < v < beta``;
    boundaries are half-open by the strictness of those comparisons).
    """
    if k < 1:
        raise SearchError("need at least one window")
    if width <= 0:
        raise SearchError("window width must be positive")
    if k == 1:
        return [(NEG_INF, POS_INF)]
    # k-1 interior boundaries centred on the estimate.
    n_bounds = k - 1
    first = estimate - width * (n_bounds - 1) / 2.0
    bounds = [first + i * width for i in range(n_bounds)]
    windows = [(NEG_INF, bounds[0])]
    for i in range(len(bounds) - 1):
        windows.append((bounds[i], bounds[i + 1]))
    windows.append((bounds[-1], POS_INF))
    return windows


@dataclass(frozen=True)
class _WindowRun:
    window: tuple[float, float]
    value: float
    cost: float
    succeeded: bool


def parallel_aspiration(
    problem: SearchProblem,
    n_processors: int,
    *,
    estimate: float | None = None,
    width: float | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelResult:
    """Simulate Baudet's parallel aspiration search.

    Each processor independently runs serial alpha-beta with its window;
    the run ends when the bracketing processor finishes, at which point
    every other processor is aborted (charged the elapsed time only).

    Args:
        estimate: guess for the root value; defaults to the root's static
            evaluation (what a real program would use).
        width: window width; defaults to a tenth of the evaluator's root
            magnitude scale (at least 1).
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    game = problem.game
    if estimate is None:
        estimate = game.evaluate(game.root())
    if width is None:
        width = max(1.0, abs(estimate) * 0.1)

    def sweep(offset: float) -> list[_WindowRun]:
        runs: list[_WindowRun] = []
        for window in aspiration_windows(estimate + offset, width, n_processors):
            stats = SearchStats()
            result = alphabeta(
                problem, window[0], window[1], cost_model=cost_model, stats=stats
            )
            succeeded = window[0] < result.value < window[1]
            runs.append(_WindowRun(window, result.value, stats.cost, succeeded))
        return runs

    runs = sweep(0.0)
    winners = [run for run in runs if run.succeeded]
    if not winners:
        # The root value sat exactly on a window boundary (integral
        # evaluators make this possible); shift the partition half a
        # window and repeat, as a real implementation would re-search.
        runs = sweep(width / 2.0 + 0.25)
        winners = [run for run in runs if run.succeeded]
    if not winners:
        raise SearchError(
            "no aspiration window bracketed the root value; "
            "boundary values require the window layout to be adjusted"
        )
    winner = min(winners, key=lambda run: run.cost)
    makespan = winner.cost

    merged = SearchStats()
    processors = []
    for run in runs:
        busy = min(run.cost, makespan)  # losers aborted at the makespan
        processors.append(ProcessorMetrics(busy=busy, finish_time=busy))
        merged.cost += busy
    report = SimReport(makespan=makespan, processors=processors)
    return ParallelResult(
        value=winner.value,
        n_processors=n_processors,
        report=report,
        stats=merged,
        algorithm="aspiration",
        extras={
            "winning_window": winner.window,
            "window_costs": [run.cost for run in runs],
            "estimate": estimate,
            "width": width,
        },
    )
