"""True-parallel multiprocess execution of the ER problem heap.

The simulator (:mod:`repro.core.er_parallel`) answers the paper's
*algorithmic* questions and the threaded driver answers the
*protocol-correctness* ones; this module answers the remaining question —
"is it actually faster on real hardware?" — by running ER on a pool of
worker **processes**, which bypasses CPython's GIL.

Division of labour (mirroring the paper's Sequent implementation, where
the shared problem heap was cheap and the static evaluator dominated):

* The **coordinator** process hosts the problem heap — the very same
  :class:`~repro.core.er_queues.PrimaryQueue` and
  :class:`~repro.core.er_queues.SpeculativeQueue`, inside the very same
  :class:`~repro.core.er_parallel._Context` the simulator uses — and runs
  the Table 1/Table 2 node-generation and combine rules inline.  Because
  a single process serves the heap, no locks are needed; the coordinator
  plays the role a ``multiprocessing.Manager`` would, without paying one
  IPC round-trip per queue operation.
* **Worker processes** execute the expensive part: whole serial-ER
  subtree searches below ``config.serial_depth`` (Table 3's "Serial
  Depth" cutover), exactly as the simulator's ``_serial_evaluate`` /
  ``_serial_refute_remaining`` do.  Tasks and results cross the process
  boundary by pickling :class:`~repro.games.base.SearchProblem` slices,
  which every bundled game (random trees, explicit trees, tic-tac-toe,
  Connect-4, Othello) supports because positions are plain immutable
  dataclasses over ints and tuples.

Semantics match the simulator's documented deviations: subtree searches
run against the window captured at dispatch, results of subtrees
orphaned by a cutoff are discarded on arrival (their node counts are
still merged — the work *was* performed), and the combine procedure is
byte-for-byte the simulator's (it is literally the same code).

Loss accounting (paper Section 3.1), from per-worker counters: over the
run's ``n_workers * wall_time`` processor-seconds,

* **speculative loss** is worker time spent on subtree tasks whose
  results were moot on arrival (an ancestor had combined or been cut
  off) — completed work a serial search would not have needed;
* **starvation loss** is worker time during which fewer tasks were in
  flight than workers (the heap had nothing at serial depth to hand
  out), integrated from the coordinator's submit/receive event log;
* **interference loss** is the remainder: pickling, queue IPC, and
  coordinator occupancy — the multiprocess analogue of the paper's
  lock contention.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Protocol, Sequence

from ..cache.sharedmem import SharedMemoryTT
from ..cache.striped import TT_MODES
from ..core.er_parallel import E_NODE, R_NODE, UNDECIDED, ERConfig, PNode, _Context
from ..core.serial_er import TTView, er_search
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError, SimulationError
from ..eval.cache import EVAL_CACHE_MODES, SharedMemoryEvalCache, StripedEvalCache
from ..eval.evaluator import EvalCacheView, Evaluator
from ..games.base import Game, RootedGame, SearchProblem, hash_key, subproblem
from ..obs import events as _obs
from ..obs import live as _live
from ..search.stats import SearchStats
from ..search.transposition import Bound, TranspositionTable, TTEntry

__all__ = [
    "MultiprocResult",
    "PersistentPool",
    "ScalingPoint",
    "WorkerCaches",
    "build_worker_caches",
    "default_serial_depth",
    "multiproc_er",
    "scaling_run",
    "format_scaling_table",
    "preferred_start_method",
]


def preferred_start_method() -> str:
    """``fork`` where available (cheap workers), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def default_serial_depth(depth: int) -> int:
    """Serial-depth cutover used when the caller does not specify one.

    Subtrees of height ~3 are large enough to amortize one task's pickle
    and IPC cost while leaving enough tasks to keep the pool busy.
    """
    return max(1, depth - 3)


# ---------------------------------------------------------------------------
# Worker side: top-level functions so they pickle under any start method.
# ---------------------------------------------------------------------------


_PackedStats = tuple[int, int, int, int, int, int, int, int, int, int, int, int, int, float]


def _pack_stats(stats: SearchStats) -> _PackedStats:
    return (
        stats.interior_visits,
        stats.leaf_evals,
        stats.ordering_evals,
        stats.nodes_generated,
        stats.cutoffs,
        stats.tt_probes,
        stats.tt_stores,
        stats.static_evals,
        stats.batch_calls,
        stats.batch_leaves,
        stats.eval_probes,
        stats.eval_hits,
        stats.eval_stores,
        stats.cost,
    )


def _unpack_stats(packed: _PackedStats) -> SearchStats:
    (
        interior, leaves, ordering, generated, cutoffs, tt_probes, tt_stores,
        static_evals, batch_calls, batch_leaves, eval_probes, eval_hits,
        eval_stores, cost,
    ) = packed
    return SearchStats(
        interior_visits=interior,
        leaf_evals=leaves,
        ordering_evals=ordering,
        nodes_generated=generated,
        cutoffs=cutoffs,
        tt_probes=tt_probes,
        tt_stores=tt_stores,
        static_evals=static_evals,
        batch_calls=batch_calls,
        batch_leaves=batch_leaves,
        eval_probes=eval_probes,
        eval_hits=eval_hits,
        eval_stores=eval_stores,
        cost=cost,
    )


#: Per-process transposition table set by the pool initializer below;
#: ``None`` runs the subtree searches uncached (``--tt off``).
_WORKER_TT: Optional[TTView] = None
#: Per-process evaluation cache; ``None`` means ``--eval-cache off``.
_WORKER_EVAL_CACHE: Optional[EvalCacheView] = None
#: Whether subtree searches batch frontier evaluations.
_WORKER_BATCH_EVAL: bool = False


def _init_worker(
    tt_spec: tuple[Any, ...],
    eval_spec: tuple[Any, ...],
    trace_mode: str = _live.TRACE_OFF,
) -> None:
    """Pool initializer: attach this process's caches from their specs.

    ``tt_spec`` is ``("off",)``, ``("private", capacity)``, or
    ``("shared", handle, locks)``; ``eval_spec`` is the same with a
    trailing batch-eval flag.  Lock sequences ride in as initializer
    args because ``multiprocessing`` primitives may only cross process
    boundaries by inheritance — they cannot be pickled inside
    :class:`~repro.cache.sharedmem.TTHandle`.  Pool processes persist
    across tasks, so private caches accumulate over every subtree
    search the same worker happens to receive.

    ``trace_mode`` installs this process's span ring
    (:data:`repro.obs.live.RING`), which the shared-cache probe/store
    hooks and :func:`_run_task` record into; its contents ship back on
    the result channel.
    """
    global _WORKER_TT, _WORKER_EVAL_CACHE, _WORKER_BATCH_EVAL
    _live.install_ring(trace_mode)
    if tt_spec[0] == "shared":
        _WORKER_TT = SharedMemoryTT.attach(tt_spec[1], tt_spec[2])
    elif tt_spec[0] == "private":
        _WORKER_TT = TranspositionTable(capacity=tt_spec[1])
    else:
        _WORKER_TT = None
    _WORKER_BATCH_EVAL = bool(eval_spec[-1])
    if eval_spec[0] == "shared":
        _WORKER_EVAL_CACHE = SharedMemoryEvalCache.attach(eval_spec[1], eval_spec[2])
    elif eval_spec[0] == "private":
        # Single-stripe: a worker process is single-threaded, so the
        # stripe lock is uncontended; this buys the float surface and
        # the bounded-capacity table for free.
        _WORKER_EVAL_CACHE = StripedEvalCache(eval_spec[1], n_stripes=1)
    else:
        _WORKER_EVAL_CACHE = None


def _worker_evaluator(game: Game) -> Optional[Evaluator]:
    """The evaluator a subtree search should use in this process."""
    if not _WORKER_BATCH_EVAL and _WORKER_EVAL_CACHE is None:
        return None
    return Evaluator(game, DEFAULT_COST_MODEL, _WORKER_EVAL_CACHE)


#: Per-result trace shipment: the worker ring's drained spans plus its
#: cumulative (dropped, self_cost_seconds) counters.  Cumulative so the
#: coordinator can max-merge shipments that arrive out of order.
_TraceBlob = tuple[tuple[_live.SpanRec, ...], int, float]

_TaskOutcome = tuple[str, float, _PackedStats, float, float, int, int, Optional[_TraceBlob]]


def _drain_worker_ring() -> Optional[_TraceBlob]:
    ring = _live.RING
    if ring is None:
        return None
    spans = tuple(ring.drain())
    dropped, self_cost = ring.snapshot_counters()
    return spans, dropped, self_cost


def _flush_trace() -> tuple[int, Optional[_TraceBlob]]:
    """Drain-on-exit flush task: ship whatever the ring still holds.

    Submitted (several times, best effort) after the root combines, so
    spans recorded after a worker's last task result — trailing cache
    probes, tasks orphaned by the root cutoff — still reach the
    coordinator.  Draining twice is harmless: the second drain is empty
    and the counters are cumulative.
    """
    return os.getpid(), _drain_worker_ring()


def _run_task(payload: tuple[Any, ...]) -> _TaskOutcome:
    """Execute one serial subtree task; runs inside a worker process.

    Returns ``(kind, value, packed_stats, t_start, t_end, pid,
    children_done, trace_blob)`` with ``perf_counter`` timestamps, which
    on Linux are CLOCK_MONOTONIC and therefore comparable across
    processes.
    """
    kind = payload[0]
    t_start = time.perf_counter()
    stats = SearchStats()
    children_done = 0
    tag: Optional[str] = None
    if kind == "eval":
        # The serve pool appends an optional request tag
        # (``request_id/span_id``) so this task's span carries its
        # originating request; the 4-tuple form stays the multiproc
        # driver's wire format.
        if len(payload) == 5:
            _, problem, alpha, beta, tag = payload
        else:
            _, problem, alpha, beta = payload
        value = er_search(
            problem, alpha, beta, stats=stats, table=_WORKER_TT,
            evaluator=_worker_evaluator(problem.game),
        ).value
    else:  # "refute": remaining children, sequentially, tightening bound
        _, game, positions, child_depth, child_sort, value, beta = payload
        for position in positions:
            sub = SearchProblem(
                game=RootedGame(game, position), depth=child_depth, sort_below_root=child_sort
            )
            result = er_search(
                sub, -beta, -value, stats=stats, table=_WORKER_TT,
                evaluator=_worker_evaluator(sub.game),
            )
            children_done += 1
            if -result.value > value:
                value = -result.value
            if value >= beta:
                stats.on_cutoff()
                break
    t_end = time.perf_counter()
    ring = _live.RING
    if ring is not None:
        name = kind if tag is None else _live.tag_span_name(kind, tag)
        ring.record("task", name, t_start, t_end)
    return (
        kind, value, _pack_stats(stats), t_start, t_end, os.getpid(), children_done,
        _drain_worker_ring(),
    )


# ---------------------------------------------------------------------------
# Pool construction, shared with the persistent server-owned pool.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerCaches:
    """Initializer specs plus the coordinator-side shared segments.

    ``tt_spec``/``eval_spec`` are what :func:`_init_worker` consumes;
    ``shared_tt``/``shared_eval`` are the coordinator's mappings of the
    segments those specs name (``None`` for off/private modes).  Whoever
    builds the caches owns the segments: call :meth:`teardown` after the
    last worker process has exited.
    """

    tt_spec: tuple[Any, ...]
    eval_spec: tuple[Any, ...]
    shared_tt: Optional[SharedMemoryTT]
    shared_eval: Optional[SharedMemoryEvalCache]

    def teardown(self) -> dict[str, int]:
        """Close and destroy the shared segments; returns their counters."""
        counters: dict[str, int] = {}
        if self.shared_tt is not None:
            counters.update(self.shared_tt.counter_snapshot())
            self.shared_tt.close()
            self.shared_tt.unlink()
        if self.shared_eval is not None:
            counters.update(self.shared_eval.counter_snapshot())
            self.shared_eval.close()
            self.shared_eval.unlink()
        return counters


def build_worker_caches(
    mp_ctx: multiprocessing.context.BaseContext,
    *,
    tt_mode: str = "off",
    tt_capacity: int = 1 << 14,
    eval_cache_mode: str = "off",
    eval_cache_capacity: int = 1 << 14,
    batch_eval: bool = False,
    n_stripes: int = 8,
) -> WorkerCaches:
    """Build the cache specs a worker pool's initializer needs.

    Locks come from ``mp_ctx`` — the pool's own context — so they
    survive the trip through the initializer under any start method.
    """
    if tt_mode not in TT_MODES:
        raise SearchError(f"unknown tt mode {tt_mode!r}; expected one of {TT_MODES}")
    if eval_cache_mode not in EVAL_CACHE_MODES:
        raise SearchError(
            f"unknown eval-cache mode {eval_cache_mode!r}; "
            f"expected one of {EVAL_CACHE_MODES}"
        )
    shared_tt: Optional[SharedMemoryTT] = None
    shared_eval: Optional[SharedMemoryEvalCache] = None
    tt_spec: tuple[Any, ...] = ("off",)
    if tt_mode == "shared":
        shared_tt = SharedMemoryTT(
            capacity=tt_capacity,
            n_stripes=n_stripes,
            locks=[mp_ctx.Lock() for _ in range(n_stripes)],
        )
        tt_spec = ("shared", shared_tt.handle(), shared_tt.locks)
    elif tt_mode == "private":
        tt_spec = ("private", tt_capacity)
    eval_spec: tuple[Any, ...] = ("off", batch_eval)
    if eval_cache_mode == "shared":
        shared_eval = SharedMemoryEvalCache(
            _table=SharedMemoryTT(
                capacity=eval_cache_capacity,
                n_stripes=n_stripes,
                locks=[mp_ctx.Lock() for _ in range(n_stripes)],
            )
        )
        eval_spec = ("shared", shared_eval.handle(), shared_eval.locks, batch_eval)
    elif eval_cache_mode == "private":
        eval_spec = ("private", eval_cache_capacity, batch_eval)
    return WorkerCaches(
        tt_spec=tt_spec,
        eval_spec=eval_spec,
        shared_tt=shared_tt,
        shared_eval=shared_eval,
    )


class PersistentPool(Protocol):
    """A long-lived worker pool whose caches outlive individual searches.

    :class:`repro.serve.pool.EnginePool` is the canonical
    implementation: the pool owns the executor, the shared
    :class:`~repro.cache.sharedmem.SharedMemoryTT`, and the shared eval
    cache, and its workers were initialized with :func:`_init_worker` —
    so :func:`multiproc_er` can run *on* it without rebuilding (or
    tearing down) any of that per search.  The engine layer
    (:class:`repro.engine.GameEngine` with ``algorithm="multiproc-er"``)
    threads one through :class:`repro.engine.EngineConfig`, turning
    "one pool + one warm table per search" into "one pool + one warm
    table per engine lifetime".
    """

    @property
    def executor(self) -> ProcessPoolExecutor: ...

    @property
    def shared_tt(self) -> Optional[SharedMemoryTT]: ...

    @property
    def shared_eval(self) -> Optional[SharedMemoryEvalCache]: ...

    @property
    def n_workers(self) -> int: ...

    @property
    def trace_mode(self) -> str: ...


# ---------------------------------------------------------------------------
# Coordinator side.
# ---------------------------------------------------------------------------


@dataclass
class _Pending:
    """Bookkeeping for one in-flight subtree task."""

    node: PNode
    kind: str
    submitted_at: float


class _IdleMeter:
    """Integrates worker idleness from the coordinator's event log.

    Between consecutive submit/receive events, ``max(0, workers -
    in_flight)`` workers had nothing to do; the accumulated integral is
    the run's starvation processor-seconds.
    """

    def __init__(self, n_workers: int, start: float) -> None:
        self.n_workers = n_workers
        self._last = start
        self._in_flight = 0
        self.starved_seconds = 0.0

    def record(self, now: float, delta: int) -> None:
        gap = max(0.0, now - self._last)
        self.starved_seconds += max(0, self.n_workers - self._in_flight) * gap
        self._last = now
        self._in_flight += delta


@dataclass(frozen=True)
class MultiprocResult:
    """Outcome of one multiprocess ER run, with real-time loss accounting.

    Attributes:
        value: root negmax value (equal to serial ER's; asserted by the
            cross-backend parity harness).
        n_workers: worker-process count.
        wall_time: coordinator wall-clock seconds from start to root
            combine.
        stats: merged work accounting — coordinator expansions plus every
            worker subtree search whose result arrived (applied or moot).
        extras: protocol counters (primary/speculative pops, stale and
            cutoff discards, serial searches, task counts, ...).
        busy_applied_seconds: worker seconds on tasks whose results were
            used.
        busy_wasted_seconds: worker seconds on tasks moot on arrival
            (the run's speculative loss).
        starvation_seconds: integrated worker idleness while the heap had
            nothing to hand out.
        interference_seconds: residual processor-seconds (IPC, pickling,
            coordinator occupancy).
        per_worker: busy split keyed by **stable worker index** (0-based,
            in order of first result arrival), ``{index: {"pid": pid,
            "applied": s, "wasted": s}}`` — the attribution
            :func:`repro.obs.snapshot.snapshot_from_multiproc` turns into
            per-processor breakdown rows.  Indices, not OS pids: pids
            recycle across runs and would make ledger compares and golden
            traces needlessly noisy; the pid stays available as a field.
        trace: merged wall-clock timeline when the run was traced
            (``trace="sampled"``/``"full"``), else ``None``.
    """

    value: float
    n_workers: int
    wall_time: float
    stats: SearchStats
    extras: dict[str, Any] = field(default_factory=dict)
    busy_applied_seconds: float = 0.0
    busy_wasted_seconds: float = 0.0
    starvation_seconds: float = 0.0
    interference_seconds: float = 0.0
    per_worker: dict[int, dict[str, float]] = field(default_factory=dict)
    trace: Optional[_live.LiveTrace] = None

    @property
    def processor_seconds(self) -> float:
        return self.n_workers * self.wall_time

    def speedup(self, serial_seconds: float) -> float:
        """Fishburn's speedup against a measured serial wall time."""
        if self.wall_time <= 0:
            return float("inf")
        return serial_seconds / self.wall_time

    def efficiency(self, serial_seconds: float) -> float:
        return self.speedup(serial_seconds) / max(1, self.n_workers)

    def _fraction(self, seconds: float) -> float:
        total = self.processor_seconds
        return seconds / total if total > 0 else 0.0

    @property
    def speculative_fraction(self) -> float:
        return self._fraction(self.busy_wasted_seconds)

    @property
    def starvation_fraction(self) -> float:
        return self._fraction(self.starvation_seconds)

    @property
    def interference_fraction(self) -> float:
        return self._fraction(self.interference_seconds)


def multiproc_er(
    problem: SearchProblem,
    n_workers: int,
    *,
    config: Optional[ERConfig] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    executor: Optional[ProcessPoolExecutor] = None,
    start_method: Optional[str] = None,
    timeout: float = 300.0,
    tt_mode: str = "off",
    tt_capacity: int = 1 << 14,
    eval_cache_mode: str = "off",
    eval_cache_capacity: int = 1 << 14,
    batch_eval: bool = False,
    trace: str = _live.TRACE_OFF,
    pool: Optional[PersistentPool] = None,
) -> MultiprocResult:
    """Run ER with a coordinator-hosted problem heap and worker processes.

    Args:
        problem: the game and horizon to search.
        n_workers: worker-process count (the real-hardware analogue of
            the paper's processor count).
        config: ER tunables; defaults to every speculative mechanism on
            with ``serial_depth`` set by :func:`default_serial_depth`
            (the simulator's no-cutover default would leave the pool with
            nothing to do).  ``distributed_heap`` is ignored — the heap
            is coordinator-hosted by construction.
        cost_model: charged to the merged stats so node accounting stays
            comparable with the serial and simulated backends; wall time
            is measured, not simulated.
        executor: optional existing pool to reuse (it is not shut down);
            must have at least ``n_workers`` workers for the loss
            accounting to be meaningful.
        start_method: multiprocessing start method; default prefers
            ``fork``.
        timeout: seconds to wait for any single in-flight task batch
            before declaring the run wedged.
        tt_mode: ``off`` (no caching), ``private`` (one plain table per
            worker process, installed by the pool initializer), or
            ``shared`` (one :class:`~repro.cache.sharedmem.SharedMemoryTT`
            segment every worker maps; the coordinator also probes it
            before submitting an eval task, skipping the task on a
            usable hit).  Modes other than ``off`` require an owned pool.
        tt_capacity: slot/entry budget for the table(s).
        eval_cache_mode: ``off``, ``private`` (one single-stripe cache
            per worker process), or ``shared`` (one
            :class:`~repro.eval.SharedMemoryEvalCache` segment every
            worker maps; the coordinator also probes/stores it for its
            own leaves).  Modes other than ``off`` require an owned
            pool, like ``tt_mode``.
        eval_cache_capacity: entry budget for the eval cache(s).
        batch_eval: batch frontier evaluations inside worker subtree
            searches and coordinator move ordering even without a cache.
        trace: wall-clock span tracing — ``off`` (default, zero-cost),
            ``sampled`` (record one span in
            :data:`~repro.obs.live.SAMPLED_STRIDE` on the hot paths), or
            ``full``.  Non-``off`` modes install a bounded span ring per
            worker process (plus one in the coordinator), ship spans back
            on the result channel with a drain-on-exit flush, calibrate
            each worker's clock offset from task round-trips, and attach
            the merged timeline as ``result.trace``.  Requires an owned
            pool, like the cache modes.
        pool: a :class:`PersistentPool` (e.g.
            :class:`repro.serve.pool.EnginePool`) whose executor and
            warm shared caches this search runs on.  The pool's cache
            configuration *replaces* ``tt_mode``/``eval_cache_mode``
            (its workers were already initialized), its shared segments
            are left alive for the next search, and ``trace`` must
            match the pool's trace mode.  Mutually exclusive with
            ``executor``.

    Raises:
        SimulationError: on a worker crash, a wedged pool, or a protocol
            deadlock (empty heap with nothing in flight before the root
            combines).
    """
    if n_workers < 1:
        raise SearchError("need at least one worker process")
    if config is None:
        config = ERConfig(serial_depth=default_serial_depth(problem.depth))
    if config.distributed_heap:
        config = replace(config, distributed_heap=False)
    if tt_mode not in TT_MODES:
        raise SearchError(f"unknown tt mode {tt_mode!r}; expected one of {TT_MODES}")
    if eval_cache_mode not in EVAL_CACHE_MODES:
        raise SearchError(
            f"unknown eval-cache mode {eval_cache_mode!r}; expected one of {EVAL_CACHE_MODES}"
        )
    if trace not in _live.TRACE_MODES:
        raise SearchError(
            f"unknown trace mode {trace!r}; expected one of {_live.TRACE_MODES}"
        )
    traced = trace != _live.TRACE_OFF
    if pool is not None and executor is not None:
        raise SearchError("pass either a persistent pool or a raw executor, not both")
    if pool is not None and trace != pool.trace_mode:
        raise SearchError(
            f"trace mode {trace!r} does not match the persistent pool's "
            f"{pool.trace_mode!r}: worker span rings are installed by the "
            "pool initializer and cannot change per search"
        )
    if (
        tt_mode != "off" or eval_cache_mode != "off" or batch_eval or traced
    ) and executor is not None:
        raise SearchError(
            "tt/eval-cache modes other than 'off' (and batch_eval, trace) "
            "need an owned pool: the worker initializer is what attaches "
            "each process's caches and span ring"
        )

    ctx = _Context(
        problem, cost_model, config, trace=False, n_processors=n_workers,
        batch_eval=batch_eval,
    )
    coord_stats = SearchStats()
    merged_workers = SearchStats()

    shared_tt: Optional[SharedMemoryTT] = None
    shared_eval: Optional[SharedMemoryEvalCache] = None
    caches: Optional[WorkerCaches] = None
    tail_counters: dict[str, int] = {}
    if pool is not None:
        # Persistent server-owned pool: run on its warm caches; leave
        # segments (and their cumulative counters) alive for the next
        # search.
        own_pool = False
        executor_pool = pool.executor
        shared_tt = pool.shared_tt
        shared_eval = pool.shared_eval
    elif executor is None:
        own_pool = True
        method = start_method or preferred_start_method()
        mp_ctx = multiprocessing.get_context(method)
        # Locks come from the pool's own context so they survive the
        # trip through the initializer under any start method.
        caches = build_worker_caches(
            mp_ctx,
            tt_mode=tt_mode,
            tt_capacity=tt_capacity,
            eval_cache_mode=eval_cache_mode,
            eval_cache_capacity=eval_cache_capacity,
            batch_eval=batch_eval,
        )
        shared_tt = caches.shared_tt
        shared_eval = caches.shared_eval
        executor_pool = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=mp_ctx,
            initializer=_init_worker,
            initargs=(caches.tt_spec, caches.eval_spec, trace),
        )
    else:
        own_pool = False
        executor_pool = executor

    pending: dict[Future[_TaskOutcome], _Pending] = {}
    counters = {
        "tasks_submitted": 0,
        "tasks_applied": 0,
        "tasks_discarded": 0,
        "tasks_orphaned": 0,
        "tt_coord_hits": 0,
    }
    busy_applied = 0.0
    busy_wasted = 0.0
    per_worker: dict[int, dict[str, float]] = {}
    #: OS pid -> stable worker index, assigned in first-result order.
    pid_index: dict[int, int] = {}
    #: Per-worker-index trace state (all empty when untraced).
    worker_spans: dict[int, list[_live.SpanRec]] = {}
    worker_dropped: dict[int, int] = {}
    worker_self_cost: dict[int, float] = {}
    estimators: dict[int, _live.OffsetEstimator] = {}
    # The coordinator's own ring captures its shared-table probes and
    # heap waits; installed for the run, restored in the finally.
    prev_ring = _live.RING
    coord_ring = _live.ring_for_mode(trace)
    _live.RING = coord_ring
    start = time.perf_counter()
    idle = _IdleMeter(n_workers, start)

    def worker_index(pid: int) -> int:
        return pid_index.setdefault(pid, len(pid_index))

    def merge_blob(index: int, blob: Optional[_TraceBlob]) -> None:
        if blob is None:
            return
        spans, dropped, self_cost = blob
        worker_spans.setdefault(index, []).extend(spans)
        # Counters are cumulative per worker; shipments can arrive out of
        # order across workers, so keep the largest seen.
        worker_dropped[index] = max(worker_dropped.get(index, 0), dropped)
        worker_self_cost[index] = max(worker_self_cost.get(index, 0.0), self_cost)

    def node_path(node: PNode) -> str:
        return "/".join(map(str, node.path)) or "root"

    def publish(pushes: list[tuple[str, PNode]]) -> None:
        for queue_name, pushed in pushes:
            if queue_name == "primary":
                ctx.primary.push(pushed)
            else:
                ctx.speculative.push(pushed)

    def finish(node: PNode) -> None:
        node.done = True
        pushes: list[tuple[str, PNode]] = []
        ctx.combine(node, pushes)
        publish(pushes)

    def coord_probe(node: PNode, alpha: float, beta: float) -> Optional[float]:
        """Answer a subtree from the shared table without spending a task.

        Same gate as the simulator's parallel-level probe: enough proven
        depth, and a bound that answers the dispatch window.
        """
        if shared_tt is None:
            return None
        coord_stats.on_tt_probe(cost_model)
        entry = shared_tt.probe(hash_key(problem.game, node.position))
        if entry is None or entry.depth < problem.depth - node.ply:
            return None
        usable = (
            entry.bound is Bound.EXACT
            or (entry.bound is Bound.LOWER and entry.value >= beta)
            or (entry.bound is Bound.UPPER and entry.value <= alpha)
        )
        return entry.value if usable else None

    def submit(node: PNode, alpha: float, beta: float) -> None:
        ctx._bump("serial_searches")
        payload: tuple[Any, ...]
        if node.next_child > 0:
            # Remaining-children refutation, as _serial_refute_remaining.
            value = max(node.value, alpha)
            if value >= beta:
                if value > node.value:
                    node.value = value
                finish(node)
                return
            assert node.child_positions is not None
            positions = list(node.child_positions[node.next_child :])
            if not positions:
                if value > node.value:
                    node.value = value
                finish(node)
                return
            payload = (
                "refute",
                problem.game,
                positions,
                problem.depth - node.ply - 1,
                max(0, problem.sort_below_root - node.ply - 1),
                value,
                beta,
            )
        else:
            hit = coord_probe(node, alpha, beta)
            if hit is not None:
                counters["tt_coord_hits"] += 1
                if hit > node.value:
                    node.value = hit
                finish(node)
                return
            payload = ("eval", subproblem(problem, node.position, node.ply), alpha, beta)
        future = executor_pool.submit(_run_task, payload)
        counters["tasks_submitted"] += 1
        pending[future] = _Pending(node, payload[0], time.perf_counter())
        idle.record(time.perf_counter(), +1)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(
                _obs.EV_TASK_SUBMIT, task=-1, path=node_path(node), kind=str(payload[0])
            )

    def process_primary(node: PNode) -> None:
        """Table 1 node generation, mirroring the simulator's worker."""
        if node.done or ctx.has_finished_ancestor(node):
            ctx._bump("stale_discards")
            return
        if ctx.is_cut_off(node):
            _, beta = ctx.window(node)
            if beta > node.value:
                node.value = beta
            ctx._bump("cutoff_discards")
            finish(node)
            return
        alpha, beta = ctx.window(node)
        ctx.expand_positions(node, coord_stats)
        if node.is_leaf:
            cached: Optional[float] = None
            if shared_eval is not None:
                cached = shared_eval.probe(hash_key(problem.game, node.position))
                coord_stats.on_eval_probe(cost_model, hit=cached is not None)
            if cached is not None:
                coord_stats.note_leaf(node.path)
                node.value = cached
            else:
                coord_stats.on_leaf(node.path, cost_model)
                node.value = problem.game.evaluate(node.position)
                if shared_eval is not None:
                    coord_stats.on_eval_store(cost_model)
                    shared_eval.store(hash_key(problem.game, node.position), node.value)
            if shared_tt is not None:
                coord_stats.on_tt_store(cost_model)
                shared_tt.store(
                    hash_key(problem.game, node.position),
                    TTEntry(node.value, problem.depth - node.ply, Bound.EXACT, None),
                )
            finish(node)
            return
        if node.ntype in (E_NODE, R_NODE) and node.ply >= config.serial_depth:
            submit(node, alpha, beta)
            return
        pushes: list[tuple[str, PNode]] = []
        if node.ntype == E_NODE:
            assert node.children is not None
            for index in range(node.n_children):
                if node.children[index] is None:
                    pushes.append(("primary", ctx.make_child(node, index, UNDECIDED)))
            node.next_child = node.n_children
        elif node.ntype == UNDECIDED:
            if node.next_child == 0:
                pushes.append(("primary", ctx.make_child(node, 0, E_NODE)))
                node.next_child = 1
        else:  # R_NODE above serial depth
            if node.next_child < node.n_children:
                ntype = E_NODE if node.next_child == 0 else R_NODE
                pushes.append(("primary", ctx.make_child(node, node.next_child, ntype)))
                node.next_child += 1
        publish(pushes)

    def process_speculative(node: PNode) -> None:
        pushes: list[tuple[str, PNode]] = []
        node.on_spec = False
        if (
            not node.done
            and not ctx.has_finished_ancestor(node)
            and not ctx.is_cut_off(node)
            and ctx._active_e_children(node) < config.max_e_children
        ):
            if ctx.select_e_child(node, pushes, mandatory=False):
                ctx.maybe_push_spec(node, pushes)
        else:
            ctx._bump("stale_discards")
        publish(pushes)

    def apply_result(record: _Pending, outcome: _TaskOutcome) -> None:
        nonlocal busy_applied, busy_wasted
        _, value, packed, t_start, t_end, worker_pid, children_done, blob = outcome
        received_at = time.perf_counter()
        idle.record(received_at, -1)
        duration = max(0.0, t_end - t_start)
        merged_workers.merge(_unpack_stats(packed))
        node = record.node
        index = worker_index(worker_pid)
        if traced:
            merge_blob(index, blob)
            estimators.setdefault(index, _live.OffsetEstimator()).observe(
                record.submitted_at, t_start, t_end, received_at
            )
        split = per_worker.setdefault(
            index, {"pid": float(worker_pid), "applied": 0.0, "wasted": 0.0}
        )
        moot = node.done or ctx.has_finished_ancestor(node)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(
                _obs.EV_TASK_RESULT,
                task=-1,
                path=node_path(node),
                applied=not moot,
                duration=duration,
                worker=index,
            )
        if moot:
            busy_wasted += duration
            split["wasted"] += duration
            counters["tasks_discarded"] += 1
            ctx._bump("stale_discards")
            return
        busy_applied += duration
        split["applied"] += duration
        counters["tasks_applied"] += 1
        if record.kind == "refute":
            node.next_child += children_done
        if value > node.value:
            node.value = value
        finish(node)

    def drain(block: bool) -> None:
        if not pending:
            return
        if block:
            # The coordinator is starved of heap work here — record the
            # wait as a span so the merged timeline shows *why* workers
            # were the bottleneck at that instant.
            token = coord_ring.begin() if coord_ring is not None else -1.0
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            if coord_ring is not None:
                coord_ring.end("heap", "wait", token)
            if not done:
                raise SimulationError(
                    f"multiproc ER wedged: no task completed in {timeout:.0f}s"
                )
        else:
            done = {future for future in pending if future.done()}
        for future in done:
            record = pending.pop(future)
            error = future.exception()
            if error is not None:
                raise SimulationError(f"worker process failed: {error!r}") from error
            apply_result(record, future.result())

    try:
        while not ctx.done:
            drain(block=False)
            if ctx.done:
                break
            node, from_spec = ctx.pop_work()
            if node is None:
                if not pending:
                    raise SimulationError(
                        "multiproc ER deadlocked: empty heap with no tasks in flight"
                    )
                drain(block=True)
                continue
            if from_spec:
                process_speculative(node)
            else:
                process_primary(node)
        wall = time.perf_counter() - start
        idle.record(time.perf_counter(), 0)
        counters["tasks_orphaned"] = len(pending)
        for future in pending:
            future.cancel()
        if traced and own_pool:
            # Drain-on-exit flush: spans recorded after each worker's
            # last shipped result (orphaned tasks, trailing cache
            # probes) would otherwise be lost.  Over-submit so every
            # pool process likely runs at least one; duplicates drain
            # empty.  Best effort — a dead worker just keeps its tail.
            flushes = [executor_pool.submit(_flush_trace) for _ in range(2 * n_workers)]
            for flush_future in flushes:
                try:
                    flush_pid, flush_blob = flush_future.result(timeout=timeout)
                except Exception:  # noqa: BLE001 - flush is best-effort
                    continue
                merge_blob(worker_index(flush_pid), flush_blob)
    finally:
        _live.RING = prev_ring
        if own_pool:
            executor_pool.shutdown(wait=True, cancel_futures=True)
        if caches is not None:
            # Workers have exited (shutdown waited); the coordinator both
            # closes its mappings and destroys the segments.  Persistent
            # pools skip this — their segments stay warm for the next
            # search and are torn down by the pool's own close().
            tail_counters = caches.teardown()

    if not ctx.done:
        raise SimulationError("multiproc ER finished without combining the root")

    merged = SearchStats()
    merged.merge(coord_stats)
    merged.merge(merged_workers)
    extras: dict[str, Any] = dict(ctx.counters)
    extras.update(counters)
    # Coordinator-side table/cache counters only; worker probe/store
    # totals are process-local and arrive through the merged stats
    # instead.  (Empty for persistent pools, whose cumulative segment
    # counters belong to the pool, not to any one search.)
    extras.update(tail_counters)
    live_trace: Optional[_live.LiveTrace] = None
    if traced and coord_ring is not None:
        spans_by_worker: dict[int, list[_live.SpanRec]] = dict(worker_spans)
        spans_by_worker[_live.COORDINATOR] = coord_ring.drain()
        coord_dropped, coord_cost = coord_ring.snapshot_counters()
        offsets = {index: est.offset for index, est in estimators.items()}
        pids = {index: pid for pid, index in pid_index.items()}
        pids[_live.COORDINATOR] = os.getpid()
        live_trace = _live.LiveTrace(
            mode=trace,
            spans=_live.merge_spans(spans_by_worker, offsets),
            pids=pids,
            dropped={**worker_dropped, _live.COORDINATOR: coord_dropped},
            offsets=offsets,
            self_cost_seconds=sum(worker_self_cost.values()) + coord_cost,
        )
    busy = busy_applied + busy_wasted
    starvation = min(idle.starved_seconds, max(0.0, n_workers * wall - busy))
    interference = max(0.0, n_workers * wall - busy - starvation)
    return MultiprocResult(
        value=ctx.root.value,
        n_workers=n_workers,
        wall_time=wall,
        stats=merged,
        extras=extras,
        busy_applied_seconds=busy_applied,
        busy_wasted_seconds=busy_wasted,
        starvation_seconds=starvation,
        interference_seconds=interference,
        per_worker=per_worker,
        trace=live_trace,
    )


# ---------------------------------------------------------------------------
# Scaling study helpers (shared by the CLI and the benchmark suite).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count of a wall-clock scaling run."""

    n_workers: int
    wall_time: float
    speedup: float
    efficiency: float
    result: MultiprocResult


def measure_serial_seconds(problem: SearchProblem, *, repeats: int = 2) -> float:
    """Best-of-``repeats`` wall-clock seconds of serial ER on ``problem``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        er_search(problem)
        best = min(best, time.perf_counter() - t0)
    return best


def scaling_run(
    problem: SearchProblem,
    counts: Sequence[int],
    *,
    config: Optional[ERConfig] = None,
    serial_seconds: Optional[float] = None,
    start_method: Optional[str] = None,
    tt_mode: str = "off",
    eval_cache_mode: str = "off",
    batch_eval: bool = False,
    trace: str = _live.TRACE_OFF,
) -> tuple[float, list[ScalingPoint]]:
    """Serial baseline plus one multiproc run per worker count."""
    if serial_seconds is None:
        serial_seconds = measure_serial_seconds(problem)
    points: list[ScalingPoint] = []
    for count in counts:
        result = multiproc_er(
            problem, count, config=config, start_method=start_method, tt_mode=tt_mode,
            eval_cache_mode=eval_cache_mode, batch_eval=batch_eval, trace=trace,
        )
        points.append(
            ScalingPoint(
                n_workers=count,
                wall_time=result.wall_time,
                speedup=result.speedup(serial_seconds),
                efficiency=result.efficiency(serial_seconds),
                result=result,
            )
        )
    return serial_seconds, points


def format_scaling_table(
    tree_name: str, serial_seconds: float, points: Sequence[ScalingPoint]
) -> str:
    """Render a scaling run in the fig10-13 results-file format."""
    header = "tree  serial-ER-s  " + "".join(
        f"P={p.n_workers:<6d}" for p in points
    )
    row = f"{tree_name:<4s}  {serial_seconds:11.3f}  " + "".join(
        f"{p.efficiency:7.3f}" for p in points
    )
    best = max(points, key=lambda p: p.speedup)
    summary = (
        f"{tree_name}: speedup {best.speedup:.1f} at P={best.n_workers} "
        f"(efficiency {best.efficiency:.2f}; best serial: er)"
    )
    losses = "\n".join(
        f"{tree_name} P={p.n_workers}: wall={p.wall_time:.3f}s "
        f"starvation={p.result.starvation_fraction:.3f} "
        f"interference={p.result.interference_fraction:.3f} "
        f"speculative={p.result.speculative_fraction:.3f}"
        for p in points
    )
    return "\n".join((header, row, summary, losses))
