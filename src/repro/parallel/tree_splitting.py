"""Fishburn's tree-splitting algorithm on a processor tree (Section 4.3).

Processors form a tree: interior processors are *masters* that hand the
children of their assigned game-tree node to their *slave* groups and
narrow the alpha-beta window as results return; leaf processors run
serial alpha-beta.  On a best-first-ordered game tree the algorithm's
efficiency is O(1/sqrt(k)) — the claim the baseline benchmark reproduces.

The simulation is a recursive fork/join schedule: a child's cost is
computed (by actually running the serial search) with the window that was
current when the child was *assigned*; when a master achieves a cutoff,
outstanding slave work is aborted and charged pro rata.  Window updates
reach a slave only between assignments, not mid-search — a conservative
but standard simplification (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, Position, SearchProblem, subproblem
from ..search.alphabeta import alphabeta
from ..search.stats import SearchStats
from ..sim.metrics import ProcessorMetrics, SimReport
from .base import ParallelResult


@dataclass
class _Outcome:
    """Result of simulating one subtree evaluation by a processor group."""

    value: float
    end: float
    busy: float


def processor_tree_height(n_processors: int, branching: int) -> int:
    """Height of the complete ``branching``-ary tree of ``n_processors``.

    Partial bottom levels count: 4 processors with branching 2 have
    height 2 (a root master, two slaves, one grandslave).
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    if branching < 2:
        raise SearchError("processor tree branching must be >= 2")
    height = 0
    filled = 1
    level = 1
    while filled < n_processors:
        level *= branching
        filled += level
        height += 1
    return height


def _group_sizes(k: int, branching: int) -> list[int]:
    """Split ``k - 1`` slave processors into at most ``branching`` groups."""
    slaves = k - 1
    n_groups = min(branching, slaves)
    base, extra = divmod(slaves, n_groups)
    return [base + (1 if i < extra else 0) for i in range(n_groups)]


class _Splitter:
    """Single-use recursive simulator for one tree-splitting run."""

    def __init__(self, problem: SearchProblem, branching: int, cost_model: CostModel):
        self.problem = problem
        self.branching = branching
        self.cost_model = cost_model
        self.stats = SearchStats()
        self.aborted_slave_runs = 0
        self.scout_researches = 0

    def _serial_leaf(self, position: Position, ply: int, alpha: float, beta: float, start: float) -> _Outcome:
        """A leaf processor: serial alpha-beta over the whole subtree."""
        sub = subproblem(self.problem, position, ply)
        local = SearchStats()
        result = alphabeta(sub, alpha, beta, cost_model=self.cost_model, stats=local)
        self.stats.merge(local)
        return _Outcome(value=result.value, end=start + local.cost, busy=local.cost)

    def evaluate(
        self, position: Position, ply: int, k: int, alpha: float, beta: float, start: float
    ) -> _Outcome:
        """Evaluate the subtree at ``position`` with a group of ``k`` processors."""
        children = (
            []
            if self.problem.is_horizon(ply)
            else list(self.problem.game.children(position))
        )
        if k <= 1 or not children:
            return self._serial_leaf(position, ply, alpha, beta, start)
        expand = self.stats.on_expand((), len(children), self.cost_model)
        distributed = self.distribute(
            children, ply + 1, k, alpha, beta, NEG_INF, start + expand
        )
        return _Outcome(distributed.value, distributed.end, distributed.busy + expand)

    def distribute(
        self,
        children: Sequence[Position],
        child_ply: int,
        k: int,
        alpha: float,
        beta: float,
        initial: float,
        start: float,
        minimal_window: bool = False,
    ) -> _Outcome:
        """Master loop: hand children to slave groups, narrowing the window.

        ``initial`` seeds the master's best value (pv-splitting passes the
        principal variation's value; plain tree-splitting passes -inf).

        With ``minimal_window`` (the Marsland & Popowich enhancement the
        paper's footnote 3 describes), every child is first verified with
        a zero-width scout window; only a child that unexpectedly fails
        high is re-searched with a real window.
        """
        sizes = _group_sizes(k, self.branching)
        free_at = [start] * len(sizes)
        # Queue entries: (child position, full_window?).
        queue: list[tuple[Position, bool]] = [
            (child, not minimal_window) for child in children
        ]
        # In-flight: (finish, group, start, outcome, child, full_window?)
        inflight: list[tuple[float, int, float, _Outcome, Position, bool]] = []
        best = initial
        busy = 0.0
        end = start

        def assign() -> None:
            while queue and len(inflight) < len(sizes):
                taken = {g for _, g, _, _, _, _ in inflight}
                group = min(
                    (g for g in range(len(sizes)) if g not in taken),
                    key=lambda g: free_at[g],
                )
                child, full = queue.pop(0)
                t0 = max(free_at[group], start)
                floor = max(alpha, best)
                ceiling = beta if full else min(beta, floor + 1.0)
                outcome = self.evaluate(
                    child, child_ply, sizes[group], -ceiling, -floor, t0
                )
                inflight.append((outcome.end, group, t0, outcome, child, full))

        assign()
        while inflight:
            inflight.sort(key=lambda item: item[0])
            finish, group, t0, outcome, child, full = inflight.pop(0)
            free_at[group] = finish
            end = max(end, finish)
            busy += outcome.busy
            value = -outcome.value
            if not full and max(alpha, best) < value < beta:
                # Scout probe failed high: this child matters after all —
                # verify it with the true window (front of the queue).
                self.scout_researches += 1
                queue.insert(0, (child, True))
            elif value > best:
                best = value
            if best >= beta:
                self.stats.on_cutoff()
                # Abort outstanding slaves; charge only elapsed work.
                for ofinish, ogroup, ot0, ooutcome, _, _ in inflight:
                    span = max(ofinish - ot0, 1e-12)
                    fraction = max(0.0, min(1.0, (finish - ot0) / span))
                    busy += ooutcome.busy * fraction
                    self.aborted_slave_runs += 1
                return _Outcome(best, finish, busy)
            assign()
        return _Outcome(best, end, busy)


def tree_splitting(
    problem: SearchProblem,
    n_processors: int,
    *,
    branching: int = 2,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelResult:
    """Simulate tree-splitting with ``n_processors`` in a processor tree.

    Returns the root value (equal to negmax's — checked by the tests)
    plus the simulated schedule.
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    splitter = _Splitter(problem, branching, cost_model)
    outcome = splitter.evaluate(
        problem.game.root(), 0, n_processors, NEG_INF, POS_INF, 0.0
    )
    report = _report_from_outcome(outcome, n_processors)
    return ParallelResult(
        value=outcome.value,
        n_processors=n_processors,
        report=report,
        stats=splitter.stats,
        algorithm="tree-split",
        extras={
            "branching": branching,
            "aborted_slave_runs": splitter.aborted_slave_runs,
            "tree_height": processor_tree_height(n_processors, branching),
        },
    )


def _report_from_outcome(outcome: _Outcome, n_processors: int) -> SimReport:
    """Spread aggregate busy time over the processor pool for reporting."""
    per_proc = outcome.busy / max(1, n_processors)
    processors = [
        ProcessorMetrics(busy=per_proc, finish_time=outcome.end)
        for _ in range(n_processors)
    ]
    return SimReport(makespan=outcome.end, processors=processors)
