"""Mandatory Work First — Akl, Barnard & Doran (paper Section 4.2).

MWF first searches, in parallel, the minimal tree of alpha-beta *without
deep cutoffs* (1-nodes and 2-nodes, Section 2.2's second rule set); only
then does it perform speculative work, and only in a restricted order:
the subtree under the i-th right child of a 2-node ``P`` may start only
after ``P``'s immediate left sibling is resolved and all earlier right
children of ``P`` are resolved, and it is then searched by *serial*
alpha-beta.

The claim this baseline reproduces (from Akl's simulations): speedup
rises quickly for the first few processors and plateaus near six — extra
processors only starve, because the speculative phases are chains.

Implementation: the critical skeleton is materialized up front (its
shape does not depend on values), phase-1 tasks are the critical leaves,
and speculative tasks unlock dynamically as the dependency rules allow.
Runs on the shared list scheduler with the common cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, Path, Position, SearchProblem, subproblem
from ..search.alphabeta import alphabeta
from ..search.stats import SearchStats
from .base import ParallelResult
from .schedule import ScheduledTask, list_schedule


@dataclass
class _MNode:
    """A node of the critical skeleton (types 1 and 2 only)."""

    position: Position
    path: Path
    ply: int
    ntype: int  # 1 or 2
    parent: Optional["_MNode"]
    index: int  # child index within the parent
    children_positions: list[Position] = field(default_factory=list)
    critical_children: list["_MNode"] = field(default_factory=list)
    value: float = NEG_INF
    resolved_children: int = 0  # children with final/refuted status
    resolved: bool = False  # exact value known, or refuted
    refuted: bool = False
    is_leaf: bool = False
    next_speculative: int = 0  # next right-child index to search (2-nodes)
    speculative_pending: bool = False


class _MWFRun:
    """Single-use task source driving one MWF search."""

    def __init__(self, problem: SearchProblem, cost_model: CostModel):
        self.problem = problem
        self.cost_model = cost_model
        self.stats = SearchStats()
        self.skeleton_cost = 0.0
        self.speculative_tasks = 0
        self.cancelled_tasks = 0
        self.root = self._build(problem.game.root(), (), 0, 1, None, 0)

    # -- skeleton construction (shape only; no values needed) --------------

    def _build(
        self,
        position: Position,
        path: Path,
        ply: int,
        ntype: int,
        parent: Optional[_MNode],
        index: int,
    ) -> _MNode:
        node = _MNode(position, path, ply, ntype, parent, index)
        children = (
            [] if self.problem.is_horizon(ply) else list(self.problem.game.children(position))
        )
        if not children:
            node.is_leaf = True
            return node
        self.skeleton_cost += self.stats.on_expand(path, len(children), self.cost_model)
        if self.problem.should_sort(ply):
            self.skeleton_cost += self.stats.on_ordering(len(children), self.cost_model)
            static = [self.problem.game.evaluate(c) for c in children]
            order = sorted(range(len(children)), key=static.__getitem__)
            children = [children[i] for i in order]
        node.children_positions = children
        if ntype == 1:
            node.critical_children.append(
                self._build(children[0], path + (0,), ply + 1, 1, node, 0)
            )
            for i in range(1, len(children)):
                node.critical_children.append(
                    self._build(children[i], path + (i,), ply + 1, 2, node, i)
                )
        else:  # type 2: only the first child is critical (a 1-node)
            node.critical_children.append(
                self._build(children[0], path + (0,), ply + 1, 1, node, 0)
            )
        return node

    # -- task construction --------------------------------------------------

    def initial_tasks(self) -> list[ScheduledTask]:
        tasks: list[ScheduledTask] = []
        self._collect_leaf_tasks(self.root, tasks)
        return tasks

    def _collect_leaf_tasks(self, node: _MNode, out: list[ScheduledTask]) -> None:
        if node.is_leaf:
            out.append(self._leaf_task(node))
            return
        for child in node.critical_children:
            self._collect_leaf_tasks(child, out)

    def _leaf_task(self, node: _MNode) -> ScheduledTask:
        def cost_fn() -> tuple[float, Any]:
            charge = self.stats.on_leaf(node.path, self.cost_model)
            return charge, self.problem.game.evaluate(node.position)

        # Phase 1 (mandatory) work runs ahead of speculative work.
        return ScheduledTask(key=("leaf", node.path), cost_fn=cost_fn, priority=(0, node.ply))

    def _speculative_task(self, parent: _MNode, index: int) -> ScheduledTask:
        position = parent.children_positions[index]

        def cost_fn() -> tuple[float, Any]:
            if parent.refuted or parent.resolved:
                return 0.0, None  # invalidated before start
            alpha, beta = self._child_window(parent)
            sub = subproblem(self.problem, position, parent.ply + 1)
            local = SearchStats()
            result = alphabeta(sub, alpha, beta, cost_model=self.cost_model, stats=local)
            self.stats.merge(local)
            return local.cost, result.value

        self.speculative_tasks += 1
        return ScheduledTask(
            key=("spec", parent.path, index), cost_fn=cost_fn, priority=(1, parent.ply, index)
        )

    def _child_window(self, parent: _MNode) -> tuple[float, float]:
        """Window for searching one more child of 2-node ``parent``.

        MWF is defined for alpha-beta *without deep cutoffs*, so a child
        inherits only the bound derived from its parent's current value:
        the child's search may stop once it proves a value at or above
        ``-parent.value`` (which refutes it as a candidate best child).
        """
        floor = parent.value
        beta = -floor if floor != NEG_INF else POS_INF
        return (NEG_INF, beta)

    # -- completion handling -------------------------------------------------

    def on_complete(self, task: ScheduledTask, payload: Any, now: float) -> list[ScheduledTask]:
        kind = task.key[0]
        new_tasks: list[ScheduledTask] = []
        if kind == "leaf":
            path = task.key[1]
            node = self._find(path)
            node.value = payload
            node.resolved = True
            self._propagate(node, new_tasks)
        elif kind == "spec":
            _, parent_path, index = task.key
            parent = self._find(parent_path)
            if payload is None:  # invalidated before it started
                self.cancelled_tasks += 1
                return new_tasks
            if -payload > parent.value:
                parent.value = -payload
            parent.speculative_pending = False
            parent.next_speculative = index + 1
            self._advance_two_node(parent, new_tasks)
        return new_tasks

    def _find(self, path: Path) -> _MNode:
        node = self.root
        for index in path:
            for child in node.critical_children:
                if child.index == index:
                    node = child
                    break
            else:
                raise SearchError(f"no skeleton node at {path!r}")
        return node

    def _refutation_bound(self, node: _MNode) -> float:
        """``node`` is refuted once its value reaches this bound."""
        if node.parent is None or node.parent.value == NEG_INF:
            return POS_INF
        return -node.parent.value

    def _propagate(self, node: _MNode, new_tasks: list[ScheduledTask]) -> None:
        """A node became resolved: update ancestors, unlock work."""
        parent = node.parent
        if parent is None:
            return
        parent.resolved_children += 1
        if node.index == 0 or parent.ntype == 1:
            # Critical child: fold its exact (or refuted) value in.
            if not node.refuted and -node.value > parent.value:
                parent.value = -node.value
        if parent.ntype == 2:
            self._advance_two_node(parent, new_tasks)
        else:
            self._advance_one_node(parent, new_tasks)

    def _advance_one_node(self, parent: _MNode, new_tasks: list[ScheduledTask]) -> None:
        """1-nodes resolve when every (critical) child has resolved."""
        if parent.resolved and not parent.refuted:
            return
        if parent.resolved_children == len(parent.critical_children):
            parent.resolved = True
            self._propagate(parent, new_tasks)
        else:
            # A tightening bound may refute pending 2-node children and
            # unlock their right siblings' readiness conditions.
            for child in parent.critical_children:
                if child.ntype == 2 and not child.resolved:
                    self._advance_two_node(child, new_tasks)

    def _advance_two_node(self, node: _MNode, new_tasks: list[ScheduledTask]) -> None:
        """Refute or extend a 2-node per the MWF ordering rules."""
        if node.resolved or node.is_leaf or node.speculative_pending:
            return
        if not node.critical_children or not node.critical_children[0].resolved:
            return  # phase 1 below this node is not finished yet
        if node.next_speculative == 0:
            node.next_speculative = 1
        if node.value >= self._refutation_bound(node):
            node.refuted = True
            node.resolved = True
            self._propagate(node, new_tasks)
            return
        if node.next_speculative >= len(node.children_positions):
            node.resolved = True  # refutation failed: value is exact
            self._propagate(node, new_tasks)
            return
        # Readiness: the left sibling must be resolved first.  Per the
        # paper's Figure 4 (nodes D and E start their speculative phases
        # simultaneously) "P's left sibling" is the *leftmost* sibling —
        # the type-1 first child whose exact value makes refutation
        # meaningful — not the immediately preceding one.
        if not self._left_sibling_resolved(node):
            return
        node.speculative_pending = True
        new_tasks.append(self._speculative_task(node, node.next_speculative))

    def _left_sibling_resolved(self, node: _MNode) -> bool:
        parent = node.parent
        if parent is None or node.index == 0:
            return True
        for sibling in parent.critical_children:
            if sibling.index == 0:
                return sibling.resolved
        return True


def mwf(
    problem: SearchProblem,
    n_processors: int,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelResult:
    """Simulate Mandatory Work First on ``n_processors``.

    The returned value equals negmax's (checked by tests): MWF is exact
    because every non-critical subtree is either searched or legitimately
    refuted.
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    run = _MWFRun(problem, cost_model)
    report = list_schedule(n_processors, run)
    if not run.root.resolved:
        raise SearchError("MWF terminated without resolving the root")
    return ParallelResult(
        value=run.root.value,
        n_processors=n_processors,
        report=report,
        stats=run.stats,
        algorithm="mwf",
        extras={
            "speculative_tasks": run.speculative_tasks,
            "cancelled_tasks": run.cancelled_tasks,
        },
    )
