"""Marsland's principal-variation splitting (paper Section 4.4).

For strongly ordered trees: follow the candidate principal variation (the
leftmost branch) down until the remaining game-tree depth equals the
processor-tree height, evaluate that node with tree-splitting, then back
the value up — at each level the remaining siblings are distributed over
the processor tree *with the PV value already in hand*, so almost every
sibling search runs with a cutting bound.

The paper's observation, reproduced by the baseline benchmark: speculative
loss is small (with 4 processors only ~5% extra nodes) but efficiency
decays quickly with the processor count because the PV descent is serial
and sibling refutations rarely have enough parallelism to go around.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, Position, SearchProblem
from .base import ParallelResult
from .tree_splitting import (
    _report_from_outcome,
    _Outcome,
    _Splitter,
    processor_tree_height,
)


class _PVSplitter(_Splitter):
    """Adds the PV descent on top of the tree-splitting machinery."""

    def __init__(
        self,
        problem: SearchProblem,
        branching: int,
        cost_model: CostModel,
        split_height: int,
        minimal_window: bool = False,
    ):
        super().__init__(problem, branching, cost_model)
        self.split_height = split_height
        self.minimal_window = minimal_window

    def pv_evaluate(
        self, position: Position, ply: int, k: int, alpha: float, beta: float, start: float
    ) -> _Outcome:
        remaining = self.problem.depth - ply
        if remaining <= self.split_height or k <= 1:
            return self.evaluate(position, ply, k, alpha, beta, start)
        game = self.problem.game
        children = [] if self.problem.is_horizon(ply) else list(game.children(position))
        if not children:
            return self._serial_leaf(position, ply, alpha, beta, start)
        expand = self.stats.on_expand((), len(children), self.cost_model)
        now = start + expand
        if self.problem.should_sort(ply):
            expand_order = self.stats.on_ordering(len(children), self.cost_model)
            static = [game.evaluate(child) for child in children]
            order = sorted(range(len(children)), key=static.__getitem__)
            children = [children[i] for i in order]
            now += expand_order
        # Serial PV descent: the whole processor group follows child 0.
        first = self.pv_evaluate(children[0], ply + 1, k, -beta, -max(alpha, NEG_INF), now)
        best = -first.value
        busy = expand + first.busy
        now = first.end
        if best >= beta:
            self.stats.on_cutoff()
            return _Outcome(best, now, busy)
        # Remaining siblings distributed over the processor tree, all with
        # the PV bound in hand (optionally as minimal-window scout probes —
        # the Marsland & Popowich enhancement of the paper's footnote 3).
        rest = self.distribute(
            children[1:], ply + 1, k, alpha, beta, best, now,
            minimal_window=self.minimal_window,
        )
        return _Outcome(rest.value, rest.end, busy + rest.busy)


def pv_splitting(
    problem: SearchProblem,
    n_processors: int,
    *,
    branching: int = 2,
    split_height: Optional[int] = None,
    minimal_window: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelResult:
    """Simulate pv-splitting.

    Args:
        split_height: remaining depth at which the PV descent hands over
            to tree-splitting; defaults to the processor-tree height as in
            the paper.
        minimal_window: verify non-PV siblings with zero-width scout
            windows and re-search only fail-highs (Marsland & Popowich's
            enhanced variant, the paper's footnote 3).
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    if split_height is None:
        split_height = max(1, processor_tree_height(n_processors, branching))
    splitter = _PVSplitter(problem, branching, cost_model, split_height, minimal_window)
    outcome = splitter.pv_evaluate(
        problem.game.root(), 0, n_processors, NEG_INF, POS_INF, 0.0
    )
    report = _report_from_outcome(outcome, n_processors)
    return ParallelResult(
        value=outcome.value,
        n_processors=n_processors,
        report=report,
        stats=splitter.stats,
        algorithm="pv-split",
        extras={
            "branching": branching,
            "split_height": split_height,
            "aborted_slave_runs": splitter.aborted_slave_runs,
            "minimal_window": minimal_window,
            "scout_researches": splitter.scout_researches,
        },
    )
