"""Greedy list-scheduling simulator for fork/join baseline algorithms.

The baseline algorithms of the paper's Section 4 (aspiration, MWF,
tree-splitting, pv-splitting) are fork/join computations: tasks become
ready when their dependencies complete, and any idle processor may take
any ready task.  This module simulates that schedule exactly — charging
task costs from the same :class:`~repro.costmodel.CostModel` as every
other algorithm — without the full discrete-event machinery parallel ER
needs (ER's problem-heap has shared mutable queues and lock contention;
these baselines do not).

A task's cost may depend on *when* it starts (its alpha-beta window
tightens as siblings complete), so costs are computed lazily by
``cost_fn`` at assignment time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

from ..errors import SimulationError
from ..sim.metrics import ProcessorMetrics, SimReport


@dataclass
class ScheduledTask:
    """One unit of schedulable work.

    Attributes:
        key: caller-defined identity (used in traces and debugging).
        cost_fn: called when a processor picks the task up; returns
            ``(cost, payload)`` where payload is passed to ``on_complete``.
            Returning a cost of 0 models a task invalidated before start.
        priority: lower tuples run first among simultaneously-ready tasks.
        cancelled: set by the source to drop the task before it starts.
    """

    key: Any
    cost_fn: Callable[[], tuple[float, Any]]
    priority: tuple = ()
    cancelled: bool = False


class TaskSource(Protocol):
    """Supplies the initial tasks and reacts to completions."""

    def initial_tasks(self) -> list[ScheduledTask]: ...

    def on_complete(self, task: ScheduledTask, payload: Any, now: float) -> list[ScheduledTask]:
        """Record a completion; return newly-ready tasks."""
        ...


def list_schedule(n_processors: int, source: TaskSource) -> SimReport:
    """Run the source's task graph on ``n_processors`` greedy processors.

    Deterministic: ties in readiness break by insertion order, processors
    by index.  Returns per-processor busy time and the makespan.
    """
    if n_processors < 1:
        raise SimulationError("need at least one processor")
    procs = [ProcessorMetrics() for _ in range(n_processors)]
    idle: list[int] = list(range(n_processors - 1, -1, -1))  # pop() -> proc 0 first
    ready: list[tuple[tuple, int, ScheduledTask]] = []
    events: list[tuple[float, int, int, ScheduledTask, Any]] = []
    seq = 0

    def push_ready(tasks: list[ScheduledTask]) -> None:
        nonlocal seq
        for task in tasks:
            seq += 1
            heapq.heappush(ready, (task.priority, seq, task))

    push_ready(source.initial_tasks())
    now = 0.0

    while ready or events:
        # Hand ready tasks to idle processors at the current time.
        while ready and idle:
            _, _, task = heapq.heappop(ready)
            if task.cancelled:
                continue
            pid = idle.pop()
            cost, payload = task.cost_fn()
            procs[pid].busy += cost
            seq += 1
            heapq.heappush(events, (now + cost, seq, pid, task, payload))
        if not events:
            if ready:
                raise SimulationError("ready tasks but no processor ever frees")
            break
        finish, _, pid, task, payload = heapq.heappop(events)
        now = finish
        procs[pid].finish_time = max(procs[pid].finish_time, finish)
        idle.append(pid)
        push_ready(source.on_complete(task, payload, now))

    makespan = max((p.finish_time for p in procs), default=0.0)
    for p in procs:
        # Time between a processor's last completion and the makespan is
        # starvation by definition (paper Section 3.1).
        p.starve_wait = makespan - p.finish_time if p.busy > 0 else makespan
    return SimReport(makespan=makespan, processors=procs)
