"""Real-thread execution of the parallel ER problem heap.

The simulated engine answers the paper's *performance* questions; this
module answers the *correctness-under-concurrency* one: the very same
worker generators that run on the discrete-event engine are driven here
by OS threads, with each simulation op interpreted against real
synchronization primitives:

* ``Compute``      -> nothing (the Python work already happened)
* ``Acquire/Release`` -> a real ``threading.Lock``
* ``WaitWork``     -> a ``threading.Condition`` wait (with a short timeout
  so a lost wakeup can never wedge the run)

Because CPython's GIL serializes bytecode, no speedup is expected or
measured — this exists to demonstrate that the heap/tree protocol is
correct under genuinely nondeterministic interleavings, which the test
suite exercises with many thread counts and seeds.

Two verification features mirror the simulator's (DESIGN.md
"Verification"):

* the driver records every nested acquisition in a shared
  :class:`~repro.sim.locks.LockOrderGraph` (under its own meta-lock) and
  raises :class:`~repro.errors.LockOrderError` *before* taking a lock
  that inverts an observed order — failing fast beats deadlocking a test
  run;
* with a :mod:`repro.verify.trace` recorder installed, the driver emits
  acquire/release events attributed to the OS thread id — ``ACQUIRE``
  after the real acquire and ``RELEASE`` before the real release, so the
  recorded critical sections nest properly in the linearized event list
  (``list.append`` is atomic under the GIL).  Wait/wake events are *not*
  emitted: a timed-out ``Condition.wait`` resumes without any notify, so
  a wake edge would claim happens-before ordering that never happened;
  all real data handoffs are ordered by the locks.  A ``task-init``
  notify/wake pair orders each worker's first step after the setup code
  that built the shared state.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Generator, Optional

from ..cache.striped import AnyTT
from ..core.er_parallel import ERConfig, _Context, _worker
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import LockOrderError, SearchError, SimulationError
from ..eval.cache import AnyEvalCache
from ..games.base import SearchProblem
from ..obs import live as _live
from ..search.stats import SearchStats
from ..sim.locks import LockOrderGraph, SimLock
from ..sim.ops import Acquire, Compute, Op, Release, WaitWork
from ..verify import trace as _trace

#: Upper bound on a single WaitWork nap; keeps lost wakeups harmless.
_WAIT_SLICE_SECONDS = 0.002


@dataclass(frozen=True)
class ThreadTiming:
    """Measured wall-clock decomposition of one worker thread's life.

    ``busy`` is the residual of the thread's lifetime after lock waits
    (interference) and work waits (starvation) — under the GIL it is
    bytecode-interleaved "runnable" time, not parallel CPU time.
    """

    busy: float
    lock_wait: float
    starve_wait: float
    wall: float


@dataclass(frozen=True)
class ThreadedRun:
    """Full observable outcome of one real-thread run.

    ``trace`` is the merged span timeline when the run was traced
    (``trace="sampled"``/``"full"``), else ``None`` — same shape as the
    multiproc backend's, with zero clock offsets because every thread
    shares the process clock.
    """

    value: float
    stats: SearchStats
    wall_time: float
    timings: tuple[ThreadTiming, ...]
    counters: dict[str, int]
    trace: Optional[_live.LiveTrace] = None


class _ThreadedDriver:
    """Interprets one worker generator against real primitives."""

    def __init__(self, ctx: _Context, deadline: float, trace_mode: str = _live.TRACE_OFF) -> None:
        self.ctx = ctx
        self.deadline = deadline
        self.trace_mode = trace_mode
        # Lazily populated: the distributed-heap variant creates one lock
        # per processor.  dict.setdefault is atomic under the GIL, so two
        # threads racing to create the same entry agree on the winner.
        self.locks: dict[SimLock, threading.Lock] = {}
        self.condition = threading.Condition()
        self.errors: list[BaseException] = []
        #: Per-worker timing, keyed by worker id; each thread writes a
        #: distinct key, so GIL-atomic dict stores need no extra lock.
        self.timings: dict[int, ThreadTiming] = {}
        #: Per-worker span ring (traced runs only) — one ring per thread,
        #: written by that thread alone, so no synchronization is needed;
        #: GIL-atomic dict stores publish them like ``timings``.
        self.rings: dict[int, _live.SpanRing] = {}
        self._order = LockOrderGraph()
        self._order_lock = threading.Lock()

    def _real_lock(self, sim_lock: SimLock) -> threading.Lock:
        return self.locks.setdefault(sim_lock, threading.Lock())

    def wake_all(self) -> None:
        with self.condition:
            self.condition.notify_all()

    def _check_order(self, held: list[str], acquiring: str) -> None:
        with self._order_lock:
            conflict = self._order.record(held, acquiring)
        if conflict is not None:
            raise LockOrderError(
                f"thread {threading.current_thread().name} acquired "
                f"{acquiring!r} while holding {conflict!r}, but the opposite "
                "nesting also occurs"
            )

    def drive(self, worker: Generator[Op, None, None], wid: int = 0) -> None:
        held: list[str] = []
        lock_wait = 0.0
        starve_wait = 0.0
        ring = _live.ring_for_mode(self.trace_mode)
        if ring is not None:
            self.rings[wid] = ring
        t_start = time.perf_counter()
        if _trace.CURRENT is not None:
            _trace.on_wake("task-init")
        try:
            for op in worker:
                if isinstance(op, Compute):
                    continue
                if isinstance(op, Acquire):
                    self._check_order(held, op.lock.name)
                    t0 = time.perf_counter()
                    self._real_lock(op.lock).acquire()
                    t1 = time.perf_counter()
                    lock_wait += t1 - t0
                    if ring is not None:
                        ring.record("lock", op.lock.name, t0, t1)
                    held.append(op.lock.name)
                    if _trace.CURRENT is not None:
                        _trace.on_acquire(op.lock.name)
                elif isinstance(op, Release):
                    lock = self._real_lock(op.lock)
                    if _trace.CURRENT is not None:
                        _trace.on_release(op.lock.name)
                    held.remove(op.lock.name)
                    lock.release()
                    # Work may have been published: give sleepers a poke.
                    self.wake_all()
                elif isinstance(op, WaitWork):
                    t0 = time.perf_counter()
                    with self.condition:
                        if op.signal.version == op.seen_version and not self.ctx.done:
                            self.condition.wait(timeout=_WAIT_SLICE_SECONDS)
                    t1 = time.perf_counter()
                    starve_wait += t1 - t0
                    if ring is not None:
                        ring.record("heap", "wait-work", t0, t1)
                else:  # pragma: no cover - protocol guard
                    raise SimulationError(f"threaded driver cannot run {op!r}")
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            self.errors.append(exc)
            self.ctx.done = True
            while held:  # do not wedge peers on an abandoned lock
                name = held.pop()
                for sim_lock, real in self.locks.items():
                    if sim_lock.name == name:
                        real.release()
                        break
            self.wake_all()
        finally:
            t_end = time.perf_counter()
            wall = t_end - t_start
            if ring is not None:
                ring.record("task", "drive", t_start, t_end)
            self.timings[wid] = ThreadTiming(
                busy=max(0.0, wall - lock_wait - starve_wait),
                lock_wait=lock_wait,
                starve_wait=starve_wait,
                wall=wall,
            )


def threaded_er_observed(
    problem: SearchProblem,
    n_threads: int,
    *,
    config: Optional[ERConfig] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    timeout: float = 60.0,
    tt: Optional[AnyTT] = None,
    eval_cache: Optional[AnyEvalCache] = None,
    batch_eval: bool = False,
    trace: str = _live.TRACE_OFF,
) -> ThreadedRun:
    """Run parallel ER's problem-heap protocol on real OS threads.

    ``trace`` (``off``/``sampled``/``full``) attaches one bounded span
    ring per thread recording lock waits, work waits, and the thread's
    whole drive; the merged timeline lands on ``run.trace``.  Threads
    share one clock, so no offset calibration is involved.

    ``tt`` attaches a transposition table (:func:`repro.cache.make_tt`);
    the worker generators' table ops yield ``Acquire``/``Release`` on the
    per-stripe SimLocks, which this driver maps to real locks like any
    other, while the serial subtrees call the table's thread-safe
    ``probe``/``store`` directly.  ``eval_cache`` and ``batch_eval``
    attach the batched static-evaluation subsystem the same way: the
    parallel leaf path probes/stores the cache through its SimLock ops,
    and serial subtrees go through an :class:`~repro.eval.Evaluator`
    whose cache calls are internally thread-safe.

    Returns:
        A :class:`ThreadedRun` with the root value, merged stats, total
        wall time, per-thread busy/lock/starve timings, and the protocol
        counters — the shape :func:`repro.obs.snapshot.snapshot_from_threaded`
        consumes.  The value must equal the serial result — asserted
        across the test suite under many interleavings.

    Raises:
        SimulationError: if a worker thread raised or the run timed out.
        LockOrderError: if workers nested two locks in opposite orders.
    """
    if n_threads < 1:
        raise SearchError("need at least one thread")
    if config is None:
        config = ERConfig()
    ctx = _Context(
        problem, cost_model, config, trace=False, n_processors=n_threads,
        tt=tt, eval_cache=eval_cache, batch_eval=batch_eval,
    )
    if trace not in _live.TRACE_MODES:
        raise SearchError(
            f"unknown trace mode {trace!r}; expected one of {_live.TRACE_MODES}"
        )
    driver = _ThreadedDriver(ctx, timeout, trace)
    stats = [SearchStats() for _ in range(n_threads)]
    if _trace.CURRENT is not None:
        # Happens-before edge from the setup above (root pushed, queues
        # built) to every worker's first step; each drive() emits the
        # matching wake.
        _trace.on_notify("task-init", 0)
    threads = [
        threading.Thread(
            target=driver.drive,
            args=(_worker(ctx, stats[i], pid=i), i),
            name=f"er-worker-{i}",
            daemon=True,
        )
        for i in range(n_threads)
    ]
    t_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        if thread.is_alive():
            ctx.done = True
            driver.wake_all()
            raise SimulationError("threaded ER timed out")
    wall_time = time.perf_counter() - t_start
    if driver.errors:
        raise SimulationError(f"worker thread failed: {driver.errors[0]!r}") from driver.errors[0]
    if not ctx.done:
        raise SimulationError("threaded ER finished without combining the root")
    merged = SearchStats()
    for s in stats:
        merged.merge(s)
    timings = tuple(
        driver.timings.get(i, ThreadTiming(0.0, 0.0, 0.0, 0.0)) for i in range(n_threads)
    )
    counters = dict(ctx.counters)
    if tt is not None:
        counters.update(tt.counter_snapshot())
    if eval_cache is not None:
        counters.update(eval_cache.counter_snapshot())
    live_trace: Optional[_live.LiveTrace] = None
    if trace != _live.TRACE_OFF:
        spans_by_worker = {wid: ring.drain() for wid, ring in driver.rings.items()}
        live_trace = _live.LiveTrace(
            mode=trace,
            spans=_live.merge_spans(spans_by_worker, {}),
            pids={wid: os.getpid() for wid in driver.rings},
            dropped={wid: ring.dropped for wid, ring in driver.rings.items()},
            offsets={},
            self_cost_seconds=sum(r.self_cost_seconds for r in driver.rings.values()),
        )
    return ThreadedRun(
        value=ctx.root.value,
        stats=merged,
        wall_time=wall_time,
        timings=timings,
        counters=counters,
        trace=live_trace,
    )


def threaded_er(
    problem: SearchProblem,
    n_threads: int,
    *,
    config: Optional[ERConfig] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    timeout: float = 60.0,
    tt: Optional[AnyTT] = None,
    eval_cache: Optional[AnyEvalCache] = None,
    batch_eval: bool = False,
) -> tuple[float, SearchStats]:
    """Compatibility wrapper over :func:`threaded_er_observed`.

    Returns:
        ``(root_value, merged_stats)``.
    """
    run = threaded_er_observed(
        problem, n_threads, config=config, cost_model=cost_model, timeout=timeout,
        tt=tt, eval_cache=eval_cache, batch_eval=batch_eval,
    )
    return run.value, run.stats
