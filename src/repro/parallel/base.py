"""Common result type and helpers for all parallel search algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..search.stats import SearchStats
from ..sim.metrics import SimReport


@dataclass(frozen=True)
class ParallelResult:
    """Outcome of one simulated parallel search run.

    Attributes:
        value: the root negmax value found.
        n_processors: how many simulated processors ran.
        report: timing report from the discrete-event engine.
        stats: merged work accounting across all processors.
        algorithm: short name for tables ("er", "mwf", "tree-split", ...).
        extras: algorithm-specific counters (speculative selections,
            aborted serial searches, phases, ...).
    """

    value: float
    n_processors: int
    report: SimReport
    stats: SearchStats
    algorithm: str
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def sim_time(self) -> float:
        """Simulated completion time (the makespan)."""
        return self.report.makespan

    def speedup(self, serial_time: float) -> float:
        """Fishburn's speedup: best serial time over parallel time."""
        if self.sim_time <= 0:
            return float("inf")
        return serial_time / self.sim_time

    def efficiency(self, serial_time: float) -> float:
        """Speedup divided by processor count (paper Section 3)."""
        return self.speedup(serial_time) / max(1, self.n_processors)
