"""Parallel game-tree search algorithms (the paper's Section 4 baselines
plus the problem-heap substrate shared with parallel ER)."""

from .aspiration import aspiration_windows, parallel_aspiration
from .base import ParallelResult
from .mwf import mwf
from .naive_split import naive_split
from .pv_splitting import pv_splitting
from .schedule import ScheduledTask, list_schedule
from .tree_splitting import processor_tree_height, tree_splitting

__all__ = [
    "ParallelResult",
    "parallel_aspiration",
    "aspiration_windows",
    "mwf",
    "naive_split",
    "pv_splitting",
    "tree_splitting",
    "processor_tree_height",
    "ScheduledTask",
    "list_schedule",
]
