"""Parallel game-tree search algorithms (the paper's Section 4 baselines
plus the problem-heap substrate shared with parallel ER)."""

from .aspiration import aspiration_windows, parallel_aspiration
from .base import ParallelResult
from .mwf import mwf
from .naive_split import naive_split
from .pv_splitting import pv_splitting
from .schedule import ScheduledTask, list_schedule
from .tree_splitting import processor_tree_height, tree_splitting

__all__ = [
    "ParallelResult",
    "MultiprocResult",
    "multiproc_er",
    "parallel_aspiration",
    "aspiration_windows",
    "mwf",
    "naive_split",
    "pv_splitting",
    "tree_splitting",
    "processor_tree_height",
    "ScheduledTask",
    "list_schedule",
]


def __getattr__(name: str):
    # Imported lazily: multiproc depends on core.er_parallel, which itself
    # imports parallel.base — an eager import here would be circular.
    if name in ("MultiprocResult", "multiproc_er"):
        from . import multiproc

        return getattr(multiproc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
