"""The two priority queues of the parallel ER problem heap (Section 6).

* The **primary queue** holds *scheduled* work — mandatory work plus
  speculative work that has been committed to — ordered by node depth,
  deepest first.
* The **speculative queue** holds e-nodes offering *potential* speculative
  work (additional e-child selections), ranked by number of e-children
  already selected (fewer first) with ties broken in favour of shallower
  nodes; the paper calls this ordering naive and its Section 8 proposes
  improving it, which the ablation benchmark explores via ``SpecOrder``.

Entries are never removed eagerly: nodes invalidated by cutoffs are
discarded lazily when popped, matching a realistic lock-based
implementation and keeping queue operations O(log n).

Each queue carries a location ``name`` and reports every push/pop to
:mod:`repro.verify.trace` when a recorder is installed, so the offline
race detector can check that no queue is ever touched outside its lock.
Push and pop also emit a depth sample to the telemetry bus
(:mod:`repro.obs.events`) when one is installed — because every backend
funnels through these queues, that one hook gives queue-depth and
spec-heap-size traces for sim, threaded, and multiproc runs alike.
``__len__`` is reported as a *relaxed* read: the distributed-heap
work-stealing pop deliberately peeks victim queue lengths without the
lock (emptiness races are benign; the popper re-checks under the lock).

With a :mod:`repro.obs.critpath` recorder installed, pops additionally
log which queue handed out each tree node — the heap hand-off side of
the dependency record, so critical-path blame rows can name the queue a
path node travelled through.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import TYPE_CHECKING, Optional

from ..obs import critpath as _cp
from ..obs import events as _obs
from ..verify import trace as _trace

if TYPE_CHECKING:  # pragma: no cover
    from .er_parallel import PNode


class SpecOrder(Enum):
    """Ranking policies for the speculative queue."""

    #: The paper's ordering: fewest e-children first, then shallowest.
    PAPER = "paper"
    #: Plain FIFO — the "no ranking" straw man.
    FIFO = "fifo"
    #: Deepest nodes first (mirrors the primary queue's ordering).
    DEEPEST = "deepest"
    #: Best tentative value first — a "global ranking" candidate the
    #: paper's Section 8 calls for.
    BEST_VALUE = "best-value"


def _emit_depth(name: str, depth: int) -> None:
    """Sample a queue's depth onto the telemetry bus, if one is listening."""
    if _obs.CURRENT is not None:
        _obs.CURRENT.emit(_obs.EV_QUEUE_DEPTH, queue=name, depth=depth)


def _note_pop(name: str, node: "PNode") -> None:
    """Log a heap hand-off to the critical-path recorder, if installed."""
    if _cp.CURRENT is not None:
        _cp.CURRENT.on_pop(name, "/".join(map(str, node.path)) or "root")


class PrimaryQueue:
    """Scheduled work, deepest node first."""

    def __init__(self, name: str = "heap.primary") -> None:
        self.name = name
        self._heap: list[tuple[int, int, "PNode"]] = []
        self._seq = 0

    def push(self, node: "PNode") -> None:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.WRITE)
        self._seq += 1
        heapq.heappush(self._heap, (-node.ply, self._seq, node))
        _emit_depth(self.name, len(self._heap))

    def pop(self) -> Optional["PNode"]:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.WRITE)
        if not self._heap:
            return None
        node = heapq.heappop(self._heap)[2]
        _emit_depth(self.name, len(self._heap))
        _note_pop(self.name, node)
        return node

    def __len__(self) -> int:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.READ, relaxed=True)
        return len(self._heap)


class SpeculativeQueue:
    """Potential speculative work (e-nodes awaiting extra e-children)."""

    def __init__(
        self, order: SpecOrder = SpecOrder.PAPER, name: str = "heap.speculative"
    ) -> None:
        self.name = name
        self._heap: list[tuple[tuple[float, ...], int, "PNode"]] = []
        self._seq = 0
        self._order = order

    def _key(self, node: "PNode") -> tuple[float, ...]:
        if self._order is SpecOrder.PAPER:
            return (node.e_children, node.ply)
        if self._order is SpecOrder.FIFO:
            return ()
        if self._order is SpecOrder.DEEPEST:
            return (-node.ply,)
        # BEST_VALUE: most promising (lowest tentative value) first.
        return (node.value,)

    def push(self, node: "PNode") -> None:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.WRITE)
        self._seq += 1
        heapq.heappush(self._heap, (self._key(node), self._seq, node))
        _emit_depth(self.name, len(self._heap))

    def pop(self) -> Optional["PNode"]:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.WRITE)
        if not self._heap:
            return None
        node = heapq.heappop(self._heap)[2]
        _emit_depth(self.name, len(self._heap))
        _note_pop(self.name, node)
        return node

    def __len__(self) -> int:
        if _trace.CURRENT is not None:
            _trace.on_access(self.name, _trace.READ, relaxed=True)
        return len(self._heap)
