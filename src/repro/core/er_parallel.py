"""Parallel ER — the paper's problem-heap implementation (Section 6).

Every simulated processor runs the same worker loop: take a node from the
problem heap (primary queue first, speculative queue as a fallback),
process it per Table 1, and when a subtree finishes, back its value up the
tree with the ``combine`` procedure, dispatching follow-on work per
Table 2.  The three speculative mechanisms of Section 5 are all present
and individually switchable for the ablation benchmarks:

* **parallel refutation** — once an e-node's first e-child is evaluated,
  every remaining child becomes an r-node and is refuted concurrently;
* **early choice** — an e-node becomes eligible for e-child selection as
  soon as all but one of its elder grandchildren are evaluated;
* **multiple e-children** — idle processors pop e-nodes off the
  speculative queue and start evaluating their next-best child.

Below ``serial_depth`` remaining plies, popped e/r-nodes are searched by
serial ER in one piece (Table 3's "Serial Depth" column); undecided nodes
still expand their first child so the elder-grandchild structure survives
down to the boundary.

Faithfulness notes (deviations are deliberate and documented):

* cutoff checks walk the live ancestor chain, so deep cutoffs arise
  naturally (the paper's serial reference also uses deep cutoffs);
* queued nodes orphaned by a cutoff are discarded lazily when popped;
* a serial subtree search runs against the window captured when it
  starts, is charged simulated time in chunks, and is abandoned between
  chunks if an ancestor cutoff makes it moot — its node counts are still
  merged (the work was performed), only its remaining time is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..cache.striped import AnyTT
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError, SimulationError
from ..eval.cache import AnyEvalCache
from ..eval.evaluator import Evaluator
from ..games.base import (
    NEG_INF,
    POS_INF,
    Game,
    Path,
    Position,
    SearchProblem,
    hash_key,
    subproblem,
)
from ..obs import critpath as _cp
from ..obs import events as _obs
from ..parallel.base import ParallelResult
from ..search.stats import SearchStats
from ..search.transposition import Bound, TTEntry
from ..sim.engine import Engine
from ..sim.locks import SimLock, WorkSignal
from ..sim.ops import Acquire, Compute, Op, Release, WaitWork
from ..verify import trace as _trace
from .er_queues import PrimaryQueue, SpeculativeQueue, SpecOrder
from .serial_er import TTView, er_search

# Node types of Table 1.
E_NODE = "e"
R_NODE = "r"
UNDECIDED = "u"


@dataclass(frozen=True)
class ERConfig:
    """Tunables of the parallel ER engine.

    Attributes:
        serial_depth: the ply at or below which popped e/r-nodes are
            searched by serial ER in one piece (Table 3's "Serial Depth":
            a 10-ply search with serial depth 7 parallelizes plies 0-6 and
            searches height-3 subtrees serially).  Note the direction —
            *decreasing* it makes serial subtrees larger, which is why the
            paper says decreasing it trades contention for starvation.
        parallel_refutation: refute an e-node's remaining children
            concurrently (Section 5) rather than one at a time.
        early_choice: allow e-child selection when all but one elder
            grandchild is evaluated (via the speculative queue).
        multiple_e_children: allow idle processors to start additional
            e-children (via the speculative queue).
        deep_cutoff_checks: use the full ancestor window for cutoffs
            rather than only the parent bound.
        max_e_children: cap on concurrently selected e-children per node.
            Section 5's "multiple e-nodes" asks for *at least one active
            e-child*; an uncapped speculative queue can pile several
            full-window child evaluations onto the same node (the root's
            are quarter-trees), which is the dominant speculative loss.
        spec_order: ranking policy of the speculative queue.
        chunk_units: granularity (simulated time) at which long serial
            subtree searches can be abandoned after a cutoff.
        max_events: engine safety valve.
    """

    #: Default: no serial cutover (every node handled by the problem heap).
    serial_depth: int = 1_000_000
    parallel_refutation: bool = True
    early_choice: bool = True
    multiple_e_children: bool = True
    deep_cutoff_checks: bool = True
    #: Default: unbounded, as in the paper's speculative queue; the
    #: ablation benchmark sweeps tighter caps.
    max_e_children: int = 1_000_000
    #: Section 8 future work: per-processor work queues with stealing
    #: ("distributing work in a manner that reduces processor
    #: interaction") instead of one shared primary queue.
    distributed_heap: bool = False
    spec_order: SpecOrder = SpecOrder.PAPER
    chunk_units: float = 400.0
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.serial_depth < 0:
            raise SearchError("serial_depth must be non-negative")
        if self.max_e_children < 1:
            raise SearchError("max_e_children must be at least 1")
        if self.chunk_units <= 0:
            raise SearchError("chunk_units must be positive")


class PNode:
    """Shared-tree node state for the parallel search."""

    __slots__ = (
        "position",
        "path",
        "ply",
        "parent",
        "ntype",
        "value",
        "done",
        "counted",
        "elder_counted",
        "child_positions",
        "children",
        "next_child",
        "combined_children",
        "elder_done",
        "e_children",
        "e_child_selected",
        "refutation_started",
        "on_spec",
        "is_leaf",
        "expansion_charged",
    )

    def __init__(
        self,
        position: Position,
        path: Path,
        ply: int,
        parent: Optional["PNode"],
        ntype: str,
    ) -> None:
        self.position = position
        self.path = path
        self.ply = ply
        self.parent = parent
        self.ntype = ntype
        self.value: float = NEG_INF
        self.done = False
        self.counted = False  # contributed to parent's combined count
        self.elder_counted = False  # contributed to parent's elder count
        self.child_positions: Optional[list[Position]] = None
        self.children: Optional[list[Optional["PNode"]]] = None
        self.next_child = 0  # next child index to dispatch
        self.combined_children = 0
        self.elder_done = 0  # children holding a tentative value
        self.e_children = 0  # children dispatched as e-children
        self.e_child_selected = False
        self.refutation_started = False
        self.on_spec = False
        self.is_leaf = False
        self.expansion_charged = False

    @property
    def n_children(self) -> int:
        return 0 if self.child_positions is None else len(self.child_positions)

    @property
    def has_tentative(self) -> bool:
        return self.elder_counted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PNode(path={self.path}, type={self.ntype}, value={self.value}, "
            f"done={self.done}, combined={self.combined_children}/{self.n_children})"
        )


class _Context:
    """State shared by all workers of one parallel ER run."""

    def __init__(
        self,
        problem: SearchProblem,
        cost_model: CostModel,
        config: ERConfig,
        trace: bool,
        n_processors: int = 1,
        tt: Optional[AnyTT] = None,
        eval_cache: Optional[AnyEvalCache] = None,
        batch_eval: bool = False,
    ) -> None:
        self.problem = problem
        self.cost_model = cost_model
        self.config = config
        self.trace = trace
        self.n_processors = n_processors
        self.tt = tt
        self.eval_cache = eval_cache
        self.batch_eval = batch_eval
        self.heap_lock = SimLock("heap")
        self.tree_lock = SimLock("tree")
        self.work = WorkSignal("er-work")
        self.primary = PrimaryQueue()
        self.speculative = SpeculativeQueue(config.spec_order)
        if config.distributed_heap:
            self.local_queues = [
                PrimaryQueue(name=f"heap.local-{i}") for i in range(n_processors)
            ]
            self.local_locks = [SimLock(f"heap-{i}") for i in range(n_processors)]
        else:
            self.local_queues = []
            self.local_locks = []
        self.root = PNode(problem.game.root(), (), 0, None, E_NODE)
        self.done = False
        self.counters = {
            "pops_primary": 0,
            "pops_speculative": 0,
            "stale_discards": 0,
            "cutoff_discards": 0,
            "serial_searches": 0,
            "serial_aborts": 0,
            "spec_selections": 0,
            "mandatory_selections": 0,
            "refutation_conversions": 0,
            "steals": 0,
        }
        if config.distributed_heap:
            self.local_queues[0].push(self.root)
        else:
            self.primary.push(self.root)

    # -- shared-state instrumentation --------------------------------------

    def _bump(self, key: str, amount: int = 1) -> None:
        """Increment a protocol counter, reporting the write to the tracer.

        Each counter key is its own trace location (``counters.<key>``);
        the race detector checks that every key is bumped under one
        consistent lock (pops under the heap lock, tree bookkeeping under
        the tree lock).
        """
        if _trace.CURRENT is not None:
            _trace.on_access(f"counters.{key}", _trace.WRITE)
        self.counters[key] += amount

    @staticmethod
    def _emit(etype: str, node: PNode, **data: object) -> None:
        """Publish a node lifecycle event to the telemetry bus, if any.

        Values can be infinite sentinels (``NEG_INF`` placeholders, beta
        cutoff floors); they are stringified so every event payload stays
        strict-JSON-serializable.
        """
        if _obs.CURRENT is None:
            return
        if "value" in data:
            raw = data["value"]
            if isinstance(raw, float) and (raw == NEG_INF or raw == POS_INF):
                data["value"] = str(raw)
        path = "/".join(map(str, node.path)) or "root"
        _obs.CURRENT.emit(etype, path=path, **data)

    @staticmethod
    def _note(node: PNode, kind: str) -> None:
        """Report an access to ``node``'s shared state to the tracer.

        Node locations are checked by happens-before only: ownership of a
        node legitimately transfers between workers through the locked
        problem heap (push under one critical section, pop under another),
        which a pure lockset analysis would misreport.
        """
        if _trace.CURRENT is not None:
            path = "/".join(map(str, node.path)) or "root"
            _trace.on_access(f"node:{path}", kind)

    # -- window / cutoff machinery ----------------------------------------

    def window(self, node: PNode) -> tuple[float, float]:
        """Current alpha-beta window of ``node`` from the live tree."""
        parent = node.parent
        if parent is None:
            return (NEG_INF, POS_INF)
        if self.config.deep_cutoff_checks:
            p_alpha, p_beta = self.window(parent)
        else:
            p_alpha, p_beta = NEG_INF, POS_INF
        floor = max(parent.value, p_alpha)
        return (-p_beta, -floor)

    def is_cut_off(self, node: PNode) -> bool:
        alpha, beta = self.window(node)
        return node.value >= beta or alpha >= beta

    def has_finished_ancestor(self, node: PNode) -> bool:
        """True when some strict ancestor already combined or was cut off."""
        ancestor = node.parent
        while ancestor is not None:
            if ancestor.done:
                return True
            ancestor = ancestor.parent
        return False

    # -- heap operations (caller holds heap_lock) --------------------------

    def pop_work(self) -> tuple[Optional[PNode], bool]:
        node = self.primary.pop()
        if node is not None:
            self._bump("pops_primary")
            self._emit(_obs.EV_NODE_POPPED, node, speculative=False)
            return node, False
        node = self.speculative.pop()
        if node is not None:
            # ``on_spec`` stays True until _process_speculative clears it
            # under the tree lock: every access to node state is tree-locked,
            # and a concurrent maybe_push_spec cannot double-push meanwhile.
            self._bump("pops_speculative")
            self._emit(_obs.EV_NODE_POPPED, node, speculative=True)
            return node, True
        return None, False

    # -- tree operations (caller holds tree_lock) ---------------------------

    def evaluator_for(self, pid: int, game: Optional[Game] = None) -> Optional[Evaluator]:
        """This worker's batched evaluator, or ``None`` when both the
        batching flag and the eval cache are off.

        ``game`` overrides the evaluation substrate (serial subtrees pass
        their :class:`~repro.games.base.RootedGame`, which forwards
        ``hash_key`` and ``batch_eval`` to the base game, so keys and
        values stay identical across workers).
        """
        if not self.batch_eval and self.eval_cache is None:
            return None
        cache = None if self.eval_cache is None else self.eval_cache.view(pid)
        target = self.problem.game if game is None else game
        return Evaluator(target, self.cost_model, cache)

    def expand_positions(
        self, node: PNode, stats: SearchStats, pid: int = 0
    ) -> tuple[float, tuple[tuple[str, float], ...]]:
        """Generate and cache child positions; returns the cost to charge.

        Children of e-nodes keep the game's move order; all other nodes
        pre-sort by static value per the problem's ordering policy
        (Section 7: "successors of e-nodes were also not sorted").

        Returns ``(cost, parts)`` where ``parts`` splits the charge into
        its cost primitives (pure expansion vs the static evaluations of
        move ordering) for critical-path attribution.
        """
        if node.child_positions is not None:
            return 0.0, ()
        game = self.problem.game
        successors = (
            []
            if self.problem.is_horizon(node.ply)
            else list(game.children(node.position))
        )
        # Written without a lock: between pop and publish the popping
        # worker owns the node, and a first expansion cannot overlap any
        # other worker's access (children do not exist yet, so no combine
        # can reach it); the handoff itself is ordered by the heap lock.
        self._note(node, _trace.WRITE)
        if not successors:
            node.is_leaf = True
            node.child_positions = []
            node.children = []
            return 0.0, ()
        expand_cost = stats.on_expand(node.path, len(successors), self.cost_model)
        ordering_cost = 0.0
        ordering_parts: tuple[tuple[str, float], ...] = ()
        if node.ntype != E_NODE and self.problem.should_sort(node.ply):
            evaluator = self.evaluator_for(pid)
            if evaluator is not None:
                # Batched (and possibly cached) ordering evaluations; the
                # evaluator charges stats directly and reports the split.
                stats.note_ordering(len(successors))
                static, ordering_parts = evaluator.frontier_values(successors, stats)
                ordering_cost = sum(weight for _, weight in ordering_parts)
            else:
                ordering_cost = stats.on_ordering(len(successors), self.cost_model)
                ordering_parts = (("static_eval", ordering_cost),)
                static = [game.evaluate(child) for child in successors]
            order = sorted(range(len(successors)), key=static.__getitem__)
            successors = [successors[i] for i in order]
        node.child_positions = successors
        node.children = [None] * len(successors)
        parts: tuple[tuple[str, float], ...] = (("expansion", expand_cost),) + ordering_parts
        return expand_cost + ordering_cost, parts

    def make_child(self, node: PNode, index: int, ntype: str) -> PNode:
        assert node.child_positions is not None and node.children is not None
        self._note(node, _trace.WRITE)
        child = PNode(
            node.child_positions[index],
            node.path + (index,),
            node.ply + 1,
            node,
            ntype,
        )
        node.children[index] = child
        self._emit(_obs.EV_NODE_CREATED, child, ntype=ntype)
        return child

    def maybe_push_spec(self, node: PNode, pushes: list[tuple[str, PNode]]) -> None:
        """Queue ``node`` for speculative e-child selection if eligible."""
        if node.ntype != E_NODE or node.done or node.on_spec:
            return
        if node.child_positions is None or node.is_leaf:
            return
        if node.elder_done < node.n_children - 1:
            return
        if node.e_child_selected and not self.config.multiple_e_children:
            return
        if self._active_e_children(node) >= self.config.max_e_children:
            return
        if self._best_candidate(node) is None:
            return
        self._note(node, _trace.WRITE)
        node.on_spec = True
        pushes.append(("spec", node))

    def _active_e_children(self, node: PNode) -> int:
        """E-children of ``node`` whose evaluation is still in flight."""
        if node.children is None:
            return 0
        return sum(
            1
            for child in node.children
            if child is not None and child.ntype == E_NODE and not child.done
        )

    def _best_candidate(self, node: PNode, include_refutable: bool = False) -> Optional[PNode]:
        """Best unstarted child of an e-node: lowest tentative value.

        For *speculative selection* children whose tentative value already
        refutes them are skipped — evaluating them cannot pay off
        (Section 5: select "the node with the most optimistic bound").
        Refutation release must pass ``include_refutable=True``: every
        remaining child has to be dispatched eventually, refutable or not,
        or the parent would never combine.
        """
        assert node.children is not None
        node_alpha, _ = self.window(node)
        child_beta = -max(node.value, node_alpha)
        best: Optional[PNode] = None
        for child in node.children:
            if child is None or child.done or child.ntype != UNDECIDED:
                continue
            if not child.has_tentative:
                continue
            if not include_refutable and child.value >= child_beta:
                continue
            if best is None or child.value < best.value:
                best = child
        return best

    def select_e_child(self, node: PNode, pushes: list[tuple[str, PNode]], mandatory: bool) -> bool:
        """Promote the best candidate child of ``node`` to an e-child.

        A mandatory selection falls back to a refutable candidate when no
        promising one exists: some child must be dispatched or the node
        would never combine (the dispatched child is then cut off cheaply
        at pop time, which triggers refutation of the rest).
        """
        candidate = self._best_candidate(node)
        if candidate is None and mandatory:
            candidate = self._best_candidate(node, include_refutable=True)
        if candidate is None:
            return False
        self._note(candidate, _trace.WRITE)
        self._note(node, _trace.WRITE)
        candidate.ntype = E_NODE
        node.e_children += 1
        node.e_child_selected = True
        self._bump("mandatory_selections" if mandatory else "spec_selections")
        self._emit(_obs.EV_CLASS_FLIP, candidate, flip="u->e", mandatory=mandatory)
        pushes.append(("primary", candidate))
        return True

    def start_refutation(self, node: PNode, pushes: list[tuple[str, PNode]]) -> None:
        """Table 2, row 3: convert remaining children to r-nodes."""
        self._note(node, _trace.WRITE)
        node.refutation_started = True
        assert node.children is not None
        # Only children whose Eval_first has completed are released now; a
        # child whose first-grandchild evaluation is still in flight joins
        # the refutation when that evaluation combines (the UNDECIDED
        # branch of _dispatch_at).  Converting an in-flight child here
        # would dispatch it while its own subtree is still being written.
        candidates = [
            child
            for child in node.children
            if child is not None
            and not child.done
            and child.ntype == UNDECIDED
            and child.has_tentative
        ]
        # Refute in ascending tentative-value order — the parallel analogue
        # of serial ER's sort before its refutation loop (Figure 8).
        candidates.sort(key=lambda c: c.value)
        if not self.config.parallel_refutation:
            # Sequential ablation: release only the best candidate; the
            # next is released when this one combines (see combine()).
            candidates = candidates[:1]
        for child in candidates:
            self._convert_to_r(child, pushes)

    def _convert_to_r(self, child: PNode, pushes: list[tuple[str, PNode]]) -> None:
        self._note(child, _trace.WRITE)
        child.ntype = R_NODE
        if child.child_positions is not None and not child.is_leaf:
            child.next_child = max(child.next_child, 1)
        self._bump("refutation_conversions")
        self._emit(_obs.EV_CLASS_FLIP, child, flip="u->r")
        pushes.append(("primary", child))

    # -- the combine procedure (Section 6) ----------------------------------

    def combine(self, node: PNode, pushes: list[tuple[str, PNode]]) -> int:
        """Back ``node``'s value up the tree; returns levels walked.

        Walks upward while ancestors finish (all children combined) or are
        cut off; stops at the first live ancestor with remaining work and
        performs the Table 2 dispatch there.
        """
        levels = 0
        current = node
        while True:
            parent = current.parent
            if parent is None:
                if current.done:
                    self.done = True
                return levels
            if parent.done:
                return levels  # orphaned subtree; results are moot
            levels += 1
            self._note(current, _trace.WRITE)
            self._note(parent, _trace.WRITE)
            if current.done:
                if not current.counted:
                    current.counted = True
                    parent.combined_children += 1
                if not current.elder_counted:
                    current.elder_counted = True
                    parent.elder_done += 1
                # A child abandoned with no information (value still -inf,
                # e.g. an aborted serial search under a finished ancestor)
                # must not contribute a bogus +inf to its parent.
                if current.value != NEG_INF and -current.value > parent.value:
                    parent.value = -current.value
            # Does the parent finish or die right now?
            if (
                parent.child_positions is not None
                and parent.combined_children == parent.n_children
            ):
                parent.done = True
                self._emit(_obs.EV_NODE_DONE, parent, value=parent.value, cutoff=False)
                current = parent
                continue
            if self.is_cut_off(parent):
                alpha, beta = self.window(parent)
                if beta > parent.value:
                    parent.value = beta  # fail-hard: "at least beta"
                parent.done = True
                self._bump("cutoff_discards")
                self._emit(_obs.EV_NODE_DONE, parent, value=parent.value, cutoff=True)
                current = parent
                continue
            # Parent lives on with remaining work: Table 2 actions.
            self._dispatch_at(parent, current, pushes)
            return levels

    def _dispatch_at(self, parent: PNode, completed: PNode, pushes: list[tuple[str, PNode]]) -> None:
        """Table 2: schedule follow-on work at the stop node's level."""
        if parent.ntype == UNDECIDED:
            # The parent's first child acquired a value, i.e. one more
            # elder grandchild of the grandparent is evaluated.
            grand = parent.parent
            if not parent.elder_counted:
                self._note(parent, _trace.WRITE)
                parent.elder_counted = True
                if grand is not None and not grand.done:
                    self._note(grand, _trace.WRITE)
                    grand.elder_done += 1
            if grand is not None and not grand.done and grand.ntype == E_NODE:
                if grand.refutation_started:
                    # Refutation already under way: this late child joins it.
                    self._convert_to_r(parent, pushes)
                else:
                    self._check_e_node(grand, pushes)
        elif parent.ntype == R_NODE:
            # Sequential refutation: dispatch the next child, if any.
            if (
                parent.child_positions is not None
                and parent.next_child < parent.n_children
            ):
                pushes.append(("primary", parent))
        elif parent.ntype == E_NODE:
            if completed.ntype == E_NODE and not parent.refutation_started:
                # The first e-child finished: refute the remaining children.
                self.start_refutation(parent, pushes)
            elif parent.refutation_started and not self.config.parallel_refutation:
                # Sequential-refutation ablation: release the next child.
                best = self._best_candidate(parent, include_refutable=True)
                if best is not None:
                    self._convert_to_r(best, pushes)
            else:
                self._check_e_node(parent, pushes)

    def _check_e_node(self, node: PNode, pushes: list[tuple[str, PNode]]) -> None:
        """Table 2, rows 1-2: e-child selection and speculative eligibility.

        With early choice on, the first e-child is selected as soon as all
        but one of the elder grandchildren are evaluated (Section 6: "we
        select the e-child of an e-node as soon as all but one of the
        elder grandchildren have been evaluated") — the one-straggler gate
        would otherwise stall the whole subtree on its slowest branch.
        """
        if node.done or node.child_positions is None:
            return
        threshold = node.n_children - 1 if self.config.early_choice else node.n_children
        if node.elder_done >= threshold and not node.e_child_selected:
            if self.select_e_child(node, pushes, mandatory=True):
                return
        self.maybe_push_spec(node, pushes)


def _cp_path(node: PNode) -> str:
    """Node path for critical-path blame — only built when recording."""
    if _cp.CURRENT is None:
        return ""
    return "/".join(map(str, node.path)) or "root"


def _serial_parts(cm: CostModel, sub: SearchStats) -> tuple[tuple[str, float], ...]:
    """Decompose a serial subtree search's cost into its primitives.

    Reconstructed from the substats counters with the same arithmetic
    the stats hooks charged, so the weights sum to ``sub.cost`` exactly;
    the critical-path walker splits each serial chunk's path time
    proportionally.  ``static_evals`` (full-price evaluations) is the
    counter to use here — with batching or a cache, ``leaf_evals`` and
    ``ordering_evals`` count work whose cost was charged under
    ``batch_eval``/``eval_cache`` instead.
    """
    static_eval = sub.static_evals * cm.static_eval
    expansion = sub.interior_visits * cm.expand_base + sub.nodes_generated * cm.expand_per_child
    tt_probe = sub.tt_probes * cm.tt_probe
    tt_store = sub.tt_stores * cm.tt_store
    batch = sub.batch_calls * cm.batch_eval_base + sub.batch_leaves * cm.batch_eval_per_leaf
    eval_cache = sub.eval_probes * cm.eval_cache_probe + sub.eval_stores * cm.eval_cache_store
    return tuple(
        (name, weight)
        for name, weight in (
            ("static_eval", static_eval),
            ("expansion", expansion),
            ("tt_probe", tt_probe),
            ("tt_store", tt_store),
            ("batch_eval", batch),
            ("eval_cache", eval_cache),
        )
        if weight > 0
    )


def _worker(ctx: _Context, stats: SearchStats, pid: int = 0) -> Generator[Op, None, None]:
    """The per-processor loop of Section 6."""
    cm = ctx.cost_model
    while not ctx.done:
        if ctx.config.distributed_heap:
            node, from_spec, seen_version = yield from _pop_distributed(ctx, pid)
        else:
            yield Acquire(ctx.heap_lock)
            yield Compute(cm.heap_op, tag="heap_op")
            node, from_spec = ctx.pop_work()
            seen_version = ctx.work.version
            yield Release(ctx.heap_lock)
        if node is None:
            if ctx.done:
                return
            yield WaitWork(ctx.work, seen_version)
            continue
        if from_spec:
            yield from _process_speculative(ctx, node, stats, pid)
        else:
            yield from _process_primary(ctx, node, stats, pid)
    return


def _pop_distributed(
    ctx: _Context, pid: int
) -> Generator[Op, None, tuple[Optional[PNode], bool, int]]:
    """Pop under per-processor queues: own queue, then steal, then spec.

    The Section 8 "distribute work to reduce processor interaction"
    variant: each processor has a private deque; an empty processor scans
    the others round-robin (peeking lengths without the lock, as a real
    work-stealing deque would) and falls back to the shared speculative
    queue.  Returns ``(node, from_spec, seen_version)``.
    """
    cm = ctx.cost_model
    seen_version = ctx.work.version
    own_lock = ctx.local_locks[pid]
    yield Acquire(own_lock)
    yield Compute(cm.heap_op, tag="heap_op")
    node = ctx.local_queues[pid].pop()
    if node is not None:
        ctx._bump("pops_primary")
        ctx._emit(_obs.EV_NODE_POPPED, node, speculative=False)
    yield Release(own_lock)
    if node is not None:
        return node, False, seen_version
    for offset in range(1, ctx.n_processors):
        victim = (pid + offset) % ctx.n_processors
        if len(ctx.local_queues[victim]) == 0:
            continue  # lock-free peek; emptiness races are benign
        yield Acquire(ctx.local_locks[victim])
        yield Compute(cm.heap_op, tag="heap_op")
        node = ctx.local_queues[victim].pop()
        if node is not None:
            ctx._bump("pops_primary")
            ctx._bump("steals")
            ctx._emit(_obs.EV_NODE_POPPED, node, speculative=False)
        yield Release(ctx.local_locks[victim])
        if node is not None:
            return node, False, seen_version
    yield Acquire(ctx.heap_lock)
    yield Compute(cm.heap_op, tag="heap_op")
    spec = ctx.speculative.pop()
    if spec is not None:
        # on_spec is cleared by _process_speculative under the tree lock.
        ctx._bump("pops_speculative")
        ctx._emit(_obs.EV_NODE_POPPED, spec, speculative=True)
    yield Release(ctx.heap_lock)
    return spec, spec is not None, seen_version


def _push_all(
    ctx: _Context, pushes: list[tuple[str, PNode]], pid: int = 0
) -> Generator[Op, None, None]:
    """Publish queued work under the appropriate heap lock(s)."""
    if not pushes:
        return
    if ctx.config.distributed_heap:
        primaries = [n for q, n in pushes if q == "primary"]
        speculatives = [n for q, n in pushes if q != "primary"]
        if primaries:
            yield Acquire(ctx.local_locks[pid])
            yield Compute(ctx.cost_model.heap_op * len(primaries), tag="heap_op")
            for node in primaries:
                ctx.local_queues[pid].push(node)
            yield Release(ctx.local_locks[pid])
        if speculatives:
            yield Acquire(ctx.heap_lock)
            yield Compute(ctx.cost_model.heap_op * len(speculatives), tag="heap_op")
            for node in speculatives:
                ctx.speculative.push(node)
            yield Release(ctx.heap_lock)
        ctx.work.notify_all()
        return
    yield Acquire(ctx.heap_lock)
    yield Compute(ctx.cost_model.heap_op * len(pushes), tag="heap_op")
    for queue_name, node in pushes:
        if queue_name == "primary":
            ctx.primary.push(node)
        else:
            ctx.speculative.push(node)
    ctx.work.notify_all()
    yield Release(ctx.heap_lock)


def _finish_node(
    ctx: _Context,
    node: PNode,
    stats: SearchStats,
    pid: int = 0,
    *,
    value: Optional[float] = None,
    refute_if_cut: bool = False,
) -> Generator[Op, None, None]:
    """Mark ``node`` done and run combine under the tree lock.

    ``value`` is a search result to fold into ``node.value`` before the
    combine; it is applied here, under the tree lock, so no worker ever
    writes tree state unlocked (publishing the value and marking the node
    done are one critical section).  ``refute_if_cut`` applies
    :func:`_mark_refuted_if_cut` for abandoned serial searches, likewise
    inside the lock.
    """
    yield Acquire(ctx.tree_lock)
    ctx._note(node, _trace.WRITE)
    if value is not None and value > node.value:
        node.value = value
    if refute_if_cut:
        _mark_refuted_if_cut(ctx, node)
    node.done = True
    ctx._emit(_obs.EV_NODE_DONE, node, value=node.value, cutoff=False)
    pushes: list[tuple[str, PNode]] = []
    levels = ctx.combine(node, pushes)
    yield Compute(
        ctx.cost_model.combine_step * max(1, levels),
        tag="combine_step", node=_cp_path(node), cls=node.ntype,
    )
    if ctx.done:
        ctx.work.notify_all()
    yield Release(ctx.tree_lock)
    yield from _push_all(ctx, pushes, pid)


def _process_speculative(
    ctx: _Context, node: PNode, stats: SearchStats, pid: int = 0
) -> Generator[Op, None, None]:
    """Pop from the speculative queue: select one more e-child."""
    cm = ctx.cost_model
    yield Acquire(ctx.tree_lock)
    yield Compute(cm.bookkeeping, tag="bookkeeping", node=_cp_path(node), cls=node.ntype)
    pushes: list[tuple[str, PNode]] = []
    ctx._note(node, _trace.WRITE)
    node.on_spec = False
    if (
        not node.done
        and not ctx.has_finished_ancestor(node)
        and not ctx.is_cut_off(node)
        and ctx._active_e_children(node) < ctx.config.max_e_children
    ):
        if ctx.select_e_child(node, pushes, mandatory=False):
            # Leave the node eligible for yet another e-child.
            ctx.maybe_push_spec(node, pushes)
    else:
        ctx._bump("stale_discards")
    yield Release(ctx.tree_lock)
    yield from _push_all(ctx, pushes, pid)


def _tt_view(ctx: _Context, pid: int) -> Optional[TTView]:
    """This worker's handle on the run's transposition table, if any."""
    return None if ctx.tt is None else ctx.tt.view(pid)


def _tt_probe_parallel(
    ctx: _Context,
    node: PNode,
    window: tuple[float, float],
    stats: SearchStats,
    pid: int,
) -> Generator[Op, None, Optional[float]]:
    """Probe the table for a finished answer to ``node``.

    Runs with *no* locks held (the stripe SimLock is acquired inside the
    op, and the internal stripe locks are leaves), against the window
    captured under the tree lock at pop time.  Staleness is benign: the
    live window only tightens, so an entry usable for the captured window
    finishes the node exactly the way the existing cutoff-discard and
    fail-high paths do — EXACT adopts a true value, LOWER ``>= beta``
    mirrors a cutoff floor, UPPER ``<= alpha`` is the fail-high of an
    already-irrelevant branch.

    Returns the adopted value, or ``None`` on a miss.  Stores are *not*
    issued at the parallel level for combined nodes — values assembled
    from the live tree mix windows from different instants, so only the
    serial subtree searches (whose windows are pinned) write entries.
    """
    if ctx.tt is None:
        return None
    alpha, beta = window
    stats.on_tt_probe(ctx.cost_model)
    entry = yield from ctx.tt.view(pid).probe_op(hash_key(ctx.problem.game, node.position))
    if entry is None or entry.depth < ctx.problem.depth - node.ply:
        return None
    usable = (
        entry.bound is Bound.EXACT
        or (entry.bound is Bound.LOWER and entry.value >= beta)
        or (entry.bound is Bound.UPPER and entry.value <= alpha)
    )
    return entry.value if usable else None


def _tt_store_leaf(
    ctx: _Context, node: PNode, value: float, stats: SearchStats, pid: int
) -> Generator[Op, None, None]:
    """Record a parallel-level leaf evaluation (exact at any window)."""
    if ctx.tt is None:
        return
    stats.on_tt_store(ctx.cost_model)
    entry = TTEntry(value, ctx.problem.depth - node.ply, Bound.EXACT, None)
    yield from ctx.tt.view(pid).store_op(hash_key(ctx.problem.game, node.position), entry)


def _eval_probe_parallel(
    ctx: _Context, node: PNode, stats: SearchStats, pid: int
) -> Generator[Op, None, Optional[float]]:
    """Probe the eval cache for a parallel-level leaf's static value.

    Runs with no locks held (the stripe SimLock is acquired inside the
    op, and the internal stripe locks are leaves).  Every hit is
    unconditionally usable — static values carry no window or depth.
    """
    if ctx.eval_cache is None:
        return None
    value = yield from ctx.eval_cache.view(pid).probe_op(
        hash_key(ctx.problem.game, node.position)
    )
    stats.on_eval_probe(ctx.cost_model, hit=value is not None)
    return value


def _eval_store_parallel(
    ctx: _Context, node: PNode, value: float, stats: SearchStats, pid: int
) -> Generator[Op, None, None]:
    """Record a parallel-level leaf's static value in the eval cache."""
    if ctx.eval_cache is None:
        return
    stats.on_eval_store(ctx.cost_model)
    yield from ctx.eval_cache.view(pid).store_op(
        hash_key(ctx.problem.game, node.position), value
    )


def _extras_with_tt(ctx: _Context) -> dict[str, int]:
    """Protocol counters plus the cache subsystems' own tallies."""
    extras = dict(ctx.counters)
    if ctx.tt is not None:
        extras.update(ctx.tt.counter_snapshot())
    if ctx.eval_cache is not None:
        extras.update(ctx.eval_cache.counter_snapshot())
    return extras


def _process_primary(
    ctx: _Context, node: PNode, stats: SearchStats, pid: int = 0
) -> Generator[Op, None, None]:
    """Pop from the primary queue: Table 1 node generation."""
    cm = ctx.cost_model
    cfg = ctx.config

    # Staleness and cutoff screening against the live tree.
    yield Acquire(ctx.tree_lock)
    yield Compute(cm.bookkeeping, tag="bookkeeping", node=_cp_path(node), cls=node.ntype)
    ctx._note(node, _trace.READ)
    if node.done or ctx.has_finished_ancestor(node):
        ctx._bump("stale_discards")
        yield Release(ctx.tree_lock)
        return
    if ctx.is_cut_off(node):
        _, beta = ctx.window(node)
        ctx._note(node, _trace.WRITE)
        if beta > node.value:
            node.value = beta
        ctx._bump("cutoff_discards")
        yield Release(ctx.tree_lock)
        yield from _finish_node(ctx, node, stats, pid)
        return
    window = ctx.window(node)
    yield Release(ctx.tree_lock)

    # A transposition may already answer this whole subtree (no locks
    # held; the cutoff semantics of a usable bounded hit mirror the
    # cutoff-discard path above).
    hit = yield from _tt_probe_parallel(ctx, node, window, stats, pid)
    if hit is not None:
        yield from _finish_node(ctx, node, stats, pid, value=hit)
        return

    # Generate child positions (cheap move generation, outside the locks).
    expand_cost, expand_parts = ctx.expand_positions(node, stats, pid)
    if expand_cost:
        yield Compute(
            expand_cost,
            tag="expansion", node=_cp_path(node), cls=node.ntype, parts=expand_parts,
        )

    if node.is_leaf:
        # The eval cache may already hold this position's static value
        # (no locks held; hits need no window/depth qualification).
        cached = yield from _eval_probe_parallel(ctx, node, stats, pid)
        if cached is not None:
            stats.note_leaf(node.path)
            leaf_value = cached
        else:
            yield Compute(
                stats.on_leaf(node.path, cm),
                tag="static_eval", node=_cp_path(node), cls=node.ntype,
            )
            leaf_value = ctx.problem.game.evaluate(node.position)
            yield from _eval_store_parallel(ctx, node, leaf_value, stats, pid)
        yield from _tt_store_leaf(ctx, node, leaf_value, stats, pid)
        yield from _finish_node(ctx, node, stats, pid, value=leaf_value)
        return

    if node.ntype in (E_NODE, R_NODE) and node.ply >= cfg.serial_depth:
        if node.next_child > 0:
            # First child already fully evaluated while the node was
            # undecided: search only the remaining children serially.
            yield from _serial_refute_remaining(ctx, node, stats, window, pid)
        else:
            yield from _serial_evaluate(ctx, node, stats, window, pid)
        return

    pushes: list[tuple[str, PNode]] = []
    yield Acquire(ctx.tree_lock)
    yield Compute(cm.bookkeeping, tag="bookkeeping", node=_cp_path(node), cls=node.ntype)
    ctx._note(node, _trace.WRITE)
    if node.ntype == E_NODE:
        # Table 1: generate all (remaining) children as undecided nodes.
        # A promoted e-child arrives here with its first child already
        # evaluated; only the empty slots are dispatched.
        assert node.children is not None
        for index in range(node.n_children):
            if node.children[index] is None:
                pushes.append(("primary", ctx.make_child(node, index, UNDECIDED)))
        node.next_child = node.n_children
    elif node.ntype == UNDECIDED:
        # Table 1: generate the first child as an e-node.
        if node.next_child == 0:
            pushes.append(("primary", ctx.make_child(node, 0, E_NODE)))
            node.next_child = 1
    else:  # R_NODE above serial depth
        if node.next_child < node.n_children:
            ntype = E_NODE if node.next_child == 0 else R_NODE
            pushes.append(("primary", ctx.make_child(node, node.next_child, ntype)))
            node.next_child += 1
    yield Release(ctx.tree_lock)
    yield from _push_all(ctx, pushes, pid)


def _charge_serial(
    ctx: _Context,
    node: PNode,
    cost: float,
    stats: SearchStats,
    parts: tuple[tuple[str, float], ...] = (),
) -> Generator[Op, None, bool]:
    """Charge a serial search's time in abandonable chunks.

    Yields chunks of at most ``chunk_units``; between chunks the worker
    re-checks the live tree — under the tree lock, since other workers
    mutate ancestor state under it — and abandons the remainder if the
    subtree is now moot.  Returns via StopIteration-value whether the
    work survived.  ``parts`` (from :func:`_serial_parts`) rides on every
    chunk so critical-path attribution can split the subtree's mixed
    cost back into primitives.
    """
    cfg = ctx.config
    npath = _cp_path(node)
    charged = 0.0
    while charged < cost:
        chunk = min(cfg.chunk_units, cost - charged)
        yield Compute(chunk, tag="serial", node=npath, cls=node.ntype, parts=parts)
        charged += chunk
        if charged < cost:
            yield Acquire(ctx.tree_lock)
            ctx._note(node, _trace.READ)
            moot = node.done or ctx.has_finished_ancestor(node) or ctx.is_cut_off(node)
            if moot:
                ctx._bump("serial_aborts")
            yield Release(ctx.tree_lock)
            if moot:
                return False
    return True


def _merge_substats(ctx: _Context, stats: SearchStats, sub: SearchStats, prefix: Path) -> None:
    """Fold a subtree search's accounting in, re-rooting its trace."""
    if stats.trace is not None and sub.trace is not None:
        stats.trace.update(prefix + p for p in sub.trace)
        sub.trace = None
    stats.interior_visits += sub.interior_visits
    stats.leaf_evals += sub.leaf_evals
    stats.ordering_evals += sub.ordering_evals
    stats.nodes_generated += sub.nodes_generated
    stats.cutoffs += sub.cutoffs
    stats.static_evals += sub.static_evals
    stats.batch_calls += sub.batch_calls
    stats.batch_leaves += sub.batch_leaves
    stats.eval_probes += sub.eval_probes
    stats.eval_hits += sub.eval_hits
    stats.eval_stores += sub.eval_stores
    stats.cost += sub.cost


def _serial_evaluate(
    ctx: _Context, node: PNode, stats: SearchStats, window: tuple[float, float], pid: int = 0
) -> Generator[Op, None, None]:
    """Search the whole subtree under ``node`` with serial ER."""
    alpha, beta = window
    yield Acquire(ctx.tree_lock)
    ctx._note(node, _trace.READ)
    moot = node.done  # finished concurrently
    if not moot:
        ctx._bump("serial_searches")
    yield Release(ctx.tree_lock)
    if moot:
        return
    sub = subproblem(ctx.problem, node.position, node.ply)
    substats = SearchStats.with_trace() if ctx.trace else SearchStats()
    # The serial search probes and stores through this worker's view; its
    # windows are pinned for the whole subtree, so every store classifies
    # soundly (serial_er module docstring).  Subtree keys match parallel
    # keys because RootedGame forwards hash_key (and batch_eval) to the
    # base game — the evaluator's cache entries are shared either way.
    result = er_search(
        sub, alpha, beta, cost_model=ctx.cost_model, stats=substats,
        table=_tt_view(ctx, pid), evaluator=ctx.evaluator_for(pid, sub.game),
    )
    _merge_substats(ctx, stats, substats, node.path)
    survived = yield from _charge_serial(
        ctx, node, substats.cost, stats, _serial_parts(ctx.cost_model, substats)
    )
    yield from _finish_node(
        ctx,
        node,
        stats,
        pid,
        value=result.value if survived else None,
        refute_if_cut=not survived,
    )


def _mark_refuted_if_cut(ctx: _Context, node: PNode) -> None:
    """After an abort caused by a live-window cutoff, record "refuted".

    Fail-hard semantics: a node cut off at ``beta`` stands for "at least
    beta", which its parent folds in as a no-op or a legitimate floor.
    Aborts caused purely by a finished ancestor leave the value alone —
    combine ignores the orphaned subtree entirely.
    """
    if node.done or ctx.has_finished_ancestor(node):
        return
    if ctx.is_cut_off(node):
        _, beta = ctx.window(node)
        if beta != POS_INF and beta > node.value:
            node.value = beta


def _serial_refute_remaining(
    ctx: _Context, node: PNode, stats: SearchStats, window: tuple[float, float], pid: int = 0
) -> Generator[Op, None, None]:
    """Serially refute children[next_child:] of an r-node at serial depth.

    This happens when an undecided node whose first child was already
    evaluated is converted to an r-node at the serial boundary: the
    remaining children are searched one by one with the tightening bound,
    exactly as serial ER's Refute_rest would.
    """
    alpha, beta = window
    yield Acquire(ctx.tree_lock)
    ctx._note(node, _trace.READ)
    moot = node.done  # finished concurrently (e.g. cut off by a late combine)
    value = max(node.value, alpha)
    start = node.next_child
    yield Release(ctx.tree_lock)
    if moot:
        return
    if value >= beta:
        # Refuted between the pop-time screen and now (a sibling's result
        # tightened the window): record and combine without searching.
        yield from _finish_node(ctx, node, stats, pid, value=value)
        return
    assert node.child_positions is not None
    for index in range(start, node.n_children):
        sub = subproblem(ctx.problem, node.child_positions[index], node.ply + 1)
        substats = SearchStats.with_trace() if ctx.trace else SearchStats()
        result = er_search(
            sub, -beta, -value, cost_model=ctx.cost_model, stats=substats,
            table=_tt_view(ctx, pid), evaluator=ctx.evaluator_for(pid, sub.game),
        )
        _merge_substats(ctx, stats, substats, node.path + (index,))
        survived = yield from _charge_serial(
            ctx, node, substats.cost, stats, _serial_parts(ctx.cost_model, substats)
        )
        yield Acquire(ctx.tree_lock)
        ctx._bump("serial_searches")
        if survived:
            ctx._note(node, _trace.WRITE)
            node.next_child = index + 1
        yield Release(ctx.tree_lock)
        if not survived:
            break
        if -result.value > value:
            value = -result.value
        if value >= beta:
            stats.on_cutoff()
            break
    yield from _finish_node(ctx, node, stats, pid, value=value)


def parallel_er(
    problem: SearchProblem,
    n_processors: int,
    *,
    config: ERConfig = ERConfig(),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    trace: bool = False,
    record_timeline: bool = False,
    tt: Optional[AnyTT] = None,
    eval_cache: Optional[AnyEvalCache] = None,
    batch_eval: bool = False,
) -> ParallelResult:
    """Run parallel ER on ``n_processors`` simulated processors.

    Args:
        problem: the game and horizon to search.
        n_processors: simulated processor count (the paper sweeps 1–16).
        config: algorithm tunables; the default enables all three
            speculative mechanisms, like the paper's implementation.
        cost_model: operation costs; must match the serial baseline's when
            computing speedups.
        trace: record every visited node path (enables loss analysis at
            some memory cost).
        record_timeline: record per-processor (kind, start, end) schedule
            intervals for :func:`repro.analysis.gantt.render_gantt`.
        tt: optional shared or per-worker transposition table
            (:func:`repro.cache.make_tt`); a shared table passed across
            successive calls carries results between runs, which is where
            the node savings come from on transposition-free random trees.
        eval_cache: optional Zobrist-keyed static-value cache
            (:func:`repro.eval.make_eval_cache`); parallel-level leaves
            probe/store it through simulator ops, serial subtrees through
            an :class:`~repro.eval.Evaluator`.  Implies batched misses.
        batch_eval: batch frontier evaluations in serial subtrees even
            without a cache (``batch_eval_base``/``per_leaf`` charging).

    Returns:
        A :class:`~repro.parallel.base.ParallelResult` whose ``value``
        equals the serial root value (asserted across the test suite).
    """
    if n_processors < 1:
        raise SearchError("need at least one processor")
    bus = _obs.CURRENT
    prev_clock = None
    if bus is not None:
        # Setup emits telemetry too (the root push lands in the heap
        # before the engine installs its clock); pin simulated time zero
        # and task -1 so every setup event is deterministic rather than
        # stamped with a wall clock and an OS thread id.
        prev_clock = bus.use_clock(lambda: 0.0)
        _obs.set_task(-1)
    try:
        ctx = _Context(
            problem, cost_model, config, trace, n_processors=n_processors,
            tt=tt, eval_cache=eval_cache, batch_eval=batch_eval,
        )
        worker_stats = [
            SearchStats.with_trace() if trace else SearchStats() for _ in range(n_processors)
        ]
        workers = [_worker(ctx, worker_stats[i], pid=i) for i in range(n_processors)]
        report = Engine(
            workers, max_events=config.max_events, record_timeline=record_timeline
        ).run()
    finally:
        if bus is not None:
            bus.use_clock(prev_clock)
            _obs.set_task(None)
    if not ctx.done:
        raise SimulationError("parallel ER finished without combining the root")
    merged = SearchStats.with_trace() if trace else SearchStats()
    for ws in worker_stats:
        merged.merge(ws)
    return ParallelResult(
        value=ctx.root.value,
        n_processors=n_processors,
        report=report,
        stats=merged,
        algorithm="er",
        extras=_extras_with_tt(ctx),
    )
