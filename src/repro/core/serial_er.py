"""Serial ER — the Evaluate/Refute algorithm of Figure 8 of the paper.

Game-tree search is viewed as *evaluating* one child of each node (the
e-child) and *refuting* the rest (Section 5).  Instead of committing to an
e-child up front as alpha-beta implicitly does, ER first evaluates the
*elder grandchildren* — the first child of each child — then picks the
child with the best resulting bound as the e-child, finishes evaluating
it, and refutes the remaining children in ascending order of their
tentative values.

Three deliberate deviations from the paper's literal pseudocode, which is
sloppy in ways that break correctness (documented here because tests pin
them down):

1. ``Refute_rest`` does *not* reset the node's value to alpha: the bound
   established by ``Eval_first`` (the fully evaluated first child) is a
   sound lower bound and discarding it can overstate the parent's value.
2. ``Eval_first`` records a leaf's static value in the node record (the
   paper's version returns it but leaves ``value`` stale, which would
   corrupt the tentative-value sort).
3. Children of e-nodes are never statically pre-sorted — the tentative
   values from elder-grandchild evaluation order them for free — while
   children generated inside ``Eval_first``/``Refute_rest`` are pre-sorted
   according to the problem's ordering policy.  This matches Section 7
   ("successors of e-nodes were also not sorted") and is what lets serial
   ER beat alpha-beta on tree O1 despite examining more nodes.

Transposition table (``table=`` parameter): when given a table view, the
search probes at every ``ER``/``Eval_first``/``Refute_rest`` entry and
stores at every *completed* exit.  Soundness rests on two rules pinned by
the differential battery:

* A probe only substitutes an entry proven at at least the needed
  remaining depth whose bound answers the current window (EXACT, or
  LOWER with value >= beta, or UPPER with value <= alpha).
* A store classifies the finished value against the window the node
  actually ran with and *clamps bound values to the window edge*: the
  fail-hard recursion here guarantees ``true >= beta`` on a fail-high
  and ``true <= alpha`` on a fail-low, but not ``true >= v`` for an
  overshooting ``v`` — storing the edge is airtight, storing ``v`` is
  not.  Incomplete ``Eval_first`` bounds (``done`` still false) are
  never stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..eval.evaluator import Evaluator
from ..games.base import NEG_INF, POS_INF, Path, Position, SearchProblem, hash_key
from ..search.stats import SearchResult, SearchStats
from ..search.transposition import Bound, TTEntry


class TTView(Protocol):
    """What serial ER needs from a transposition table.

    Satisfied by :class:`~repro.search.transposition.TranspositionTable`,
    every :mod:`repro.cache` table, and the per-worker views the parallel
    drivers hand to their serial subtrees.  Parameters are positional-only
    so implementations may name the key whatever fits their keying scheme.
    """

    def probe(self, key: int, /) -> Optional[TTEntry]: ...

    def store(self, key: int, entry: TTEntry, /) -> None: ...


@dataclass
class ERRecord:
    """Per-node state of Figure 8: tentative value, done flag, children."""

    position: Position
    path: Path
    ply: int
    value: float = NEG_INF
    done: bool = False
    children: Optional[list["ERRecord"]] = None
    is_leaf: bool = False
    key: Optional[int] = None  # lazily computed transposition key
    #: Static value prefetched by a horizon-frontier batch (cost already
    #: charged as a batch share); consumed by ``_leaf_value``.
    prefetched: Optional[float] = None


class _SerialER:
    """One serial ER search; instances are single-use."""

    def __init__(
        self,
        problem: SearchProblem,
        cost_model: CostModel,
        stats: SearchStats,
        table: Optional[TTView] = None,
        evaluator: Optional[Evaluator] = None,
    ):
        self.problem = problem
        self.cost_model = cost_model
        self.stats = stats
        self.table = table
        self.evaluator = evaluator

    # -- transposition table ---------------------------------------------

    def _key(self, record: ERRecord) -> int:
        if record.key is None:
            record.key = hash_key(self.problem.game, record.position)
        return record.key

    def _tt_probe(self, record: ERRecord, alpha: float, beta: float) -> Optional[float]:
        """Answer ``record`` from the table if a usable entry exists.

        A usable entry finishes the record (``done`` set, value adopted);
        the caller returns the value as if the subtree had been searched.
        """
        if self.table is None:
            return None
        self.stats.on_tt_probe(self.cost_model)
        entry = self.table.probe(self._key(record))
        if entry is None or entry.depth < self.problem.depth - record.ply:
            return None
        usable = (
            entry.bound is Bound.EXACT
            or (entry.bound is Bound.LOWER and entry.value >= beta)
            or (entry.bound is Bound.UPPER and entry.value <= alpha)
        )
        if not usable:
            return None
        record.value = entry.value
        record.done = True
        return entry.value

    def _tt_store(self, record: ERRecord, value: float, alpha: float, beta: float) -> None:
        """Store a *finished* result, classified against its window.

        Bound values clamp to the window edge (module docstring); stores
        whose edge is infinite carry no information and are skipped.  ER
        has no hash-move concept (children are ordered by tentative
        values, not table hints), so ``best_move`` is never recorded.
        """
        if self.table is None:
            return
        remaining = self.problem.depth - record.ply
        if value >= beta:
            if beta == POS_INF:
                return
            entry = TTEntry(beta, remaining, Bound.LOWER, None)
        elif value <= alpha:
            if alpha == NEG_INF:
                return
            entry = TTEntry(alpha, remaining, Bound.UPPER, None)
        else:
            entry = TTEntry(value, remaining, Bound.EXACT, None)
        self.stats.on_tt_store(self.cost_model)
        self.table.store(self._key(record), entry)

    def _tt_store_leaf(self, record: ERRecord) -> None:
        """A static leaf value is exact for its remaining depth."""
        if self.table is None:
            return
        remaining = self.problem.depth - record.ply
        self.stats.on_tt_store(self.cost_model)
        self.table.store(self._key(record), TTEntry(record.value, remaining, Bound.EXACT, None))

    # -- tree plumbing ---------------------------------------------------

    def _expand(self, record: ERRecord, sort: bool) -> list[ERRecord]:
        """Generate (once) and cache the children of ``record``."""
        if record.children is not None:
            return record.children
        game = self.problem.game
        successors = (
            () if self.problem.is_horizon(record.ply) else game.children(record.position)
        )
        if not successors:
            record.is_leaf = True
            record.children = []
            return record.children
        self.stats.on_expand(record.path, len(successors), self.cost_model)
        order = list(range(len(successors)))
        batched: Optional[list[float]] = None
        if sort and self.problem.should_sort(record.ply):
            if self.evaluator is not None:
                self.stats.note_ordering(len(successors))
                batched, _ = self.evaluator.frontier_values(successors, self.stats)
                static = batched
            else:
                self.stats.on_ordering(len(successors), self.cost_model)
                static = [game.evaluate(child) for child in successors]
            order.sort(key=static.__getitem__)
        record.children = [
            ERRecord(successors[index], record.path + (index,), record.ply + 1)
            for index in order
        ]
        # Horizon-frontier prefetch: when every child sits on the horizon,
        # evaluate them as one batch now and stash the values (reusing the
        # ordering batch when one was just computed).  Children skipped by
        # a later cutoff were evaluated speculatively — that is the
        # batching trade (amortized cost for possible over-eval); the
        # values themselves are pinned to the scalar evaluator, so the
        # root value cannot change.
        if self.evaluator is not None and self.problem.is_horizon(record.ply + 1):
            if batched is None:
                batched, _ = self.evaluator.frontier_values(successors, self.stats)
            for child, index in zip(record.children, order):
                child.prefetched = batched[index]
        return record.children

    def _leaf_value(self, record: ERRecord) -> float:
        if record.prefetched is not None:
            self.stats.note_leaf(record.path)
            return record.prefetched
        if self.evaluator is not None:
            # A leaf outside any prefetched frontier (game-terminal above
            # the horizon, or the subtree root itself): a batch of one,
            # through the cache if attached.
            self.stats.note_leaf(record.path)
            return self.evaluator.single_value(record.position, self.stats)
        self.stats.on_leaf(record.path, self.cost_model)
        return self.problem.game.evaluate(record.position)

    # -- Figure 8, function ER -------------------------------------------

    def evaluate(self, record: ERRecord, alpha: float, beta: float) -> float:
        """Fully evaluate ``record`` (the paper's function ``ER``)."""
        hit = self._tt_probe(record, alpha, beta)
        if hit is not None:
            return hit
        children = self._expand(record, sort=False)
        if record.is_leaf:
            record.value = self._leaf_value(record)
            record.done = True
            self._tt_store_leaf(record)
            return record.value
        record.value = alpha
        # Phase 1: evaluate the elder grandchild below every child.
        for child in children:
            t = -self.eval_first(child, -beta, -record.value)
            if child.done:
                if t > record.value:
                    record.value = t
                if record.value >= beta:
                    self.stats.on_cutoff()
                    self._tt_store(record, record.value, alpha, beta)
                    return record.value
        # Phase 2: the child with the lowest tentative value becomes the
        # e-child (first in this order); the rest are refuted in turn.
        for child in sorted(children, key=lambda c: c.value):
            if child.done:
                continue
            t = -self.refute_rest(child, -beta, -record.value)
            if t > record.value:
                record.value = t
            if record.value >= beta:
                self.stats.on_cutoff()
                self._tt_store(record, record.value, alpha, beta)
                return record.value
        self._tt_store(record, record.value, alpha, beta)
        return record.value

    # -- Figure 8, function Eval_first -----------------------------------

    def eval_first(self, record: ERRecord, alpha: float, beta: float) -> float:
        """Evaluate only the first child of ``record``, setting a bound."""
        hit = self._tt_probe(record, alpha, beta)
        if hit is not None:
            return hit
        children = self._expand(record, sort=True)
        if record.is_leaf:
            record.value = self._leaf_value(record)
            record.done = True
            self._tt_store_leaf(record)
            return record.value
        record.value = alpha
        t = -self.evaluate(children[0], -beta, -record.value)
        if t > record.value:
            record.value = t
        record.done = record.value >= beta or len(children) == 1
        if record.value >= beta:
            self.stats.on_cutoff()
        if record.done:
            # A cutoff or a single child makes this a *finished* result;
            # the usual incomplete Eval_first bound is never stored.
            self._tt_store(record, record.value, alpha, beta)
        return record.value

    # -- Figure 8, function Refute_rest -----------------------------------

    def refute_rest(self, record: ERRecord, alpha: float, beta: float) -> float:
        """Examine the remaining children of ``record`` (first already done).

        ``record.value`` already holds the bound from ``Eval_first``; it is
        kept (deviation 1 in the module docstring) and only raised.
        """
        hit = self._tt_probe(record, alpha, beta)
        if hit is not None:
            return hit
        if alpha > record.value:
            record.value = alpha
        assert record.children is not None, "Refute_rest requires Eval_first"
        for child in record.children[1:]:
            t = -self.eval_first(child, -beta, -record.value)
            if not child.done:
                t = -self.refute_rest(child, -beta, -record.value)
            if t > record.value:
                record.value = t
            if record.value >= beta:
                self.stats.on_cutoff()
                record.done = True
                self._tt_store(record, record.value, alpha, beta)
                return record.value
        record.done = True
        self._tt_store(record, record.value, alpha, beta)
        return record.value


def er_search(
    problem: SearchProblem,
    alpha: float = NEG_INF,
    beta: float = POS_INF,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
    table: Optional[TTView] = None,
    evaluator: Optional[Evaluator] = None,
) -> SearchResult:
    """Evaluate the root of ``problem`` with serial ER.

    With the open window the result equals negmax's value exactly (the
    test suite cross-checks this against negmax and alpha-beta on random,
    synthetic, and real game trees).  ``table``, when given, caches and
    reuses finished results across transpositions — and, when shared,
    across searches (module docstring explains the probe/store rules).
    ``evaluator``, when given, batches horizon-frontier leaf evaluations
    (and routes them through its eval cache, if attached) — the values
    are pinned to the scalar evaluator, so the result is unchanged and
    only the cost accounting moves.
    """
    if stats is None:
        stats = SearchStats()
    if not alpha < beta:
        raise ValueError("ER window requires alpha < beta")
    searcher = _SerialER(problem, cost_model, stats, table, evaluator)
    root = ERRecord(problem.game.root(), (), 0)
    value = searcher.evaluate(root, alpha, beta)
    return SearchResult(value=value, stats=stats)
