"""The paper's contribution: serial and parallel ER."""

from .er_parallel import ERConfig, PNode, parallel_er
from .er_queues import PrimaryQueue, SpeculativeQueue, SpecOrder
from .serial_er import ERRecord, er_search

__all__ = [
    "er_search",
    "ERRecord",
    "parallel_er",
    "ERConfig",
    "PNode",
    "PrimaryQueue",
    "SpeculativeQueue",
    "SpecOrder",
]
