"""Cross-process transposition table over ``multiprocessing.shared_memory``.

The striped tables in :mod:`repro.cache.striped` share Python objects,
which processes cannot.  This variant packs entries into a fixed-slot
byte array that every worker process maps, with one
``multiprocessing.Lock`` per stripe for mutual exclusion.  Layout:

* ``capacity`` slots of 28 bytes: ``<QdiiB3x`` — key (u64), value (f64),
  depth (i32), best_move (i32, ``-1`` encodes ``None``), bound (u8,
  EXACT/LOWER/UPPER as 0/1/2), 3 pad bytes.
* key ``0`` marks an empty slot; the (astronomically unlikely) real key
  ``0`` is remapped to a fixed nonzero alias, costing at most one false
  transposition pairing between two positions that hash to those values.
* stripe ``s`` owns the contiguous slot range
  ``[s * slots_per_stripe, (s + 1) * slots_per_stripe)``; a key's home
  stripe is ``key % n_stripes`` and its bucket is a ``WAYS``-slot window
  at ``(key // n_stripes) % slots_per_stripe`` (wrapping within the
  stripe).

Replacement is depth-preferred, mirroring
:class:`~repro.search.transposition.TranspositionTable`: a store lands in
an empty slot, else overwrites its own key when at least as deep, else
overwrites the shallowest bucket resident when at least as deep as it —
otherwise the store is dropped and counted as a collision.  There is no
LRU component: fixed slots cannot cheaply track recency across
processes, and depth is the signal that matters for search caches.

Lifecycle: the coordinator constructs the table (creating the segment),
ships ``handle()`` plus the stripe locks to workers through the pool
initializer, and calls :meth:`unlink` in a ``finally``; workers
:meth:`attach` and :meth:`close` on exit.  Counters are process-local —
the coordinator aggregates workers' counts from their task results, not
from this object.
"""

from __future__ import annotations

import multiprocessing
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Optional, Sequence

from ..errors import SearchError
from ..obs import live as _live
from ..search.transposition import Bound, TTEntry

#: One packed slot: key, value, depth, best_move, bound, padding.
_RECORD = struct.Struct("<QdiiB3x")

#: Bucket associativity: how many slots a key may occupy within its stripe.
WAYS = 4

_MASK64 = (1 << 64) - 1
#: Stand-in for a real key of 0 (0 is the empty-slot sentinel).
_ZERO_KEY_ALIAS = 0x9E3779B97F4A7C15

_BOUND_TO_CODE = {Bound.EXACT: 0, Bound.LOWER: 1, Bound.UPPER: 2}
_CODE_TO_BOUND = (Bound.EXACT, Bound.LOWER, Bound.UPPER)


@dataclass(frozen=True)
class TTHandle:
    """Picklable description of a shared table (locks travel separately —
    ``multiprocessing`` primitives may only cross via process inheritance,
    e.g. pool-initializer args)."""

    shm_name: str
    capacity: int
    n_stripes: int


class SharedMemoryTT:
    """Fixed-slot transposition table in a shared-memory segment.

    Args:
        capacity: total slot count (rounded down to a multiple of
            ``n_stripes``).
        n_stripes: independent lock domains; also the key partition.
        locks: per-stripe locks — omit to create them (coordinator side),
            pass the inherited ones when attaching (worker side).
    """

    def __init__(
        self,
        capacity: int = 1 << 14,
        n_stripes: int = 8,
        *,
        locks: Optional[Sequence[Any]] = None,
        _shm: Optional[shared_memory.SharedMemory] = None,
    ):
        if n_stripes < 1:
            raise SearchError("need at least one stripe")
        if capacity < n_stripes:
            raise SearchError("need at least one slot per stripe")
        self.n_stripes = n_stripes
        self.slots_per_stripe = capacity // n_stripes
        self.capacity = self.slots_per_stripe * n_stripes
        if locks is not None and len(locks) != n_stripes:
            raise SearchError("need exactly one lock per stripe")
        self._locks: Sequence[Any] = (
            locks if locks is not None else [multiprocessing.Lock() for _ in range(n_stripes)]
        )
        if _shm is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=self.capacity * _RECORD.size
            )
            # Linux zero-fills fresh segments, but the empty-slot sentinel
            # is load-bearing enough to not depend on platform behavior.
            self._shm.buf[: self.capacity * _RECORD.size] = bytes(self.capacity * _RECORD.size)
            self._owner = True
        else:
            self._shm = _shm
            self._owner = False
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Stores dropped because every bucket resident was deeper.
        self.collisions = 0
        #: Category this table's probe/store spans carry on the live
        #: ring ("tt"; the eval-cache adapter relabels its table "eval").
        self.span_cat = "tt"

    # -- lifecycle ---------------------------------------------------------

    def handle(self) -> TTHandle:
        return TTHandle(self._shm.name, self.capacity, self.n_stripes)

    @property
    def locks(self) -> Sequence[Any]:
        """The stripe locks, for shipping through a pool initializer."""
        return self._locks

    @classmethod
    def attach(cls, handle: TTHandle, locks: Sequence[Any]) -> "SharedMemoryTT":
        """Map an existing segment (worker side).

        Pool workers inherit the coordinator's resource-tracker process,
        whose registration cache is an idempotent name set — re-attaching
        here is a no-op there, and the coordinator's :meth:`unlink` is
        the single deregistration.  (The classic "unregister on attach"
        recipe is for *unrelated* processes with their own tracker; with
        a shared tracker it would strip the coordinator's registration
        and make the final unlink complain.)
        """
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        return cls(handle.capacity, handle.n_stripes, locks=locks, _shm=shm)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only, after every worker closed)."""
        if self._owner:
            self._shm.unlink()

    # -- addressing --------------------------------------------------------

    @staticmethod
    def _norm(key: int) -> int:
        key &= _MASK64
        return key if key != 0 else _ZERO_KEY_ALIAS

    def _bucket_offsets(self, key: int) -> list[int]:
        stripe = key % self.n_stripes
        home = (key // self.n_stripes) % self.slots_per_stripe
        base = stripe * self.slots_per_stripe
        ways = min(WAYS, self.slots_per_stripe)
        return [
            (base + (home + j) % self.slots_per_stripe) * _RECORD.size for j in range(ways)
        ]

    def _read(self, offset: int) -> tuple[int, float, int, int, int]:
        key, value, depth, move, bound = _RECORD.unpack_from(self._shm.buf, offset)
        return int(key), float(value), int(depth), int(move), int(bound)

    def _write(self, offset: int, key: int, entry: TTEntry) -> None:
        move = -1 if entry.best_move is None else entry.best_move
        _RECORD.pack_into(
            self._shm.buf,
            offset,
            key,
            entry.value,
            entry.depth,
            move,
            _BOUND_TO_CODE[entry.bound],
        )

    # -- table protocol ----------------------------------------------------

    def probe(self, key: int) -> Optional[TTEntry]:
        # Span recording is two ring calls around the locked section;
        # with no ring installed it is one module-global load.
        ring = _live.RING
        token = ring.begin() if ring is not None else -1.0
        entry = self._probe_impl(key)
        if ring is not None:
            ring.end(self.span_cat, "probe", token)
        return entry

    def _probe_impl(self, key: int) -> Optional[TTEntry]:
        key = self._norm(key)
        stripe = key % self.n_stripes
        with self._locks[stripe]:
            for offset in self._bucket_offsets(key):
                slot_key, value, depth, move, bound = self._read(offset)
                if slot_key == key:
                    self.hits += 1
                    return TTEntry(
                        value, depth, _CODE_TO_BOUND[bound], None if move < 0 else move
                    )
        self.misses += 1
        return None

    def store(self, key: int, entry: TTEntry) -> None:
        ring = _live.RING
        token = ring.begin() if ring is not None else -1.0
        self._store_impl(key, entry)
        if ring is not None:
            ring.end(self.span_cat, "store", token)

    def _store_impl(self, key: int, entry: TTEntry) -> None:
        key = self._norm(key)
        stripe = key % self.n_stripes
        with self._locks[stripe]:
            empty_offset: Optional[int] = None
            victim_offset: Optional[int] = None
            victim_depth = 0
            for offset in self._bucket_offsets(key):
                slot_key, _value, depth, _move, _bound = self._read(offset)
                if slot_key == key:
                    if entry.depth >= depth:
                        self._write(offset, key, entry)
                        self.stores += 1
                    return  # keep the deeper resident
                if slot_key == 0:
                    if empty_offset is None:
                        empty_offset = offset
                elif victim_offset is None or depth < victim_depth:
                    victim_offset = offset
                    victim_depth = depth
            if empty_offset is not None:
                self._write(empty_offset, key, entry)
                self.stores += 1
            elif victim_offset is not None and entry.depth >= victim_depth:
                self._write(victim_offset, key, entry)
                self.stores += 1
                self.evictions += 1
            else:
                self.collisions += 1

    def __len__(self) -> int:
        """Occupied slots (full scan; for tests and reports, not hot paths)."""
        occupied = 0
        for slot in range(self.capacity):
            (slot_key,) = struct.unpack_from("<Q", self._shm.buf, slot * _RECORD.size)
            if slot_key != 0:
                occupied += 1
        return occupied

    def clear(self) -> None:
        for stripe in range(self.n_stripes):
            base = stripe * self.slots_per_stripe * _RECORD.size
            span = self.slots_per_stripe * _RECORD.size
            with self._locks[stripe]:
                self._shm.buf[base : base + span] = bytes(span)

    def counter_snapshot(self) -> dict[str, int]:
        return {
            "tt_hits": self.hits,
            "tt_misses": self.misses,
            "tt_stores": self.stores,
            "tt_evictions": self.evictions,
            "tt_collisions": self.collisions,
        }
