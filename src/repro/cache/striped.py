"""Lock-striped concurrent transposition tables for the parallel backends.

The serial :class:`~repro.search.transposition.TranspositionTable` is a
single ``OrderedDict`` — correct under one thread, a global serial
bottleneck under many.  :class:`StripedTT` partitions the key space over
``n_stripes`` independent tables, each guarded by its own
``threading.Lock``, so probes and stores on different stripes never
contend.  Keys are the 64-bit Zobrist values produced by
:func:`repro.games.base.hash_key`; ``stripe_of`` is a plain modulus,
which is uniform because splitmix64-derived keys are.

Three variants cover the three backends' execution models:

* :class:`StripedTT` — direct thread-safe ``probe``/``store``; what the
  threaded backend's serial subtrees and the stress tests hammer.
* :class:`SimStripedTT` — adds generator ops (``probe_op``/``store_op``)
  that yield :class:`~repro.sim.ops.Acquire`/:class:`~repro.sim.ops.Compute`/
  :class:`~repro.sim.ops.Release` on per-stripe
  :class:`~repro.sim.locks.SimLock` objects, so the discrete-event engine
  charges ``CostModel.tt_probe``/``tt_store`` and accounts stripe
  contention as interference loss, exactly like heap and tree locks.
  The same ops run unchanged on the threaded driver, which maps the
  SimLocks to real locks.
* :class:`WorkerLocalTT` — the ``--tt private`` baseline: one table per
  worker, ops charge compute cost but never contend.  The gap between
  private and shared on one workload is the measured value of sharing.

Locking discipline (load-bearing): the *real* mutual exclusion for every
code path is the internal per-stripe ``threading.Lock`` held around the
dict access.  The SimLocks exist only for simulated-time accounting —
the threaded driver maps each SimLock to its own real lock, which would
be a *different* object than anything guarding direct serial-path calls,
so relying on it for exclusion would race.  Op generators acquire the
SimLock (timing) and then the internal lock (safety); the internal locks
are leaves — no other lock is ever taken while one is held — so they
cannot introduce ordering cycles.  TT ops must be issued with no heap or
tree lock held (VER001 enforces this for the worker generators).
"""

from __future__ import annotations

import threading
from typing import Generator, Optional, Union

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..obs import events as _obs
from ..search.transposition import TranspositionTable, TTEntry
from ..sim.locks import SimLock
from ..sim.ops import Acquire, Compute, Op, Release
from ..verify import trace as _trace

#: Generator type of a table op: yields simulator ops, returns the probe
#: result (or ``None`` for stores).
TTProbeOp = Generator[Op, None, Optional[TTEntry]]
TTStoreOp = Generator[Op, None, None]

#: Accepted values of every ``--tt`` flag and ``tt`` config field.
TT_MODES = ("off", "private", "shared")


class StripedTT:
    """Concurrent transposition table: N independently locked stripes.

    Args:
        capacity: total entry budget, split evenly across stripes (each
            stripe holds at least one entry).
        n_stripes: number of independent partitions; more stripes means
            less contention and proportionally smaller per-stripe LRU
            windows.

    Each stripe is a full :class:`TranspositionTable`, so depth-preferred
    replacement and bound semantics are inherited, not reimplemented.
    Counter properties aggregate across stripes; reads are lock-free and
    therefore approximate while writers are active, exact once quiescent.
    """

    def __init__(self, capacity: int = 1 << 16, n_stripes: int = 8):
        if n_stripes < 1:
            raise SearchError("need at least one stripe")
        if capacity < 1:
            raise SearchError("table capacity must be positive")
        self.n_stripes = n_stripes
        self.capacity = capacity
        per_stripe = max(1, capacity // n_stripes)
        self._tables = tuple(TranspositionTable(capacity=per_stripe) for _ in range(n_stripes))
        self._real_locks = tuple(threading.Lock() for _ in range(n_stripes))
        #: Times an op generator found its stripe's SimLock already held.
        self.contended = 0

    def stripe_of(self, key: int) -> int:
        return key % self.n_stripes

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    def view(self, pid: int) -> "StripedTT":
        """The per-worker handle — every worker shares this one table."""
        return self

    def probe(self, key: int) -> Optional[TTEntry]:
        index = self.stripe_of(key)
        with self._real_locks[index]:
            if _trace.CURRENT is not None:
                # Mirror the threaded driver's discipline: ACQUIRE after
                # the real acquire, RELEASE before the real release, and
                # a WRITE access (probe refreshes LRU order) in between,
                # so the race detector sees a properly locked mutation.
                _trace.on_acquire(f"tt-stripe-{index}")
                _trace.on_access(f"tt.stripe{index}", _trace.WRITE)
                entry = self._tables[index].probe(key)
                _trace.on_release(f"tt-stripe-{index}")
            else:
                entry = self._tables[index].probe(key)
        return entry

    def store(self, key: int, entry: TTEntry) -> None:
        index = self.stripe_of(key)
        with self._real_locks[index]:
            if _trace.CURRENT is not None:
                _trace.on_acquire(f"tt-stripe-{index}")
                _trace.on_access(f"tt.stripe{index}", _trace.WRITE)
                self._tables[index].store(key, entry)
                _trace.on_release(f"tt-stripe-{index}")
            else:
                self._tables[index].store(key, entry)

    def clear(self) -> None:
        for index, table in enumerate(self._tables):
            with self._real_locks[index]:
                table.clear()

    @property
    def hits(self) -> int:
        return sum(table.hits for table in self._tables)

    @property
    def misses(self) -> int:
        return sum(table.misses for table in self._tables)

    @property
    def stores(self) -> int:
        return sum(table.stores for table in self._tables)

    @property
    def evictions(self) -> int:
        return sum(table.evictions for table in self._tables)

    def counter_snapshot(self) -> dict[str, int]:
        """Counters in the shape the drivers' ``extras`` dicts carry."""
        return {
            "tt_hits": self.hits,
            "tt_misses": self.misses,
            "tt_stores": self.stores,
            "tt_evictions": self.evictions,
            "tt_contended": self.contended,
        }


class SimStripedTT(StripedTT):
    """:class:`StripedTT` whose ops run on the simulated (or threaded) clock.

    ``probe_op``/``store_op`` are worker-generator fragments: call them
    with ``yield from`` and no locks held.  Each contends for the
    stripe's :class:`SimLock` (interference accounting), charges the cost
    model's ``tt_probe``/``tt_store``, performs the dict work under the
    internal real lock, and emits one telemetry event.  Direct
    ``probe``/``store`` calls (the serial-subtree path) stay silent on
    the bus — at thousands per node they would drown it — but still land
    in the table counters.
    """

    def __init__(
        self,
        capacity: int = 1 << 16,
        n_stripes: int = 8,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        super().__init__(capacity, n_stripes)
        self.cost_model = cost_model
        self._sim_locks = tuple(SimLock(f"tt-stripe-{i}") for i in range(n_stripes))

    def view(self, pid: int) -> "SimStripedTT":
        return self

    def _note_contention(self, index: int, op: str) -> None:
        # Meaningful on the simulator, where ``holder`` tracks ownership
        # in simulated time; the threaded driver never sets it, so real
        # threads report contention through lock-wait timings instead.
        if self._sim_locks[index].holder is not None:
            self.contended += 1
            if _obs.CURRENT is not None:
                _obs.CURRENT.emit(_obs.EV_TT_CONTENTION, stripe=index, op=op)

    def probe_op(self, key: int) -> TTProbeOp:
        index = self.stripe_of(key)
        lock = self._sim_locks[index]
        self._note_contention(index, "probe")
        yield Acquire(lock)
        yield Compute(self.cost_model.tt_probe, tag="tt_probe")
        with self._real_locks[index]:
            entry = self._tables[index].probe(key)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_TT_PROBE, stripe=index, hit=entry is not None)
        yield Release(lock)
        return entry

    def store_op(self, key: int, entry: TTEntry) -> TTStoreOp:
        index = self.stripe_of(key)
        lock = self._sim_locks[index]
        self._note_contention(index, "store")
        yield Acquire(lock)
        yield Compute(self.cost_model.tt_store, tag="tt_store")
        table = self._tables[index]
        with self._real_locks[index]:
            evictions_before = table.evictions
            table.store(key, entry)
            evicted = table.evictions > evictions_before
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_TT_STORE, stripe=index, evicted=evicted)
        yield Release(lock)


class _PrivateView:
    """One worker's private table plus cost-charging op wrappers.

    No locks anywhere: only its owning worker ever touches it (each pid
    is driven by exactly one thread/processor in every backend).
    """

    def __init__(self, capacity: int, cost_model: CostModel, pid: int):
        self.pid = pid
        self._table = TranspositionTable(capacity=capacity)
        self._cost_model = cost_model

    def __len__(self) -> int:
        return len(self._table)

    @property
    def table(self) -> TranspositionTable:
        return self._table

    def probe(self, key: int) -> Optional[TTEntry]:
        return self._table.probe(key)

    def store(self, key: int, entry: TTEntry) -> None:
        self._table.store(key, entry)

    def probe_op(self, key: int) -> TTProbeOp:
        yield Compute(self._cost_model.tt_probe, tag="tt_probe")
        entry = self._table.probe(key)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_TT_PROBE, stripe=-1, hit=entry is not None)
        return entry

    def store_op(self, key: int, entry: TTEntry) -> TTStoreOp:
        yield Compute(self._cost_model.tt_store, tag="tt_store")
        evictions_before = self._table.evictions
        self._table.store(key, entry)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(
                _obs.EV_TT_STORE, stripe=-1, evicted=self._table.evictions > evictions_before
            )


class WorkerLocalTT:
    """Per-worker private tables — the ``--tt private`` baseline.

    Every worker pays the same probe/store compute costs as the shared
    variants but never contends and never benefits from a peer's work;
    comparing it against :class:`SimStripedTT` on one workload isolates
    the value of *sharing* from the value of *caching*.

    Args:
        capacity: entry budget **per worker** (not split — a private
            table the size of one shared stripe would handicap the
            baseline for free).
    """

    def __init__(self, capacity: int = 1 << 16, *, cost_model: CostModel = DEFAULT_COST_MODEL):
        if capacity < 1:
            raise SearchError("table capacity must be positive")
        self.capacity = capacity
        self.cost_model = cost_model
        self.contended = 0  # private tables never contend; kept for shape
        self._views: dict[int, _PrivateView] = {}

    def view(self, pid: int) -> _PrivateView:
        # dict.setdefault is GIL-atomic; each pid is requested by one
        # worker anyway, so the racy double-construction cannot happen.
        return self._views.setdefault(pid, _PrivateView(self.capacity, self.cost_model, pid))

    def __len__(self) -> int:
        return sum(len(view) for view in self._views.values())

    def clear(self) -> None:
        for view in self._views.values():
            view.table.clear()

    @property
    def hits(self) -> int:
        return sum(view.table.hits for view in self._views.values())

    @property
    def misses(self) -> int:
        return sum(view.table.misses for view in self._views.values())

    @property
    def stores(self) -> int:
        return sum(view.table.stores for view in self._views.values())

    @property
    def evictions(self) -> int:
        return sum(view.table.evictions for view in self._views.values())

    def counter_snapshot(self) -> dict[str, int]:
        return {
            "tt_hits": self.hits,
            "tt_misses": self.misses,
            "tt_stores": self.stores,
            "tt_evictions": self.evictions,
            "tt_contended": 0,
        }


#: What the sim/threaded drivers accept as a table.
AnyTT = Union[SimStripedTT, WorkerLocalTT]


def make_tt(
    mode: str,
    *,
    capacity: int = 1 << 16,
    n_stripes: int = 8,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[AnyTT]:
    """Build the table for one ``--tt`` mode (``None`` for ``off``)."""
    if mode == "off":
        return None
    if mode == "private":
        return WorkerLocalTT(capacity, cost_model=cost_model)
    if mode == "shared":
        return SimStripedTT(capacity, n_stripes, cost_model=cost_model)
    raise SearchError(f"unknown tt mode {mode!r}; expected one of {TT_MODES}")
