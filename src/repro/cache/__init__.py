"""Concurrent transposition-table subsystem shared by the ER backends.

One keying seam (:func:`repro.games.base.hash_key`), three concurrency
models: :class:`StripedTT`/:class:`SimStripedTT` for threads and the
discrete-event simulator, :class:`WorkerLocalTT` for the private-table
baseline, and :class:`SharedMemoryTT` for worker processes.  See
DESIGN.md section "Transposition cache".
"""

from .sharedmem import SharedMemoryTT, TTHandle
from .striped import (
    TT_MODES,
    AnyTT,
    SimStripedTT,
    StripedTT,
    TTProbeOp,
    TTStoreOp,
    WorkerLocalTT,
    make_tt,
)

__all__ = [
    "TT_MODES",
    "AnyTT",
    "SharedMemoryTT",
    "SimStripedTT",
    "StripedTT",
    "TTHandle",
    "TTProbeOp",
    "TTStoreOp",
    "WorkerLocalTT",
    "make_tt",
]
