"""A game-playing engine on top of the search algorithms.

The paper's searches answer "what is the value of this position?"; a
game player needs "which move do I make, given a budget?".  This module
supplies that layer: iterative deepening with aspiration windows over
any of the package's serial or parallel searches, with move choice,
principal-variation reporting, and simulated-time budgets.

This is the layer `examples/othello_match.py` demonstrates; it is also
the natural home for the paper's practical payoff — a parallel engine
converts its speedup into extra search depth at a fixed time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .cache import TT_MODES, make_tt
from .core.er_parallel import ERConfig, parallel_er
from .core.serial_er import er_search
from .parallel.multiproc import PersistentPool, multiproc_er
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .errors import SearchError
from .games.base import Game, Position, RootedGame, SearchProblem
from .obs import events as _obs
from .search.alphabeta import alphabeta
from .search.stats import SearchStats


@dataclass(frozen=True)
class MoveChoice:
    """The engine's decision for one position."""

    move_index: int
    value: float
    depth_reached: int
    cost: float
    per_move_values: tuple[float, ...]


@dataclass
class EngineConfig:
    """How the engine searches.

    Attributes:
        algorithm: ``"alphabeta"``, ``"er"``, ``"parallel-er"`` (simulated
            processors), or ``"multiproc-er"`` (real worker processes).
        n_processors: simulated processors for ``"parallel-er"``; worker
            processes for ``"multiproc-er"``.
        max_depth: deepest iteration of iterative deepening.
        budget: stop deepening once this much simulated time is spent
            (``None`` = always reach ``max_depth``).
        aspiration_delta: half-width of the iterative-deepening window
            seeded from the previous iteration (``None`` disables).
        sort_below_root: ordering policy handed to each search.
        er_serial_depth: serial-depth setting for parallel ER.
        tt: transposition-table mode for the ER algorithms — ``off``,
            ``private``, or ``shared`` (:data:`repro.cache.TT_MODES`).
            For ``er``/``parallel-er`` one table persists across the
            engine's iterative-deepening iterations and move choices, so
            shallow iterations seed the deeper ones; ``multiproc-er``
            builds its table per search call unless ``pool`` is set.
            Ignored by ``alphabeta``.
        pool: persistent worker pool
            (:class:`~repro.parallel.multiproc.PersistentPool`, e.g.
            :class:`repro.serve.pool.EnginePool`) for ``multiproc-er``.
            When set, every subtree search of every deepening iteration
            and every :meth:`GameEngine.choose` call runs on the same
            warm worker processes and shared caches — the "one engine
            per search" spawn-and-teardown cycle disappears, which is
            what lets one engine serve many requests.  The pool's cache
            configuration replaces ``tt``; the caller owns the pool's
            lifetime.
    """

    algorithm: str = "alphabeta"
    n_processors: int = 1
    max_depth: int = 4
    budget: Optional[float] = None
    aspiration_delta: Optional[float] = None
    sort_below_root: int = 2
    er_serial_depth: int = 1
    tt: str = "off"
    cost_model: CostModel = DEFAULT_COST_MODEL
    pool: Optional[PersistentPool] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("alphabeta", "er", "parallel-er", "multiproc-er"):
            raise SearchError(f"unknown engine algorithm {self.algorithm!r}")
        if self.max_depth < 1:
            raise SearchError("max_depth must be at least 1")
        if self.n_processors < 1:
            raise SearchError("n_processors must be at least 1")
        if self.tt not in TT_MODES:
            raise SearchError(f"unknown tt mode {self.tt!r}; expected one of {TT_MODES}")
        if self.pool is not None and self.algorithm != "multiproc-er":
            raise SearchError("a persistent pool only applies to 'multiproc-er'")


class GameEngine:
    """Chooses moves for any :class:`~repro.games.base.Game`."""

    def __init__(self, game: Game, config: EngineConfig = EngineConfig()) -> None:
        self.game = game
        self.config = config
        # One engine-lifetime table: every subtree search and deepening
        # iteration reads what earlier ones proved (keys are position
        # hashes, so they agree across RootedGame re-rootings).
        self._tt = (
            make_tt(config.tt, cost_model=config.cost_model)
            if config.algorithm in ("er", "parallel-er")
            else None
        )

    # -- single-position evaluation ----------------------------------------

    def _evaluate_subtree(self, position: Position, depth: int) -> tuple[float, float]:
        """Value and simulated cost of searching one child subtree."""
        cfg = self.config
        problem = SearchProblem(
            RootedGame(self.game, position),
            depth=depth,
            sort_below_root=cfg.sort_below_root,
        )
        if cfg.algorithm == "alphabeta":
            result = alphabeta(problem, cost_model=cfg.cost_model)
            return result.value, result.cost
        if cfg.algorithm == "er":
            table = None if self._tt is None else self._tt.view(0)
            result = er_search(problem, cost_model=cfg.cost_model, table=table)
            return result.value, result.cost
        if cfg.algorithm == "multiproc-er":
            # Budgets stay in simulated units: the merged stats are charged
            # through the same cost model as every other backend, so a
            # time budget means the same amount of work regardless of how
            # many real cores happened to be available.
            if cfg.pool is not None:
                # Persistent pool: warm workers and shared caches span
                # every subtree of every deepening iteration (and every
                # choose() call on this engine).
                mp_result = multiproc_er(
                    problem,
                    cfg.n_processors,
                    config=ERConfig(serial_depth=cfg.er_serial_depth),
                    cost_model=cfg.cost_model,
                    pool=cfg.pool,
                )
            else:
                mp_result = multiproc_er(
                    problem,
                    cfg.n_processors,
                    config=ERConfig(serial_depth=cfg.er_serial_depth),
                    cost_model=cfg.cost_model,
                    tt_mode=cfg.tt,
                )
            return mp_result.value, mp_result.stats.cost
        parallel = parallel_er(
            problem,
            cfg.n_processors,
            config=ERConfig(serial_depth=cfg.er_serial_depth),
            cost_model=cfg.cost_model,
            tt=self._tt,
        )
        return parallel.value, parallel.sim_time

    # -- move choice ---------------------------------------------------------

    def choose(self, position: Position) -> MoveChoice:
        """Pick a move by iterative deepening over the children.

        Raises:
            SearchError: if the position has no moves.
        """
        children = self.game.children(position)
        if not children:
            raise SearchError("no legal moves at this position")
        cfg = self.config
        spent = 0.0
        best_index = 0
        best_value = float("-inf")
        values: tuple[float, ...] = ()
        depth_reached = 0
        for depth in range(1, cfg.max_depth + 1):
            iteration: list[float] = []
            for child in children:
                value, cost = self._evaluate_subtree(child, depth - 1)
                spent += cost
                iteration.append(-value)
            depth_reached = depth
            values = tuple(iteration)
            best_index = max(range(len(children)), key=iteration.__getitem__)
            best_value = iteration[best_index]
            if cfg.budget is not None and spent >= cfg.budget:
                break
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(
                _obs.EV_ENGINE_CHOICE,
                task=-1,
                move_index=best_index,
                value=best_value,
                depth=depth_reached,
                cost=spent,
            )
        return MoveChoice(
            move_index=best_index,
            value=best_value,
            depth_reached=depth_reached,
            cost=spent,
            per_move_values=values,
        )

    def play(self, position: Position) -> Position:
        """Make the chosen move and return the successor position."""
        choice = self.choose(position)
        return self.game.children(position)[choice.move_index]


@dataclass
class MatchResult:
    """Outcome of a self-play match between two engines."""

    positions: list[Position] = field(default_factory=list)
    moves: int = 0

    @property
    def final_position(self) -> Position:
        return self.positions[-1]


def play_match(
    game: Game,
    first: GameEngine,
    second: GameEngine,
    *,
    max_moves: int = 200,
    on_move: Optional[Callable[[int, Position], None]] = None,
) -> MatchResult:
    """Alternate two engines from the game's root until it ends.

    Engines must be built over the same ``game``.  ``on_move`` is called
    after every move with (move_number, position) for rendering.
    """
    position = game.root()
    result = MatchResult(positions=[position])
    engines = (first, second)
    while result.moves < max_moves:
        if not game.children(position):
            break
        engine = engines[result.moves % 2]
        position = engine.play(position)
        result.moves += 1
        result.positions.append(position)
        if on_move is not None:
            on_move(result.moves, position)
    return result
