"""Experimental workloads (the paper's Table 3 plus scaled variants)."""

from .suite import (
    FULL_SCALE_ENV,
    PROCESSOR_COUNTS,
    TreeSpec,
    bench_scale,
    table3_suite,
)

__all__ = [
    "TreeSpec",
    "table3_suite",
    "bench_scale",
    "PROCESSOR_COUNTS",
    "FULL_SCALE_ENV",
]
