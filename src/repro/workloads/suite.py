"""The experimental trees of the paper's Table 3.

| Name | Type    | Degree  | Search depth | Serial depth |
|------|---------|---------|--------------|--------------|
| R1   | Random  | 4       | 10 ply       | 7            |
| R2   | Random  | 4       | 11 ply       | 7            |
| R3   | Random  | 8       | 7 ply        | 5            |
| O1   | Othello | varying | 7 ply        | 5            |
| O2   | Othello | varying | 7 ply        | 5            |
| O3   | Othello | varying | 7 ply        | 5            |

Othello children are pre-sorted by static value above ply five (never
below, and never for successors of e-nodes — Section 7); the random trees
carry iid uniform leaf values, so pre-sorting them would burn evaluator
calls on noise and is disabled.

Paper-scale trees are expensive in pure Python, so each spec also has a
*reduced* configuration with the same structure at a smaller depth; the
benchmarks run reduced by default and paper scale under ``REPRO_FULL=1``
(EXPERIMENTS.md records which scale produced each number).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SearchError
from ..games.base import Game, SearchProblem
from ..games.othello.game import O1_ROOT, O2_ROOT, O3_ROOT, Othello
from ..games.random_tree import RandomGameTree

#: Environment variable that switches benchmarks to paper scale.
FULL_SCALE_ENV = "REPRO_FULL"


@dataclass(frozen=True)
class TreeSpec:
    """One experimental tree: a game, horizons, and the serial depth."""

    name: str
    kind: str  # "random" | "othello"
    make_game: Callable[[], Game]
    search_depth: int
    serial_depth: int
    sort_below_root: int
    description: str
    #: Generator seed for random trees (``None`` for fixed Othello roots);
    #: recorded in ledger records so any run can be reproduced exactly.
    seed: Optional[int] = None

    def problem(self) -> SearchProblem:
        return SearchProblem(
            game=self.make_game(),
            depth=self.search_depth,
            sort_below_root=self.sort_below_root,
        )


def _random_spec(name: str, degree: int, depth: int, serial: int, seed: int) -> TreeSpec:
    return TreeSpec(
        name=name,
        kind="random",
        make_game=lambda: RandomGameTree(degree, depth, seed=seed),
        search_depth=depth,
        serial_depth=serial,
        sort_below_root=0,
        description=f"random {degree}-ary, {depth} ply, serial depth {serial}",
        seed=seed,
    )


def _othello_spec(name: str, root, depth: int, serial: int, sort: int) -> TreeSpec:
    return TreeSpec(
        name=name,
        kind="othello",
        make_game=lambda: Othello(root),
        search_depth=depth,
        serial_depth=serial,
        sort_below_root=sort,
        description=f"Othello mid-game, {depth} ply, serial depth {serial}",
    )


def table3_suite(scale: str = "reduced") -> dict[str, TreeSpec]:
    """The six experimental trees, at ``"paper"`` or ``"reduced"`` scale."""
    if scale == "paper":
        return {
            "R1": _random_spec("R1", degree=4, depth=10, serial=7, seed=101),
            "R2": _random_spec("R2", degree=4, depth=11, serial=7, seed=202),
            "R3": _random_spec("R3", degree=8, depth=7, serial=5, seed=303),
            "O1": _othello_spec("O1", O1_ROOT, depth=7, serial=5, sort=5),
            "O2": _othello_spec("O2", O2_ROOT, depth=7, serial=5, sort=5),
            "O3": _othello_spec("O3", O3_ROOT, depth=7, serial=5, sort=5),
        }
    if scale == "reduced":
        return {
            "R1": _random_spec("R1", degree=4, depth=8, serial=5, seed=101),
            "R2": _random_spec("R2", degree=4, depth=9, serial=5, seed=202),
            "R3": _random_spec("R3", degree=8, depth=5, serial=3, seed=303),
            "O1": _othello_spec("O1", O1_ROOT, depth=5, serial=3, sort=3),
            "O2": _othello_spec("O2", O2_ROOT, depth=5, serial=3, sort=3),
            "O3": _othello_spec("O3", O3_ROOT, depth=5, serial=3, sort=3),
        }
    raise SearchError(f"unknown scale {scale!r}; use 'paper' or 'reduced'")


def bench_scale() -> str:
    """Scale selected by the environment for benchmark runs."""
    return "paper" if os.environ.get(FULL_SCALE_ENV) else "reduced"


#: Processor counts swept by the paper's figures.
PROCESSOR_COUNTS = (1, 2, 4, 8, 12, 16)
