"""Alpha-beta search, with and without deep cutoffs (paper Sections 2.1–2.2).

Two variants share one implementation:

* ``deep_cutoffs=True`` — the full Knuth–Moore procedure: the child window
  is ``(-beta, -max(alpha, m))``, so bounds established arbitrarily far up
  the tree propagate down (Figure 2(b) of the paper).
* ``deep_cutoffs=False`` — Baudet's branch-and-bound form used to define
  the MWF minimal tree (Section 2.2): a child inherits only the bound
  derived from its parent's current value, so only shallow cutoffs occur.

Both are fail-soft: the returned value may be more informative than the
window.  Children may be pre-ordered by static value (charged to stats),
reproducing the sorting overhead the paper discusses for tree O1.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..games.base import NEG_INF, POS_INF, Path, Position, SearchProblem
from .stats import SearchResult, SearchStats


def alphabeta(
    problem: SearchProblem,
    alpha: float = NEG_INF,
    beta: float = POS_INF,
    *,
    deep_cutoffs: bool = True,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Evaluate the root of ``problem`` within the window ``(alpha, beta)``.

    With the open window the result equals negmax's exactly; with a
    narrower (aspiration) window the value is only guaranteed when it
    falls strictly inside the window.

    Args:
        deep_cutoffs: pass ancestor bounds through (Knuth–Moore) or not
            (Baudet's shallow-only variant).
    """
    if stats is None:
        stats = SearchStats()
    if not alpha < beta:
        raise ValueError("alpha-beta window requires alpha < beta")
    value, pv = _alphabeta(
        problem,
        problem.game.root(),
        (),
        0,
        alpha,
        beta,
        deep_cutoffs,
        cost_model,
        stats,
    )
    return SearchResult(value=value, stats=stats, pv=tuple(pv))


def _alphabeta(
    problem: SearchProblem,
    position: Position,
    path: Path,
    ply: int,
    alpha: float,
    beta: float,
    deep: bool,
    cost_model: CostModel,
    stats: SearchStats,
) -> tuple[float, list[int]]:
    game = problem.game
    children = () if problem.is_horizon(ply) else game.children(position)
    if not children:
        stats.on_leaf(path, cost_model)
        return game.evaluate(position), []

    stats.on_expand(path, len(children), cost_model)
    if problem.should_sort(ply):
        stats.on_ordering(len(children), cost_model)
        static_values = [game.evaluate(child) for child in children]
        order = sorted(range(len(children)), key=static_values.__getitem__)
    else:
        order = list(range(len(children)))

    best = NEG_INF
    best_line: list[int] = []
    for index in order:
        floor = max(alpha, best)
        child_alpha = -beta if deep else NEG_INF
        child_value, child_line = _alphabeta(
            problem,
            children[index],
            path + (index,),
            ply + 1,
            child_alpha,
            -floor,
            deep,
            cost_model,
            stats,
        )
        if -child_value > best:
            best = -child_value
            best_line = [index, *child_line]
        if best >= beta:
            stats.on_cutoff()
            return best, best_line
    return best, best_line
