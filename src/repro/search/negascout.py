"""NegaScout / principal-variation search (minimal-window verification).

The paper's footnote 3 notes that Marsland & Popowich's enhanced
pv-splitting verifies the non-PV children with *parallel minimal window
search* rather than tree-splitting.  This module supplies the serial
form of that idea: after the first child establishes a value, each
remaining child is first searched with a zero-width ("scout") window —
the cheapest possible refutation test — and only re-searched with a real
window if it unexpectedly fails high.

On well-ordered trees almost every scout probe refutes immediately, so
NegaScout approaches the minimal tree; on badly ordered trees the
re-searches cost extra.  Both regimes are pinned by tests, and the
enhanced pv-splitting variant (``repro.parallel.pv_splitting`` with
``minimal_window=True``) reuses this logic on the schedule simulator.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..games.base import NEG_INF, POS_INF, Path, Position, SearchProblem
from .stats import SearchResult, SearchStats


def negascout(
    problem: SearchProblem,
    alpha: float = NEG_INF,
    beta: float = POS_INF,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Evaluate the root with NegaScout (exact for open windows)."""
    if stats is None:
        stats = SearchStats()
    if not alpha < beta:
        raise ValueError("negascout window requires alpha < beta")
    value = _negascout(
        problem, problem.game.root(), (), 0, alpha, beta, cost_model, stats
    )
    return SearchResult(value=value, stats=stats)


def _next_after(value: float) -> float:
    """The smallest usable minimal-window ceiling above ``value``.

    Evaluators in this package are integral-valued, so ``value + 1`` is a
    sound null-window step (documented library assumption; the tests
    include fractional-valued trees via scaling to confirm the fallback
    re-search keeps results exact regardless).
    """
    return value + 1.0


def _negascout(
    problem: SearchProblem,
    position: Position,
    path: Path,
    ply: int,
    alpha: float,
    beta: float,
    cost_model: CostModel,
    stats: SearchStats,
) -> float:
    game = problem.game
    children = () if problem.is_horizon(ply) else game.children(position)
    if not children:
        stats.on_leaf(path, cost_model)
        return game.evaluate(position)

    stats.on_expand(path, len(children), cost_model)
    order = list(range(len(children)))
    if problem.should_sort(ply):
        stats.on_ordering(len(children), cost_model)
        static = [game.evaluate(child) for child in children]
        order.sort(key=static.__getitem__)

    best = NEG_INF
    first = True
    for index in order:
        child = children[index]
        child_path = path + (index,)
        floor = max(alpha, best)
        if first:
            value = -_negascout(
                problem, child, child_path, ply + 1, -beta, -floor, cost_model, stats
            )
            first = False
        else:
            # Scout probe: can this child even beat the current best?
            ceiling = _next_after(floor)
            value = -_negascout(
                problem, child, child_path, ply + 1, -ceiling, -floor, cost_model, stats
            )
            if floor < value < beta:
                # Unexpected fail-high: re-search with the true window.
                value = -_negascout(
                    problem, child, child_path, ply + 1, -beta, -value, cost_model, stats
                )
        if value > best:
            best = value
        if best >= beta:
            stats.on_cutoff()
            return best
    return best
