"""Work accounting shared by every search algorithm.

Figures 12–13 of the paper compare algorithms by *nodes generated*, and
all speedup numbers rest on a common notion of work.  Every search in this
package — serial or simulated-parallel — reports a :class:`SearchStats`
charged through the same :class:`~repro.costmodel.CostModel`, so "time"
means the same thing everywhere (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..costmodel import CostModel
from ..games.base import Game, Path, Position


@dataclass
class SearchStats:
    """Mutable accumulator of search work.

    Attributes:
        interior_visits: interior nodes whose children were generated.
        leaf_evals: static evaluations of horizon/terminal nodes.
        ordering_evals: static evaluations spent pre-sorting children
            (the overhead that makes serial ER beat alpha-beta on tree O1).
        nodes_generated: total successor positions created.
        cutoffs: number of beta cutoffs taken.
        tt_probes: transposition-table lookups issued.
        tt_stores: transposition-table entries written.
        cost: accumulated simulated time units.
        trace: if not ``None``, the set of visited node paths — consumed by
            the mandatory/speculative loss analysis (paper Section 3.1).
    """

    interior_visits: int = 0
    leaf_evals: int = 0
    ordering_evals: int = 0
    nodes_generated: int = 0
    cutoffs: int = 0
    tt_probes: int = 0
    tt_stores: int = 0
    cost: float = 0.0
    trace: Optional[set[Path]] = None

    @classmethod
    def with_trace(cls) -> "SearchStats":
        """A stats object that also records every visited node path."""
        return cls(trace=set())

    # -- charging hooks -------------------------------------------------

    def on_expand(self, path: Path, n_children: int, cost_model: CostModel) -> float:
        """Record generating ``n_children`` successors of the node at ``path``.

        Returns the cost charged, so simulated workers can also advance
        their local clocks by it.
        """
        self.interior_visits += 1
        self.nodes_generated += n_children
        if self.trace is not None:
            self.trace.add(path)
        charged = cost_model.expansion(n_children)
        self.cost += charged
        return charged

    def on_leaf(self, path: Path, cost_model: CostModel) -> float:
        """Record statically evaluating the leaf at ``path``."""
        self.leaf_evals += 1
        if self.trace is not None:
            self.trace.add(path)
        charged = cost_model.static_eval
        self.cost += charged
        return charged

    def on_ordering(self, n_children: int, cost_model: CostModel) -> float:
        """Record the static evaluations used to sort ``n_children``."""
        self.ordering_evals += n_children
        charged = cost_model.ordering(n_children)
        self.cost += charged
        return charged

    def on_cutoff(self) -> None:
        self.cutoffs += 1

    def on_tt_probe(self, cost_model: CostModel) -> float:
        """Record one transposition-table lookup."""
        self.tt_probes += 1
        charged = cost_model.tt_probe
        self.cost += charged
        return charged

    def on_tt_store(self, cost_model: CostModel) -> float:
        """Record one transposition-table write."""
        self.tt_stores += 1
        charged = cost_model.tt_store
        self.cost += charged
        return charged

    # -- derived quantities ---------------------------------------------

    @property
    def nodes_examined(self) -> int:
        """Nodes visited (interior expansions plus leaf evaluations)."""
        return self.interior_visits + self.leaf_evals

    def merge(self, other: "SearchStats") -> None:
        """Fold another accumulator into this one (for parallel workers)."""
        self.interior_visits += other.interior_visits
        self.leaf_evals += other.leaf_evals
        self.ordering_evals += other.ordering_evals
        self.nodes_generated += other.nodes_generated
        self.cutoffs += other.cutoffs
        self.tt_probes += other.tt_probes
        self.tt_stores += other.tt_stores
        self.cost += other.cost
        if self.trace is not None and other.trace is not None:
            self.trace.update(other.trace)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search: the root negmax value plus its accounting."""

    value: float
    stats: SearchStats
    pv: tuple[int, ...] = ()

    @property
    def cost(self) -> float:
        return self.stats.cost


@dataclass
class OrderingPolicy:
    """How children are pre-ordered before search.

    ``argsort`` returns child indices sorted ascending by static value
    (lowest child value = best for the parent under negmax), charging the
    evaluator applications to ``stats``.
    """

    cost_model: CostModel
    stats: SearchStats

    def argsort(self, game: "Game", children: Sequence["Position"]) -> list[int]:
        self.stats.on_ordering(len(children), self.cost_model)
        values = [game.evaluate(child) for child in children]
        return sorted(range(len(children)), key=values.__getitem__)


def argsort_by_static_value(game: "Game", children: Sequence["Position"]) -> list[int]:
    """Uncharged ascending argsort by static value (for tests/utilities)."""
    values = [game.evaluate(child) for child in children]
    return sorted(range(len(children)), key=values.__getitem__)
