"""Work accounting shared by every search algorithm.

Figures 12–13 of the paper compare algorithms by *nodes generated*, and
all speedup numbers rest on a common notion of work.  Every search in this
package — serial or simulated-parallel — reports a :class:`SearchStats`
charged through the same :class:`~repro.costmodel.CostModel`, so "time"
means the same thing everywhere (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..costmodel import CostModel
from ..games.base import Game, Path, Position


@dataclass
class SearchStats:
    """Mutable accumulator of search work.

    Attributes:
        interior_visits: interior nodes whose children were generated.
        leaf_evals: static evaluations of horizon/terminal nodes.
        ordering_evals: static evaluations spent pre-sorting children
            (the overhead that makes serial ER beat alpha-beta on tree O1).
        nodes_generated: total successor positions created.
        cutoffs: number of beta cutoffs taken.
        tt_probes: transposition-table lookups issued.
        tt_stores: transposition-table entries written.
        static_evals: evaluations charged at the full ``static_eval``
            rate.  ``leaf_evals``/``ordering_evals`` stay *semantic*
            counts — with batching or a cache, a leaf may be counted
            there while its cost was charged as a batch share or a cache
            probe instead, so this is the counter the cost decomposition
            (``_serial_parts``) must use.
        batch_calls: ``batch_eval`` invocations issued.
        batch_leaves: positions evaluated inside those batches.
        eval_probes: evaluation-cache lookups issued.
        eval_hits: evaluation-cache lookups that found a value.
        eval_stores: evaluation-cache entries written.
        cost: accumulated simulated time units.
        trace: if not ``None``, the set of visited node paths — consumed by
            the mandatory/speculative loss analysis (paper Section 3.1).
    """

    interior_visits: int = 0
    leaf_evals: int = 0
    ordering_evals: int = 0
    nodes_generated: int = 0
    cutoffs: int = 0
    tt_probes: int = 0
    tt_stores: int = 0
    static_evals: int = 0
    batch_calls: int = 0
    batch_leaves: int = 0
    eval_probes: int = 0
    eval_hits: int = 0
    eval_stores: int = 0
    cost: float = 0.0
    trace: Optional[set[Path]] = None

    @classmethod
    def with_trace(cls) -> "SearchStats":
        """A stats object that also records every visited node path."""
        return cls(trace=set())

    # -- charging hooks -------------------------------------------------

    def on_expand(self, path: Path, n_children: int, cost_model: CostModel) -> float:
        """Record generating ``n_children`` successors of the node at ``path``.

        Returns the cost charged, so simulated workers can also advance
        their local clocks by it.
        """
        self.interior_visits += 1
        self.nodes_generated += n_children
        if self.trace is not None:
            self.trace.add(path)
        charged = cost_model.expansion(n_children)
        self.cost += charged
        return charged

    def on_leaf(self, path: Path, cost_model: CostModel) -> float:
        """Record statically evaluating the leaf at ``path``."""
        self.leaf_evals += 1
        self.static_evals += 1
        if self.trace is not None:
            self.trace.add(path)
        charged = cost_model.static_eval
        self.cost += charged
        return charged

    def note_leaf(self, path: Path) -> float:
        """Count a leaf evaluation whose cost was charged elsewhere
        (a batched frontier prefetch or an eval-cache hit)."""
        self.leaf_evals += 1
        if self.trace is not None:
            self.trace.add(path)
        return 0.0

    def on_ordering(self, n_children: int, cost_model: CostModel) -> float:
        """Record the static evaluations used to sort ``n_children``."""
        self.ordering_evals += n_children
        self.static_evals += n_children
        charged = cost_model.ordering(n_children)
        self.cost += charged
        return charged

    def note_ordering(self, n_children: int) -> float:
        """Count ordering evaluations whose cost was charged elsewhere
        (a batched evaluator call instead of full-price scalar evals)."""
        self.ordering_evals += n_children
        return 0.0

    def on_batch_eval(self, n_leaves: int, cost_model: CostModel) -> float:
        """Record one batched static evaluation of ``n_leaves`` positions."""
        self.batch_calls += 1
        self.batch_leaves += n_leaves
        charged = cost_model.batch_eval(n_leaves)
        self.cost += charged
        return charged

    def on_eval_probe(self, cost_model: CostModel, *, hit: bool) -> float:
        """Record one evaluation-cache lookup."""
        self.eval_probes += 1
        if hit:
            self.eval_hits += 1
        charged = cost_model.eval_cache_probe
        self.cost += charged
        return charged

    def on_eval_store(self, cost_model: CostModel) -> float:
        """Record one evaluation-cache write."""
        self.eval_stores += 1
        charged = cost_model.eval_cache_store
        self.cost += charged
        return charged

    def on_cutoff(self) -> None:
        self.cutoffs += 1

    def on_tt_probe(self, cost_model: CostModel) -> float:
        """Record one transposition-table lookup."""
        self.tt_probes += 1
        charged = cost_model.tt_probe
        self.cost += charged
        return charged

    def on_tt_store(self, cost_model: CostModel) -> float:
        """Record one transposition-table write."""
        self.tt_stores += 1
        charged = cost_model.tt_store
        self.cost += charged
        return charged

    # -- derived quantities ---------------------------------------------

    @property
    def nodes_examined(self) -> int:
        """Nodes visited (interior expansions plus leaf evaluations)."""
        return self.interior_visits + self.leaf_evals

    def merge(self, other: "SearchStats") -> None:
        """Fold another accumulator into this one (for parallel workers)."""
        self.interior_visits += other.interior_visits
        self.leaf_evals += other.leaf_evals
        self.ordering_evals += other.ordering_evals
        self.nodes_generated += other.nodes_generated
        self.cutoffs += other.cutoffs
        self.tt_probes += other.tt_probes
        self.tt_stores += other.tt_stores
        self.static_evals += other.static_evals
        self.batch_calls += other.batch_calls
        self.batch_leaves += other.batch_leaves
        self.eval_probes += other.eval_probes
        self.eval_hits += other.eval_hits
        self.eval_stores += other.eval_stores
        self.cost += other.cost
        if self.trace is not None and other.trace is not None:
            self.trace.update(other.trace)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search: the root negmax value plus its accounting."""

    value: float
    stats: SearchStats
    pv: tuple[int, ...] = ()

    @property
    def cost(self) -> float:
        return self.stats.cost


@dataclass
class OrderingPolicy:
    """How children are pre-ordered before search.

    ``argsort`` returns child indices sorted ascending by static value
    (lowest child value = best for the parent under negmax), charging the
    evaluator applications to ``stats``.
    """

    cost_model: CostModel
    stats: SearchStats

    def argsort(self, game: "Game", children: Sequence["Position"]) -> list[int]:
        self.stats.on_ordering(len(children), self.cost_model)
        values = [game.evaluate(child) for child in children]
        return sorted(range(len(children)), key=values.__getitem__)


def argsort_by_static_value(game: "Game", children: Sequence["Position"]) -> list[int]:
    """Uncharged ascending argsort by static value (for tests/utilities)."""
    values = [game.evaluate(child) for child in children]
    return sorted(range(len(children)), key=values.__getitem__)
