"""Transposition tables and a table-driven alpha-beta.

Real game-playing programs — including the Othello programs the paper's
substrate descends from — cache search results keyed by position so that
transpositions (the same position reached through different move orders)
are searched once.  This module provides:

* :class:`TranspositionTable` — a bounded map from position to a value
  with bound semantics (exact / lower / upper) and the depth it was
  searched to;
* :func:`alphabeta_tt` — alpha-beta with table probes, stores, and
  hash-move ordering;
* :func:`iterative_deepening` — the standard driver that repeatedly
  deepens, letting the table's hash moves order each iteration.

These are extensions beyond the paper's text (its experiments search
each tree once, cold), provided because any downstream user of a
game-tree-search library expects them; tests pin their exactness against
plain alpha-beta on transposing games (tic-tac-toe, Othello).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..games.base import NEG_INF, POS_INF, Path, Position, SearchProblem
from .stats import SearchResult, SearchStats


class Bound(Enum):
    """What a stored value means relative to the search window."""

    EXACT = "exact"
    LOWER = "lower"  # value is a lower bound (search failed high)
    UPPER = "upper"  # value is an upper bound (search failed low)


@dataclass(frozen=True)
class TTEntry:
    """One transposition-table record."""

    value: float
    depth: int  # remaining depth the value was computed with
    bound: Bound
    best_move: Optional[int]  # child index that produced the value


#: How many least-recently-used entries the capacity-eviction scan
#: examines.  Bounds the cost of depth-preferred replacement: eviction
#: picks the *shallowest* entry in this window rather than blindly
#: dropping the LRU-oldest one (which may hold an expensive deep result).
EVICTION_SCAN = 8


class TranspositionTable:
    """Bounded position cache: LRU recency with depth-preferred eviction.

    Positions are used directly as keys (every game in this package has
    hashable positions); a production engine would use Zobrist keys, but
    the replacement and bound logic — the part that is easy to get wrong
    — is identical.  (:class:`repro.cache.StripedTT` stripes instances
    of this class by Zobrist key for the concurrent backends.)

    Replacement policy: an existing entry for the same key is kept when
    it is strictly deeper; on capacity overflow the victim is the
    shallowest entry among the ``EVICTION_SCAN`` least recently used —
    pure LRU eviction used to discard a depth-9 result to make room for
    a depth-0 leaf, which is exactly backwards for search caches.
    """

    def __init__(self, capacity: int = 1 << 18):
        if capacity < 1:
            raise SearchError("table capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Position, TTEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, position: Position) -> Optional[TTEntry]:
        entry = self._entries.get(position)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(position)
        self.hits += 1
        return entry

    def store(self, position: Position, entry: TTEntry) -> None:
        existing = self._entries.get(position)
        if existing is not None and existing.depth > entry.depth:
            return  # keep the deeper result
        self._entries[position] = entry
        self._entries.move_to_end(position)
        self.stores += 1
        if len(self._entries) > self.capacity:
            # Depth-preferred eviction: scan the oldest EVICTION_SCAN
            # entries (the just-stored key is at the MRU end and is
            # skipped if the window reaches it) and drop the shallowest;
            # ties fall to the least recently used.
            victim = None
            victim_depth = 0
            for scanned, (key, candidate) in enumerate(self._entries.items()):
                if scanned >= EVICTION_SCAN and victim is not None:
                    break
                if key == position:
                    continue
                if victim is None or candidate.depth < victim_depth:
                    victim = key
                    victim_depth = candidate.depth
            self._entries.pop(victim)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


def alphabeta_tt(
    problem: SearchProblem,
    table: TranspositionTable,
    alpha: float = NEG_INF,
    beta: float = POS_INF,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Alpha-beta with transposition-table probes and hash-move ordering.

    Exactness: with an open window the root value equals negmax's; the
    table only ever substitutes values proven at **at least** the needed
    remaining depth with compatible bound semantics.
    """
    if stats is None:
        stats = SearchStats()
    if not alpha < beta:
        raise ValueError("alpha-beta window requires alpha < beta")
    value = _ab_tt(
        problem, table, problem.game.root(), (), 0, alpha, beta, cost_model, stats
    )
    return SearchResult(value=value, stats=stats)


def _ab_tt(
    problem: SearchProblem,
    table: TranspositionTable,
    position: Position,
    path: Path,
    ply: int,
    alpha: float,
    beta: float,
    cost_model: CostModel,
    stats: SearchStats,
) -> float:
    game = problem.game
    remaining = problem.depth - ply

    entry = table.probe(position)
    if entry is not None and entry.depth >= remaining:
        if entry.bound is Bound.EXACT:
            return entry.value
        if entry.bound is Bound.LOWER and entry.value >= beta:
            return entry.value
        if entry.bound is Bound.UPPER and entry.value <= alpha:
            return entry.value

    children = () if problem.is_horizon(ply) else game.children(position)
    if not children:
        stats.on_leaf(path, cost_model)
        value = game.evaluate(position)
        table.store(position, TTEntry(value, remaining, Bound.EXACT, None))
        return value

    stats.on_expand(path, len(children), cost_model)
    order = list(range(len(children)))
    if problem.should_sort(ply):
        stats.on_ordering(len(children), cost_model)
        static = [game.evaluate(child) for child in children]
        order.sort(key=static.__getitem__)
    # Hash move first: the best move from a previous (possibly shallower)
    # visit is the cheapest, strongest ordering signal available.
    if entry is not None and entry.best_move is not None and entry.best_move < len(children):
        order.remove(entry.best_move)
        order.insert(0, entry.best_move)

    best = NEG_INF
    best_move: Optional[int] = None
    original_alpha = alpha
    for index in order:
        child_value = _ab_tt(
            problem,
            table,
            children[index],
            path + (index,),
            ply + 1,
            -beta,
            -max(alpha, best),
            cost_model,
            stats,
        )
        if -child_value > best:
            best = -child_value
            best_move = index
        if best >= beta:
            stats.on_cutoff()
            table.store(position, TTEntry(best, remaining, Bound.LOWER, best_move))
            return best

    bound = Bound.EXACT if best > original_alpha else Bound.UPPER
    table.store(position, TTEntry(best, remaining, bound, best_move))
    return best


def iterative_deepening(
    problem: SearchProblem,
    *,
    table: Optional[TranspositionTable] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Deepen 1..depth with a shared table (hash moves order each pass).

    On strongly ordered games the total cost is frequently *below* a
    single cold full-depth search — the classic iterative-deepening
    paradox, asserted by the tests on Othello.
    """
    if table is None:
        table = TranspositionTable()
    if stats is None:
        stats = SearchStats()
    if problem.depth == 0:
        stats.on_leaf((), cost_model)
        return SearchResult(value=problem.game.evaluate(problem.game.root()), stats=stats)
    result: Optional[SearchResult] = None
    for depth in range(1, problem.depth + 1):
        iteration = SearchProblem(
            game=problem.game, depth=depth, sort_below_root=problem.sort_below_root
        )
        result = alphabeta_tt(iteration, table, cost_model=cost_model, stats=stats)
    assert result is not None
    return SearchResult(value=result.value, stats=stats)
