"""Serial search algorithms and tree analysis (paper Sections 2 and 5)."""

from .alphabeta import alphabeta
from .aspiration import AspirationOutcome, aspiration_search
from .minimal_tree import (
    Rules,
    count_critical_leaves,
    count_critical_nodes,
    is_critical,
    minimal_leaf_count_formula,
    minimal_tree_paths,
    node_type,
)
from .negamax import negamax
from .negascout import negascout
from .stats import SearchResult, SearchStats, argsort_by_static_value
from .transposition import (
    Bound,
    TranspositionTable,
    TTEntry,
    alphabeta_tt,
    iterative_deepening,
)

__all__ = [
    "alphabeta",
    "negascout",
    "TranspositionTable",
    "TTEntry",
    "Bound",
    "alphabeta_tt",
    "iterative_deepening",
    "aspiration_search",
    "AspirationOutcome",
    "negamax",
    "SearchResult",
    "SearchStats",
    "argsort_by_static_value",
    "Rules",
    "node_type",
    "is_critical",
    "minimal_tree_paths",
    "minimal_leaf_count_formula",
    "count_critical_leaves",
    "count_critical_nodes",
]
