"""Serial aspiration search (the substrate of Baudet's parallel variant).

Alpha-beta run with a narrow window ``(guess - delta, guess + delta)``
around an estimate of the root value.  If the search *fails high* (value
at or above the ceiling) or *fails low* (at or below the floor), the
failing side of the window is reopened and the search repeated.  Narrow
windows prune dramatically when the guess is good — the effect Baudet's
parallel aspiration search (paper Section 4.1) exploits by giving each
processor a different window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..games.base import NEG_INF, POS_INF, SearchProblem
from .alphabeta import alphabeta
from .stats import SearchResult, SearchStats


@dataclass(frozen=True)
class AspirationOutcome:
    """Result of an aspiration search, with the re-search count."""

    result: SearchResult
    researches: int


def aspiration_search(
    problem: SearchProblem,
    guess: float,
    delta: float,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
    max_researches: int = 4,
) -> AspirationOutcome:
    """Search with an aspiration window around ``guess``.

    The window widens geometrically on failure and falls back to the open
    window after ``max_researches`` failures, so the result is always the
    true root value.

    Raises:
        ValueError: if ``delta`` is not positive.
    """
    if delta <= 0:
        raise ValueError("aspiration delta must be positive")
    if stats is None:
        stats = SearchStats()

    low, high = guess - delta, guess + delta
    researches = 0
    while True:
        result = alphabeta(problem, low, high, cost_model=cost_model, stats=stats)
        if low < result.value < high:
            return AspirationOutcome(result=result, researches=researches)
        researches += 1
        if researches > max_researches:
            result = alphabeta(
                problem, NEG_INF, POS_INF, cost_model=cost_model, stats=stats
            )
            return AspirationOutcome(result=result, researches=researches)
        width = high - low
        if result.value >= high:
            low, high = high - 1, high + 2 * width  # fail high: raise ceiling
        else:
            low, high = low - 2 * width, low + 1  # fail low: drop floor
