"""Knuth–Moore critical nodes and minimal trees (paper Section 2.2).

Two rule sets are implemented:

* ``DEEP`` — the classic three-type rules for full alpha-beta:
  (i) the root is type 1; (ii) the first child of a type-1 node is type 1,
  the rest type 2; (iii) the first child of a type-2 node is type 3;
  (iv) all children of a type-3 node are type 2.

* ``SHALLOW`` — the two-type rules for alpha-beta without deep cutoffs
  (the minimal tree MWF searches in its first phase): (i) the root is
  type 1; (ii) the first child of a type-1 node is type 1, the rest
  type 2; (iii) the first child of a type-2 node is type 1.

On a perfectly ordered (best-first) tree, alpha-beta with deep cutoffs
examines exactly the ``DEEP`` minimal tree, whose leaf count is the
closed form  d^⌈h/2⌉ + d^⌊h/2⌋ − 1  (Slagle & Dixon; Knuth & Moore).
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache
from typing import Iterator, Optional

from ..errors import SearchError
from ..games.base import Path


class Rules(Enum):
    """Which cutoff regime defines the minimal tree."""

    DEEP = "deep"
    SHALLOW = "shallow"


def node_type(path: Path, rules: Rules = Rules.DEEP) -> Optional[int]:
    """Type (1, 2, or 3) of the node at ``path``, or ``None`` if non-critical.

    A node is critical iff every step of its path stays inside the rules.
    """
    current = 1
    for index in path:
        if current == 1:
            current = 1 if index == 0 else 2
        elif current == 2:
            if index != 0:
                return None
            current = 3 if rules is Rules.DEEP else 1
        else:  # type 3: all children are type 2
            current = 2
    return current


def is_critical(path: Path, rules: Rules = Rules.DEEP) -> bool:
    """True when the node at ``path`` belongs to the minimal tree."""
    return node_type(path, rules) is not None


def minimal_tree_paths(degree: int, height: int, rules: Rules = Rules.DEEP) -> Iterator[Path]:
    """Yield every critical node path of a complete d-ary tree, preorder."""
    if degree < 1 or height < 0:
        raise SearchError("degree must be >= 1 and height >= 0")

    def walk(path: Path, kind: int) -> Iterator[Path]:
        yield path
        if len(path) >= height:
            return
        if kind == 1:
            yield from walk(path + (0,), 1)
            for index in range(1, degree):
                yield from walk(path + (index,), 2)
        elif kind == 2:
            yield from walk(path + (0,), 3 if rules is Rules.DEEP else 1)
        else:
            for index in range(degree):
                yield from walk(path + (index,), 2)

    return walk((), 1)


def minimal_leaf_count_formula(degree: int, height: int) -> int:
    """Closed-form leaf count of the ``DEEP`` minimal tree (Section 2.2)."""
    if degree < 1 or height < 0:
        raise SearchError("degree must be >= 1 and height >= 0")
    return degree ** -(-height // 2) + degree ** (height // 2) - 1


def count_critical_leaves(degree: int, height: int, rules: Rules = Rules.DEEP) -> int:
    """Leaf count of the minimal tree, by recurrence over node types.

    Matches :func:`minimal_leaf_count_formula` for ``Rules.DEEP`` (checked
    by the test suite) and also covers the shallow rule set, which has no
    standard closed form in the paper.
    """
    if degree < 1 or height < 0:
        raise SearchError("degree must be >= 1 and height >= 0")

    @lru_cache(maxsize=None)
    def leaves(kind: int, remaining: int) -> int:
        if remaining == 0:
            return 1
        if kind == 1:
            return leaves(1, remaining - 1) + (degree - 1) * leaves(2, remaining - 1)
        if kind == 2:
            next_kind = 3 if rules is Rules.DEEP else 1
            return leaves(next_kind, remaining - 1)
        return degree * leaves(2, remaining - 1)

    return leaves(1, height)


def count_critical_nodes(degree: int, height: int, rules: Rules = Rules.DEEP) -> int:
    """Total node count (interior + leaves) of the minimal tree."""
    if degree < 1 or height < 0:
        raise SearchError("degree must be >= 1 and height >= 0")

    @lru_cache(maxsize=None)
    def nodes(kind: int, remaining: int) -> int:
        if remaining == 0:
            return 1
        if kind == 1:
            return 1 + nodes(1, remaining - 1) + (degree - 1) * nodes(2, remaining - 1)
        if kind == 2:
            next_kind = 3 if rules is Rules.DEEP else 1
            return 1 + nodes(next_kind, remaining - 1)
        return 1 + degree * nodes(2, remaining - 1)

    return nodes(1, height)
