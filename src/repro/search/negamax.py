"""The negmax procedure of Knuth & Moore (paper Section 2, Figure 1).

Exhaustive depth-first labelling of the game tree: every node's value is
the maximum of the negated values of its children.  Used as ground truth
for every other algorithm's correctness tests, and as the no-pruning
baseline in work comparisons.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..games.base import Path, Position, SearchProblem
from .stats import SearchResult, SearchStats


def negamax(
    problem: SearchProblem,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stats: Optional[SearchStats] = None,
) -> SearchResult:
    """Exhaustively evaluate the root of ``problem``.

    Returns:
        The root's negmax value, the principal variation, and work stats.
    """
    if stats is None:
        stats = SearchStats()
    value, pv = _negamax(problem, problem.game.root(), (), 0, cost_model, stats)
    return SearchResult(value=value, stats=stats, pv=tuple(pv))


def _negamax(
    problem: SearchProblem,
    position: Position,
    path: Path,
    ply: int,
    cost_model: CostModel,
    stats: SearchStats,
) -> tuple[float, list[int]]:
    children = () if problem.is_horizon(ply) else problem.game.children(position)
    if not children:
        stats.on_leaf(path, cost_model)
        return problem.game.evaluate(position), []
    stats.on_expand(path, len(children), cost_model)
    best = float("-inf")
    best_line: list[int] = []
    for index, child in enumerate(children):
        child_value, child_line = _negamax(
            problem, child, path + (index,), ply + 1, cost_model, stats
        )
        if -child_value > best:
            best = -child_value
            best_line = [index, *child_line]
    return best, best_line
