"""Shared-state access instrumentation for the race detector.

The execution substrates (the discrete-event engine, the threaded
driver, and the worker generators they both drive) call the hook
functions below at every synchronization operation and at every access
to instrumented shared state.  With no recorder installed each hook is a
module-global ``is None`` test, so the instrumentation is free on the
hot path; under :func:`tracing` the hooks append :class:`Event` records
that :mod:`repro.verify.racedetect` analyzes offline.

Task attribution: the simulator sets the current task id explicitly
(:func:`set_task`) before resuming each worker, because every simulated
processor runs on one OS thread.  The threaded backend leaves it unset
and events fall back to ``threading.get_ident()``.  ``list.append`` is
atomic under the GIL, so threads may share one recorder.

Two access disciplines are distinguished (see ``racedetect``):

* plain accesses participate in both the lockset and the happens-before
  analysis;
* ``relaxed`` accesses are deliberate, documented benign races (e.g. the
  lock-free queue-length peek of the work-stealing pop) and are recorded
  for the report but exempt from race checking.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

ACQUIRE = "acquire"
RELEASE = "release"
READ = "read"
WRITE = "write"
WAIT = "wait"
NOTIFY = "notify"
WAKE = "wake"


@dataclass(frozen=True)
class Event:
    """One synchronization operation or shared-state access.

    Attributes:
        kind: one of :data:`ACQUIRE`, :data:`RELEASE`, :data:`READ`,
            :data:`WRITE`, :data:`WAIT`, :data:`NOTIFY`, :data:`WAKE`.
        task: simulated worker id or OS thread id.
        obj: lock name, signal name, or shared-state location.
        seen_version: for :data:`WAIT` — the signal version the waiter
            observed when it decided to block.
        version: for :data:`WAIT`/:data:`NOTIFY` — the signal version at
            the instant of the event.
        relaxed: deliberate benign race; exempt from race checking.
    """

    kind: str
    task: int
    obj: str
    seen_version: int = -1
    version: int = -1
    relaxed: bool = False


class TraceRecorder:
    """Accumulates events; install with :func:`tracing` or :func:`install`."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        #: Explicit task id (simulated worker); ``None`` = use thread id.
        self.task: Optional[int] = None

    def task_id(self) -> int:
        return self.task if self.task is not None else threading.get_ident()


#: The active recorder; ``None`` disables all hooks.  Read directly by
#: instrumented modules (``trace.CURRENT is not None``) to skip hook
#: calls entirely on hot paths.
CURRENT: Optional[TraceRecorder] = None


def install(recorder: TraceRecorder) -> None:
    global CURRENT
    CURRENT = recorder


def uninstall() -> None:
    global CURRENT
    CURRENT = None


@contextmanager
def tracing() -> Iterator[TraceRecorder]:
    """Record all instrumented activity within the block.

    Yields:
        The recorder; read ``recorder.events`` after the block.
    """
    recorder = TraceRecorder()
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()


def set_task(task: Optional[int]) -> None:
    """Attribute subsequent events to ``task`` (simulator use)."""
    if CURRENT is not None:
        CURRENT.task = task


def on_acquire(obj: str, task: Optional[int] = None) -> None:
    """A lock named ``obj`` was granted to the current (or given) task."""
    r = CURRENT
    if r is None:
        return
    r.events.append(Event(ACQUIRE, task if task is not None else r.task_id(), obj))


def on_release(obj: str, task: Optional[int] = None) -> None:
    """A lock named ``obj`` was released by the current (or given) task."""
    r = CURRENT
    if r is None:
        return
    r.events.append(Event(RELEASE, task if task is not None else r.task_id(), obj))


def on_access(obj: str, kind: str, relaxed: bool = False) -> None:
    """The current task read or wrote the shared location ``obj``."""
    r = CURRENT
    if r is None:
        return
    r.events.append(Event(kind, r.task_id(), obj, relaxed=relaxed))


def on_wait(
    obj: str, seen_version: int, version: int, task: Optional[int] = None
) -> None:
    """The task blocked on signal ``obj``.

    ``seen_version`` is the version observed when the task decided to
    wait; ``version`` is the signal's version at the instant of
    blocking.  A mismatch is a lost-wakeup window — the detector flags
    it (the real engine never blocks on a stale version; see
    ``sim.ops.WaitWork``).
    """
    r = CURRENT
    if r is None:
        return
    r.events.append(
        Event(WAIT, task if task is not None else r.task_id(), obj, seen_version, version)
    )


def on_notify(obj: str, version: int, task: Optional[int] = None) -> None:
    """The task notified signal ``obj``, moving it to ``version``."""
    r = CURRENT
    if r is None:
        return
    r.events.append(
        Event(NOTIFY, task if task is not None else r.task_id(), obj, version=version)
    )


def on_wake(obj: str, task: Optional[int] = None) -> None:
    """The task resumed from a wait on signal ``obj``."""
    r = CURRENT
    if r is None:
        return
    r.events.append(Event(WAKE, task if task is not None else r.task_id(), obj))
