"""Shared-state escape analysis: write-site aggregation (VER102).

The interpreter (:mod:`.lockset`) seeds sharedness from the worker
entry points' ``ctx`` parameter and propagates it through attribute
chains, subscripts, tuple unpacking, and call summaries — every object
reachable from the run context (tree nodes popped off the problem heap,
the queues, the cache stripes) is *shared*; locals derived only from
worker-private values (``stats``, ``pid``, loop counters) are not.

Every write to an attribute of a shared object is recorded here as a
:class:`WriteRecord` carrying the *lock categories* held at the write
site.  Per write **location** (a class-qualified attribute name, or a
keyed counter slot like ``_Context.counters[pops_primary]``) the
candidate guard set is the intersection of the category sets across all
of its write sites — the static Eraser discipline.  Two failure modes:

* an **unguarded** write (empty category set at some site), and
* an **inconsistent** location (non-empty sets whose intersection is
  empty: e.g. set under the tree lock here, cleared under the heap lock
  there — exactly the shape of the historical ``on_spec`` race).

Lock *categories* (not raw tokens) are intersected so that the
distributed heap's per-processor locks, the central heap lock, and a
stolen victim's lock all count as the same "heap" guard — any of them
serializes the counter they protect with the popping path that reads
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import FlowFinding


@dataclass(frozen=True)
class WriteRecord:
    """One write to a shared attribute, with the guards held at the site."""

    location: str
    path: str
    line: int
    function: str
    categories: frozenset[str]


def aggregate_writes(records: list[WriteRecord]) -> list[FlowFinding]:
    """Intersect guard categories per location; emit VER102 findings."""
    findings: list[FlowFinding] = []
    by_location: dict[str, list[WriteRecord]] = {}
    for record in records:
        by_location.setdefault(record.location, []).append(record)
    for location in sorted(by_location):
        sites = sorted(by_location[location], key=lambda r: (r.path, r.line))
        unguarded = [site for site in sites if not site.categories]
        for site in unguarded:
            findings.append(
                FlowFinding(
                    rule="VER102",
                    path=site.path,
                    line=site.line,
                    function=site.function,
                    message=(
                        f"shared attribute {location!r} is written with no "
                        f"lock held in {site.function}()"
                    ),
                    signature=f"unguarded:{location}",
                )
            )
        guarded = [site for site in sites if site.categories]
        if not guarded:
            continue
        candidates = frozenset.intersection(*(site.categories for site in guarded))
        if candidates:
            continue  # some guard covers every write site
        guards = sorted(
            {f"{site.function}:{'+'.join(sorted(site.categories))}" for site in guarded}
        )
        for site in guarded:
            held = "+".join(sorted(site.categories))
            findings.append(
                FlowFinding(
                    rule="VER102",
                    path=site.path,
                    line=site.line,
                    function=site.function,
                    message=(
                        f"shared attribute {location!r} has no consistent "
                        f"guard: written under [{held}] in {site.function}() "
                        f"but the candidate lockset across all sites is "
                        f"empty ({', '.join(guards)})"
                    ),
                    signature=f"inconsistent:{location}:{held}",
                )
            )
    return findings
