"""Whole-program concurrency analyzer for the parallel ER engine.

``repro.verify.flow`` is the interprocedural companion to the
per-function lints in :mod:`repro.verify.staticcheck`: it builds a
project index over the parallel engine, its queues, and the striped
cache subsystems, then abstractly interprets the worker generators —
locksets across helper calls and generator delegation (VER101/VER105),
the lock-acquisition-order graph (VER103), a static Eraser-style
shared-write guard discipline (VER102), and charge/protocol
conformance for the simulated ops (VER104).

Run it via ``repro-gametree verify --deep``, pre-commit, or directly::

    PYTHONPATH=src python -m repro.verify.flow [--sarif out.sarif]

Findings carry line-independent fingerprints; known-accepted ones live
in the committed baseline (``verify_flow_baseline.json``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from .callgraph import (
    ANALYZED_MODULES,
    DEFAULT_ENTRY_NAMES,
    Project,
    load_project,
    project_from_sources,
)
from .escape import WriteRecord, aggregate_writes
from .lockset import Analysis, analyze_project, canonical_token, lock_category
from .model import RULES, FlowFinding
from .summaries import (
    LockSummary,
    check_compute_tags,
    check_op_conformance,
    tag_vocabulary,
)

__all__ = [
    "ANALYZED_MODULES",
    "Analysis",
    "FlowFinding",
    "LockSummary",
    "Project",
    "RULES",
    "WriteRecord",
    "aggregate_writes",
    "analyze_project",
    "analyze_repo",
    "analyze_sources",
    "canonical_token",
    "check_compute_tags",
    "check_op_conformance",
    "load_project",
    "lock_category",
    "project_from_sources",
    "repo_root",
    "tag_vocabulary",
]

#: Declaring modules for the conformance checks (repo-relative).
_COSTMODEL = "src/repro/costmodel.py"
_WHATIF = "src/repro/obs/whatif.py"
_ENGINE = "src/repro/sim/engine.py"
_REGISTRY = "src/repro/obs/registry.py"
_CRITPATH = "src/repro/obs/critpath.py"


def repo_root() -> Path:
    """The repository root (four levels above this package)."""
    return Path(__file__).resolve().parents[4]


def _read(root: Path, rel: str) -> Optional[str]:
    path = root / rel
    return path.read_text() if path.exists() else None


def analyze_repo(root: Optional[Path] = None) -> list[FlowFinding]:
    """Full analysis of the repository tree: interpretation + conformance."""
    base = root if root is not None else repo_root()
    project = load_project(base)
    findings = analyze_project(project)
    costmodel = _read(base, _COSTMODEL)
    whatif = _read(base, _WHATIF)
    if costmodel is not None and whatif is not None:
        vocab = tag_vocabulary(costmodel, whatif)
        findings.extend(check_compute_tags(project, vocab))
    engine = _read(base, _ENGINE)
    registry = _read(base, _REGISTRY)
    critpath = _read(base, _CRITPATH)
    if engine is not None and registry is not None and critpath is not None:
        findings.extend(check_op_conformance(project, engine, registry, critpath))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.signature))


def analyze_sources(
    sources: dict[str, str],
    entry_names: Iterable[str] = DEFAULT_ENTRY_NAMES,
    vocab: Optional[frozenset[str]] = None,
) -> list[FlowFinding]:
    """Analysis over in-memory sources (fixtures and mutation self-tests).

    Conformance checks that need the declaring modules (engine/registry/
    critpath) are skipped; Compute-tag checks run when ``vocab`` is given.
    """
    project = project_from_sources(sources)
    findings = analyze_project(project, tuple(entry_names))
    if vocab is not None:
        findings.extend(check_compute_tags(project, vocab))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.signature))
