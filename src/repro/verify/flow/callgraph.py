"""Project index and call resolution for the flow analyzer.

The analyzer is *scoped*: it parses a fixed set of modules — the
parallel ER engine, its queues, and the two striped cache subsystems —
and treats every call that leaves the set as an opaque identity (no lock
effects, no shared writes).  That boundary is what makes the analysis
precise enough to be a gate: the serial searcher, the stats sinks, and
the telemetry buses are single-owner or internally synchronized by
design and are checked by their own tests; walking into them would
drown the lock-discipline signal in single-owner writes.

Resolution is deliberately simple and over-approximate:

* a ``Name`` call resolves to a module-level function of an analyzed
  module (same module first, then a globally unique name);
* an ``Attribute`` call resolves *by method name* to every class method
  of that name across the analyzed modules — but only when the receiver
  expression is known to be shared (see :mod:`.lockset`), which keeps
  worker-local helpers like ``SearchStats`` out of the walk.

Constructors are never entry points and ``__init__``/``__post_init__``
are exempt: shared objects are built single-threaded before any worker
generator runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

#: Modules (repo-relative, posix) whose bodies are interpreted.  Calls
#: into any other module are opaque.
ANALYZED_MODULES: tuple[str, ...] = (
    "src/repro/core/er_parallel.py",
    "src/repro/core/er_queues.py",
    "src/repro/cache/striped.py",
    "src/repro/eval/cache.py",
)

#: Functions/methods the interpreter never enters and never checks.
#: Each is a documented exemption from the lock contracts (see the
#: staticcheck module docstring and the functions' own docstrings):
#: ``expand_positions`` (pop-time node ownership), the telemetry and
#: trace reporters, the relaxed contention counter, the WorkSignal
#: broadcast, and constructors (single-threaded setup).
EXEMPT_CALLS: frozenset[str] = frozenset(
    {
        "expand_positions",
        "_note",
        "_emit",
        "_note_contention",
        "notify_all",
        "__init__",
        "__post_init__",
    }
)

#: Simulator-op constructor names (``yield Acquire(lock)`` etc.).
OP_CONSTRUCTORS: frozenset[str] = frozenset(
    {"Acquire", "Release", "Compute", "WaitWork"}
)

#: Default entry points: the per-processor worker generators.
DEFAULT_ENTRY_NAMES: tuple[str, ...] = ("_worker",)


@dataclass
class FunctionInfo:
    """One function or method of an analyzed module."""

    name: str
    qualname: str
    path: str
    node: ast.FunctionDef
    cls: Optional[str] = None
    is_generator: bool = False
    params: tuple[str, ...] = ()
    #: ``(attr, param)`` when the body is exactly a keyed counter bump
    #: (``self.<attr>[<param>] += ...``): call sites record one write
    #: location per literal key instead of entering the body.
    keyed_counter: Optional[tuple[str, str]] = None

    @property
    def key(self) -> str:
        return f"{self.path}::{self.qualname}"


def _param_names(node: ast.FunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


def _is_generator(node: ast.FunctionDef) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _keyed_counter(node: ast.FunctionDef, params: tuple[str, ...]) -> Optional[tuple[str, str]]:
    """Detect the keyed-counter-writer shape (``self.counters[key] += n``)."""
    if not params:
        return None
    for sub in ast.walk(node):
        if not isinstance(sub, ast.AugAssign):
            continue
        target = sub.target
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == params[0]
            and isinstance(target.slice, ast.Name)
            and target.slice.id in params
        ):
            continue
        return target.value.attr, target.slice.id
    return None


@dataclass
class Project:
    """Parsed analyzed modules plus the function/method indexes."""

    #: repo-relative path -> source text
    sources: dict[str, str]
    trees: dict[str, ast.Module] = field(default_factory=dict)
    #: module path -> {name -> FunctionInfo} for module-level functions
    module_functions: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    #: method name -> every class method of that name, project-wide
    methods: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    #: class names that look like queues (push/pop need a heap lock)
    queue_classes: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        queue_classes: set[str] = set()
        for path, source in self.sources.items():
            tree = ast.parse(source, filename=path)
            self.trees[path] = tree
            functions: dict[str, FunctionInfo] = {}
            for node in tree.body:
                if isinstance(node, ast.FunctionDef):
                    functions[node.name] = self._info(node, path, cls=None)
                elif isinstance(node, ast.ClassDef):
                    if node.name.endswith("Queue"):
                        queue_classes.add(node.name)
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            info = self._info(item, path, cls=node.name)
                            self.methods.setdefault(item.name, []).append(info)
            self.module_functions[path] = functions
        self.queue_classes = frozenset(queue_classes)

    def _info(self, node: ast.FunctionDef, path: str, cls: Optional[str]) -> FunctionInfo:
        params = _param_names(node)
        qualname = node.name if cls is None else f"{cls}.{node.name}"
        return FunctionInfo(
            name=node.name,
            qualname=qualname,
            path=path,
            node=node,
            cls=cls,
            is_generator=_is_generator(node),
            params=params,
            keyed_counter=_keyed_counter(node, params) if cls is not None else None,
        )

    # -- resolution --------------------------------------------------------

    def resolve_name(self, name: str, from_path: str) -> Optional[FunctionInfo]:
        """A ``Name`` call: same module first, then a globally unique hit."""
        local = self.module_functions.get(from_path, {})
        if name in local:
            return local[name]
        hits = [
            funcs[name]
            for funcs in self.module_functions.values()
            if name in funcs
        ]
        return hits[0] if len(hits) == 1 else None

    def resolve_method(self, attr: str, from_path: Optional[str] = None) -> list[FunctionInfo]:
        """An ``Attribute`` call on a shared receiver: match by name.

        Candidates from the caller's own module win outright when any
        exist — subsystems (the TT stripes, the eval-cache stripes) are
        internally recursive but never call into each other's same-named
        methods, and cross-module name collisions would otherwise weave
        their lock families into phantom order cycles.
        """
        candidates = self.methods.get(attr, [])
        if from_path is not None:
            local = [c for c in candidates if c.path == from_path]
            if local:
                return local
        return candidates

    def entry_points(
        self, entry_names: Iterable[str] = DEFAULT_ENTRY_NAMES
    ) -> list[FunctionInfo]:
        wanted = set(entry_names)
        entries = [
            info
            for functions in self.module_functions.values()
            for name, info in functions.items()
            if name in wanted and info.is_generator
        ]
        return sorted(entries, key=lambda f: f.key)


def load_project(
    root: Path, modules: Iterable[str] = ANALYZED_MODULES
) -> Project:
    """Parse the analyzed modules under repo root ``root``."""
    sources: dict[str, str] = {}
    for rel in modules:
        path = root / rel
        if path.exists():
            sources[rel] = path.read_text()
    return Project(sources=sources)


def project_from_sources(sources: dict[str, str]) -> Project:
    """A project over in-memory sources (fixtures, mutation self-tests)."""
    return Project(sources=dict(sources))
