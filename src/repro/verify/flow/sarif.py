"""SARIF 2.1.0 export for flow findings.

The exporter emits the minimal static-analysis interchange shape that
code-scanning UIs (GitHub, VS Code SARIF viewers) consume: one run,
one tool driver with the VER1xx rule metadata, one result per finding
with a physical location and the line-independent fingerprint under
``partialFingerprints`` (so moved-but-unchanged findings stay matched
to their baseline entry).

Output bytes are deterministic — findings are sorted, keys are sorted,
no timestamps — so the golden test can compare exact bytes and CI
artifacts diff cleanly between runs.
"""

from __future__ import annotations

import json
from typing import Iterable

from .model import RULES, FlowFinding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-flow"


def _rule_entries() -> list[dict[str, object]]:
    entries: list[dict[str, object]] = []
    for rule_id in sorted(RULES):
        short_name, description = RULES[rule_id]
        entries.append(
            {
                "id": rule_id,
                "name": short_name,
                "shortDescription": {"text": short_name},
                "fullDescription": {"text": description},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def _result(finding: FlowFinding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": finding.line},
                },
                "logicalLocations": [
                    {"name": finding.function, "kind": "function"}
                ],
            }
        ],
        "partialFingerprints": {"reproFlow/v1": finding.fingerprint()},
    }


def to_sarif(findings: Iterable[FlowFinding]) -> dict[str, object]:
    """The SARIF log object for ``findings`` (deterministically ordered)."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.signature)
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro/verify/flow"
                        ),
                        "rules": _rule_entries(),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
                "results": [_result(f) for f in ordered],
            }
        ],
    }


def to_sarif_bytes(findings: Iterable[FlowFinding]) -> bytes:
    """Canonical SARIF bytes: sorted keys, 2-space indent, trailing LF."""
    text = json.dumps(to_sarif(findings), indent=2, sort_keys=True)
    return (text + "\n").encode("utf-8")
