"""Seeded-mutation self-test for the flow analyzer.

A static analyzer that is never shown a bug it must catch rots
silently: a refactor of the interpreter can turn every check into a
no-op while the clean tree stays green.  Mirroring the race detector's
mutation mode, this module keeps a corpus of seeded concurrency bugs —
each a textual mutation of a known-clean exemplar (or of the *real*
``er_parallel.py`` source) paired with the rule that must fire — and
``self_test()`` asserts the analyzer kills them.

Run via ``repro-gametree verify --deep``, the test suite, or::

    PYTHONPATH=src python -m repro.verify.flow.selftest
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import VerificationError
from . import analyze_sources, repo_root
from .callgraph import ANALYZED_MODULES

#: Tag vocabulary for the exemplar (a slice of the real CostModel's).
_VOCAB = frozenset({"heap_op", "bookkeeping", "combine_step", "serial"})

#: A clean miniature engine: worker loop, heap/tree sections, a queue
#: class, a keyed counter, helper generators.  Every mutation below is
#: a textual edit of this source (or of the real engine's).
EXEMPLAR = '''\
from repro.sim.ops import Acquire, Compute, Release, WaitWork


class WorkQueue:
    def push(self, node):
        self._seq += 1
        self._items.append(node)

    def pop(self):
        if not self._items:
            return None
        node = self._items[-1]
        del self._items[-1]
        return node


class _Context:
    def _bump(self, key, amount=1):
        self.counters[key] += amount

    def pop_work(self):
        node = self.primary.pop()
        if node is not None:
            self._bump("pops_primary")
        return node

    def finish(self, node, value):
        node.value = value
        node.done = True
        self._bump("finished")


def _push_all(ctx, pushes):
    if not pushes:
        return
    yield Acquire(ctx.heap_lock)
    yield Compute(len(pushes), tag="heap_op")
    for node in pushes:
        ctx.primary.push(node)
    yield Release(ctx.heap_lock)


def _subsearch(ctx, node, stats):
    pushes = []
    yield Acquire(ctx.tree_lock)
    yield Compute(1, tag="bookkeeping")
    ctx.finish(node, 0)
    for child in node.children:
        pushes.append(child)
    yield Release(ctx.tree_lock)
    yield from _push_all(ctx, pushes)


def _refute(ctx, node):
    yield Acquire(ctx.tree_lock)
    yield Compute(1, tag="combine_step")
    if node.value is None:
        node.value = 0
    yield Release(ctx.tree_lock)


def _worker(ctx, stats, pid=0):
    while not ctx.done:
        yield Acquire(ctx.heap_lock)
        yield Compute(1, tag="heap_op")
        node = ctx.pop_work()
        yield Release(ctx.heap_lock)
        if node is None:
            yield WaitWork(ctx.work, 0)
            continue
        yield from _subsearch(ctx, node, stats)
        yield from _refute(ctx, node)
'''


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: textual replacements plus the rule that must fire."""

    name: str
    expected_rule: str
    #: (old, new) pairs applied in order, first occurrence each.
    replacements: tuple[tuple[str, str], ...]
    #: "exemplar" or the repo-relative path of a real analyzed module.
    target: str = "exemplar"


MUTATIONS: tuple[Mutation, ...] = (
    Mutation(
        name="drop-heap-acquire",
        expected_rule="VER101",
        replacements=(
            (
                "        yield Acquire(ctx.heap_lock)\n"
                "        yield Compute(1, tag=\"heap_op\")\n",
                "        yield Compute(1, tag=\"heap_op\")\n",
            ),
        ),
    ),
    Mutation(
        name="drop-heap-release",
        expected_rule="VER101",
        replacements=(
            (
                "        yield Release(ctx.heap_lock)\n"
                "        if node is None:\n",
                "        if node is None:\n",
            ),
        ),
    ),
    Mutation(
        name="drop-tree-acquire",
        expected_rule="VER101",
        replacements=(
            (
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(1, tag=\"bookkeeping\")\n",
                "    yield Compute(1, tag=\"bookkeeping\")\n",
            ),
        ),
    ),
    Mutation(
        name="drop-tree-release",
        expected_rule="VER101",
        replacements=(
            (
                "    yield Release(ctx.tree_lock)\n"
                "    yield from _push_all(ctx, pushes)\n",
                "    yield from _push_all(ctx, pushes)\n",
            ),
        ),
    ),
    Mutation(
        name="move-write-outside-guard",
        expected_rule="VER102",
        replacements=(
            (
                "    ctx.finish(node, 0)\n"
                "    for child in node.children:\n"
                "        pushes.append(child)\n"
                "    yield Release(ctx.tree_lock)\n",
                "    for child in node.children:\n"
                "        pushes.append(child)\n"
                "    yield Release(ctx.tree_lock)\n"
                "    ctx.finish(node, 0)\n",
            ),
        ),
    ),
    Mutation(
        name="wrong-lock-for-write",
        expected_rule="VER102",
        replacements=(
            # _subsearch now guards its tree writes with the heap lock,
            # while _refute still writes node.value under the tree lock.
            (
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(1, tag=\"bookkeeping\")\n",
                "    yield Acquire(ctx.heap_lock)\n"
                "    yield Compute(1, tag=\"bookkeeping\")\n",
            ),
            (
                "    yield Release(ctx.tree_lock)\n"
                "    yield from _push_all(ctx, pushes)\n",
                "    yield Release(ctx.heap_lock)\n"
                "    yield from _push_all(ctx, pushes)\n",
            ),
        ),
    ),
    Mutation(
        name="unguarded-counter-bump",
        expected_rule="VER102",
        replacements=(
            (
                "    yield Release(ctx.tree_lock)\n"
                "    yield from _push_all(ctx, pushes)\n",
                "    yield Release(ctx.tree_lock)\n"
                "    ctx._bump(\"finished\")\n"
                "    yield from _push_all(ctx, pushes)\n",
            ),
        ),
    ),
    Mutation(
        name="reorder-lock-acquisitions",
        expected_rule="VER103",
        replacements=(
            # _push_all nests tree inside heap; _refute nests heap
            # inside tree: a classic AB/BA deadlock.
            (
                "    yield Acquire(ctx.heap_lock)\n"
                "    yield Compute(len(pushes), tag=\"heap_op\")\n",
                "    yield Acquire(ctx.heap_lock)\n"
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(len(pushes), tag=\"heap_op\")\n"
                "    yield Release(ctx.tree_lock)\n",
            ),
            (
                "    yield Compute(1, tag=\"combine_step\")\n",
                "    yield Compute(1, tag=\"combine_step\")\n"
                "    yield Acquire(ctx.heap_lock)\n"
                "    yield Release(ctx.heap_lock)\n",
            ),
        ),
    ),
    Mutation(
        name="drop-heap-charge",
        expected_rule="VER104",
        replacements=(
            (
                "        yield Compute(1, tag=\"heap_op\")\n"
                "        node = ctx.pop_work()\n",
                "        node = ctx.pop_work()\n",
            ),
        ),
    ),
    Mutation(
        name="untagged-compute",
        expected_rule="VER104",
        replacements=(
            (
                "yield Compute(1, tag=\"bookkeeping\")",
                "yield Compute(1)",
            ),
        ),
    ),
    Mutation(
        name="unknown-compute-tag",
        expected_rule="VER104",
        replacements=(
            (
                "tag=\"combine_step\"",
                "tag=\"combinestep\"",
            ),
        ),
    ),
    Mutation(
        name="wait-while-holding",
        expected_rule="VER105",
        replacements=(
            (
                "        yield Release(ctx.heap_lock)\n"
                "        if node is None:\n"
                "            yield WaitWork(ctx.work, 0)\n",
                "        if node is None:\n"
                "            yield WaitWork(ctx.work, 0)\n"
                "        yield Release(ctx.heap_lock)\n"
                "        if node is None:\n",
            ),
        ),
    ),
    Mutation(
        name="double-acquire-tree",
        expected_rule="VER101",
        replacements=(
            (
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(1, tag=\"combine_step\")\n",
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(1, tag=\"combine_step\")\n",
            ),
        ),
    ),
    Mutation(
        name="delegate-while-holding",
        expected_rule="VER101",
        replacements=(
            (
                "        yield Release(ctx.heap_lock)\n"
                "        if node is None:\n"
                "            yield WaitWork(ctx.work, 0)\n"
                "            continue\n"
                "        yield from _subsearch(ctx, node, stats)\n",
                "        if node is None:\n"
                "            yield Release(ctx.heap_lock)\n"
                "            yield WaitWork(ctx.work, 0)\n"
                "            continue\n"
                "        yield from _subsearch(ctx, node, stats)\n"
                "        yield Release(ctx.heap_lock)\n",
            ),
        ),
    ),
    # -- mutations of the real engine source --------------------------------
    Mutation(
        name="real:drop-tree-acquire-in-process-speculative",
        expected_rule="VER101",
        target="src/repro/core/er_parallel.py",
        replacements=(
            (
                "    yield Acquire(ctx.tree_lock)\n"
                "    yield Compute(cm.bookkeeping, tag=\"bookkeeping\","
                " node=_cp_path(node), cls=node.ntype)\n"
                "    pushes: list[tuple[str, PNode]] = []\n"
                "    ctx._note(node, _trace.WRITE)\n"
                "    node.on_spec = False\n",
                "    yield Compute(cm.bookkeeping, tag=\"bookkeeping\","
                " node=_cp_path(node), cls=node.ntype)\n"
                "    pushes: list[tuple[str, PNode]] = []\n"
                "    ctx._note(node, _trace.WRITE)\n"
                "    node.on_spec = False\n",
            ),
        ),
    ),
    Mutation(
        name="real:drop-heap-charge-before-pop",
        expected_rule="VER104",
        target="src/repro/core/er_parallel.py",
        replacements=(
            (
                "            yield Compute(cm.heap_op, tag=\"heap_op\")\n"
                "            node, from_spec = ctx.pop_work()\n",
                "            node, from_spec = ctx.pop_work()\n",
            ),
        ),
    ),
    Mutation(
        # The distributed/central branches now disagree on the held
        # lockset, so the analyzer reports the divergence (VER101) at
        # the join rather than the downstream wait-while-holding.
        name="real:drop-heap-release-in-worker",
        expected_rule="VER101",
        target="src/repro/core/er_parallel.py",
        replacements=(
            (
                "            seen_version = ctx.work.version\n"
                "            yield Release(ctx.heap_lock)\n",
                "            seen_version = ctx.work.version\n",
            ),
        ),
    ),
)


def _mutate(source: str, mutation: Mutation) -> str:
    for old, new in mutation.replacements:
        if old not in source:
            raise VerificationError(
                f"flow self-test mutation {mutation.name!r} no longer "
                f"applies: anchor text not found in {mutation.target}"
            )
        source = source.replace(old, new, 1)
    return source


def self_test(min_kill_rate: float = 0.9) -> tuple[int, int]:
    """Run the corpus; raise unless >= ``min_kill_rate`` mutants die.

    Returns ``(killed, total)`` on success.
    """
    clean = analyze_sources({"exemplar.py": EXEMPLAR}, vocab=_VOCAB)
    if clean:
        raise VerificationError(
            "flow self-test exemplar is not clean: "
            + "; ".join(str(f) for f in clean)
        )
    real_sources = {
        rel: (repo_root() / rel).read_text() for rel in ANALYZED_MODULES
    }
    survivors: list[str] = []
    for mutation in MUTATIONS:
        if mutation.target == "exemplar":
            sources = {"exemplar.py": _mutate(EXEMPLAR, mutation)}
            findings = analyze_sources(sources, vocab=_VOCAB)
        else:
            sources = dict(real_sources)
            sources[mutation.target] = _mutate(sources[mutation.target], mutation)
            findings = analyze_sources(sources)
        if not any(f.rule == mutation.expected_rule for f in findings):
            got = sorted({f.rule for f in findings}) or ["nothing"]
            survivors.append(
                f"{mutation.name} (wanted {mutation.expected_rule}, "
                f"got {', '.join(got)})"
            )
    total = len(MUTATIONS)
    killed = total - len(survivors)
    if killed < min_kill_rate * total:
        raise VerificationError(
            f"flow self-test kill rate {killed}/{total} below "
            f"{min_kill_rate:.0%}; survivors: {'; '.join(survivors)}"
        )
    return killed, total


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    killed, total = self_test()
    print(f"flow self-test: {killed}/{total} seeded mutations killed")
