"""Finding model of the whole-program concurrency analyzer.

Every VER1xx diagnostic is a :class:`FlowFinding`: a rule id, a source
location, the function the analysis was inside when it fired, a
human-readable message, and a *signature* — a line-number-independent
digest of what the finding is about.  Fingerprints (rule + path +
function + signature) are what the baseline file stores, so reformatting
a file or adding a docstring never invalidates a suppression, while
moving the offending code to a different function or file does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Rule metadata: id -> (short name, help text).  The SARIF exporter
#: publishes these as ``tool.driver.rules``.
RULES: dict[str, tuple[str, str]] = {
    "VER101": (
        "lockset-imbalance",
        "A lock is acquired/released asymmetrically along some path: a "
        "release without a matching acquire, a re-acquire of a held "
        "non-reentrant lock, branches that disagree on the held set, a "
        "loop that drifts its lockset, an exit while still holding, or a "
        "yield-from delegation entered with locks held.",
    ),
    "VER102": (
        "shared-write-guard",
        "A write to a shared attribute (reachable from the worker's "
        "shared context) happens outside any lock, or the set of lock "
        "categories guarding the attribute across all write sites has an "
        "empty intersection — the static twin of an Eraser lockset "
        "violation.",
    ),
    "VER103": (
        "lock-order-cycle",
        "The statically derived lock-acquisition-order graph contains a "
        "cycle: two locks are (transitively) acquired in both nesting "
        "orders on some interprocedural paths — the static twin of the "
        "runtime LockOrderError.",
    ),
    "VER104": (
        "protocol-conformance",
        "A simulator-protocol totality violation: an op kind reachable "
        "from the workers that the engine, metrics registry, or "
        "critical-path attribution cannot name; a Compute yielded "
        "without a cost tag, or with a tag outside the CostModel/"
        "critical-path vocabulary; or a heap critical section that "
        "performs queue work without charging simulated time.",
    ),
    "VER105": (
        "wait-holding-locks",
        "A worker yields WaitWork while holding one or more locks: every "
        "other worker needing that lock starves, and if one of them is "
        "the intended waker the run deadlocks.",
    ),
}


@dataclass(frozen=True)
class FlowFinding:
    """One diagnostic from the interprocedural concurrency analysis."""

    rule: str
    path: str
    line: int
    function: str
    message: str
    signature: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baselining: independent of line numbers."""
        text = f"{self.rule}|{self.path}|{self.function}|{self.signature}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]
