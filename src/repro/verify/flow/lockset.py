"""Interprocedural lockset + escape abstract interpretation.

One combined walk computes everything the per-function lints cannot:

* **Lockset (VER101/VER105)** — the set of canonical lock tokens held
  is threaded through every statement, across helper calls (summaries)
  and generator delegation (``yield from``), with intersection meets at
  joins.  Acquire/release asymmetry, branch divergence, loop drift,
  exits that do not restore the caller's lockset, delegation entered
  while holding, and waits while holding are all reported.
* **Order graph (VER103)** — every acquire (simulated ``Acquire`` ops
  and ``with <lock>:`` internal sections alike) adds edges from each
  held token to the new one; cycles in the resulting graph are the
  static twin of the runtime ``LockOrderError``.
* **Escape analysis (VER102)** — sharedness seeds from the entry
  points' ``ctx`` parameter and flows through attribute chains,
  subscripts, unpacking, and call summaries; every write to a shared
  attribute is recorded with the held lock *categories* and aggregated
  by :mod:`.escape`.
* **Charge discipline (VER104)** — a heap-category critical section
  that performs queue work must also yield a ``Compute``: dropping the
  charge would make heap traffic free in simulated time and silently
  deflate the interference loss every experiment reports.

Lock tokens are canonical: ``ctx.``/``self.`` receivers are stripped,
subscripts collapse to ``[*]`` (any stripe/any processor), and
non-well-known tokens are class-qualified (``SimStripedTT._sim_locks[*]``
is a different lock family than ``SimStripedEvalCache._sim_locks[*]``).
Indexed families (``[*]``) are exempt from the re-acquire check — two
different stripes of one family may legitimately nest.

Categories collapse the token space for guard checking: anything
containing ``tree`` guards the shared tree, anything containing
``heap`` (including the distributed per-processor ``local_locks``)
guards the problem heap, and every other token (stripe locks, internal
real locks) is its own category.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from .callgraph import (
    DEFAULT_ENTRY_NAMES,
    EXEMPT_CALLS,
    OP_CONSTRUCTORS,
    FunctionInfo,
    Project,
)
from .cfg import BlockState, StructuredWalker
from .escape import WriteRecord, aggregate_writes
from .model import FlowFinding
from .summaries import LockSummary

#: Tokens shared by the whole run context — never class-qualified.
WELL_KNOWN_TOKENS = frozenset({"heap_lock", "tree_lock", "local_locks[*]"})

#: Upper bound on method-name resolution fan-out (defensive).
_MAX_CANDIDATES = 12

_SUBSCRIPT_RE = re.compile(r"\[[^\[\]]*\]")


def lock_category(token: str) -> str:
    """Collapse a canonical token to its guard category."""
    lowered = token.lower()
    if "tree" in lowered:
        return "tree"
    if "heap" in lowered or "local_locks" in lowered:
        return "heap"
    return token


def canonical_token(expr: ast.expr, cls: Optional[str], aliases: dict[str, str]) -> str:
    """Canonical lock token of an ``Acquire``/``Release``/``with`` operand."""
    text = ast.unparse(expr)
    if text in aliases:
        return aliases[text]
    for prefix in ("ctx.", "self."):
        if text.startswith(prefix):
            text = text[len(prefix):]
            break
    text = _SUBSCRIPT_RE.sub("[*]", text)
    if text in WELL_KNOWN_TOKENS or cls is None:
        return text
    return f"{cls}.{text}"


def _lock_aliases(func: ast.FunctionDef, cls: Optional[str]) -> dict[str, str]:
    """Per-function ``name = <lock expr>`` aliases, pre-canonicalized."""
    aliases: dict[str, str] = {}
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        if "lock" in ast.unparse(node.value).lower():
            aliases[node.targets[0].id] = canonical_token(node.value, cls, {})
    return aliases


class Analysis:
    """Whole-program state: memoized summaries, findings, writes, order."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: list[FlowFinding] = []
        self._finding_keys: set[tuple[str, str, int, str]] = set()
        self.writes: list[WriteRecord] = []
        self._write_keys: set[WriteRecord] = set()
        #: (held, acquired) -> (path, line) of the first witnessing site
        self.order_edges: dict[tuple[str, str], tuple[str, int]] = {}
        self._memo: dict[tuple[str, frozenset[str], frozenset[str]], LockSummary] = {}
        self._stack: list[str] = []

    # -- reporting ---------------------------------------------------------

    def report(self, finding: FlowFinding) -> None:
        key = (finding.rule, finding.path, finding.line, finding.signature)
        if key not in self._finding_keys:
            self._finding_keys.add(key)
            self.findings.append(finding)

    def record_write(self, record: WriteRecord) -> None:
        if record not in self._write_keys:
            self._write_keys.add(record)
            self.writes.append(record)

    def record_order(self, held: str, acquired: str, path: str, line: int) -> None:
        if held != acquired:
            self.order_edges.setdefault((held, acquired), (path, line))

    # -- interprocedural driver --------------------------------------------

    def analyze(
        self,
        info: FunctionInfo,
        entry: frozenset[str],
        shared_params: frozenset[str],
        delegated: bool = True,
    ) -> Optional[LockSummary]:
        if info.name in EXEMPT_CALLS:
            return LockSummary(entry, False, False, False)
        if info.is_generator and not delegated:
            # Calling a generator function only builds the generator
            # object; the body runs when it is delegated or driven.
            return None
        key = (info.key, entry, shared_params)
        if key in self._memo:
            return self._memo[key]
        if info.key in self._stack:
            return LockSummary(entry, False, False, False)  # cycle: identity
        self._stack.append(info.key)
        try:
            interp = _FunctionInterp(self, info, entry, shared_params)
            summary = interp.run()
        finally:
            self._stack.pop()
        self._memo[key] = summary
        return summary

    def run(self, entry_names: tuple[str, ...] = DEFAULT_ENTRY_NAMES) -> list[FlowFinding]:
        """Analyze every entry point, then aggregate writes and order."""
        for entry in self.project.entry_points(entry_names):
            shared = frozenset(p for p in entry.params if p == "ctx")
            self.analyze(entry, frozenset(), shared, delegated=True)
        for finding in aggregate_writes(self.writes):
            self.report(finding)
        for finding in self._order_cycles():
            self.report(finding)
        return self.findings

    def _order_cycles(self) -> list[FlowFinding]:
        """Tarjan SCCs of the acquisition-order graph -> VER103."""
        graph: dict[str, set[str]] = {}
        for held, acquired in self.order_edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph[node]):
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        findings: list[FlowFinding] = []
        for component in sorted(sccs):
            witnesses = sorted(
                (edge, site)
                for edge, site in self.order_edges.items()
                if edge[0] in component and edge[1] in component
            )
            (held, acquired), (path, line) = witnesses[0]
            findings.append(
                FlowFinding(
                    rule="VER103",
                    path=path,
                    line=line,
                    function="<interprocedural>",
                    message=(
                        "lock-acquisition-order cycle: "
                        f"{' <-> '.join(component)} are acquired in both "
                        f"nesting orders (e.g. {held} -> {acquired} here); "
                        "two workers interleaving these paths deadlock"
                    ),
                    signature=f"order-cycle:{'->'.join(component)}",
                )
            )
        return findings


class _FunctionInterp(StructuredWalker):
    """Abstract interpretation of one function under one calling context."""

    def __init__(
        self,
        analysis: Analysis,
        info: FunctionInfo,
        entry: frozenset[str],
        shared_params: frozenset[str],
    ) -> None:
        super().__init__()
        self.analysis = analysis
        self.info = info
        self.entry = entry
        self.shared: set[str] = set(shared_params)
        self.aliases = _lock_aliases(info.node, info.cls)
        self.fn_queue_ops = False
        self.fn_computes = False
        self.returns_shared = False
        self.exit_sets: list[frozenset[str]] = []
        self._call_shared: dict[int, bool] = {}

    # -- driving -----------------------------------------------------------

    def run(self) -> LockSummary:
        self.walk(self.info.node.body, BlockState(held=self.entry))
        exits = set(self.exit_sets) or {self.entry}
        exit_tokens = exits.pop() if len(exits) == 1 else self.entry
        return LockSummary(
            exit_tokens=exit_tokens,
            queue_ops=self.fn_queue_ops,
            computes=self.fn_computes,
            returns_shared=self.returns_shared,
        )

    def _report(self, rule: str, line: int, message: str, signature: str) -> None:
        self.analysis.report(
            FlowFinding(
                rule=rule,
                path=self.info.path,
                line=line,
                function=self.info.qualname,
                message=message,
                signature=signature,
            )
        )

    # -- sharedness --------------------------------------------------------

    def is_shared(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.shared
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.is_shared(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_shared(e) for e in expr.elts)
        if isinstance(expr, ast.IfExp):
            return self.is_shared(expr.body) or self.is_shared(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            return any(self.is_shared(v) for v in expr.values)
        if isinstance(expr, ast.BinOp):
            return self.is_shared(expr.left) or self.is_shared(expr.right)
        if isinstance(expr, ast.NamedExpr):
            return self.is_shared(expr.value)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            return expr.value is not None and self.is_shared(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return any(self.is_shared(gen.iter) for gen in expr.generators)
        if isinstance(expr, ast.Call):
            if id(expr) in self._call_shared:
                return self._call_shared[id(expr)]
            receiver_shared = isinstance(expr.func, ast.Attribute) and self.is_shared(
                expr.func.value
            )
            return receiver_shared or any(self.is_shared(a) for a in expr.args)
        return False

    def _bind_shared(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.shared.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_shared(elt)
        elif isinstance(target, ast.Starred):
            self._bind_shared(target.value)

    # -- expression / call effects -----------------------------------------

    def effect_value(self, value: ast.expr, state: BlockState) -> BlockState:
        if isinstance(value, ast.Yield):
            return self._yield_op(value, state)
        if isinstance(value, ast.YieldFrom):
            return self._delegate(value, state)
        return self._apply_nested_calls(value, state)

    def _apply_nested_calls(
        self, expr: ast.expr, state: BlockState, skip: Optional[ast.expr] = None
    ) -> BlockState:
        # Innermost-first so argument sharedness is known at the caller.
        for node in reversed(list(ast.walk(expr))):
            if isinstance(node, ast.Call) and node is not skip:
                state = self._apply_call(node, state, delegated=False)
        return state

    def _yield_op(self, value: ast.Yield, state: BlockState) -> BlockState:
        op = value.value
        if op is None:
            return state
        if not (
            isinstance(op, ast.Call)
            and isinstance(op.func, ast.Name)
            and op.func.id in OP_CONSTRUCTORS
        ):
            return self._apply_nested_calls(op, state)
        state = self._apply_nested_calls(op, state, skip=op)
        kind = op.func.id
        if kind == "Acquire" and op.args:
            token = canonical_token(op.args[0], self.info.cls, self.aliases)
            if token in state.held and "[*]" not in token:
                self._report(
                    "VER101",
                    op.lineno,
                    f"re-acquires {token} (non-reentrant)",
                    f"reacquire:{token}",
                )
            for held in sorted(state.held):
                self.analysis.record_order(held, token, self.info.path, op.lineno)
            state.held = state.held | {token}
            state.sections[token] = [False, False]
        elif kind == "Release" and op.args:
            token = canonical_token(op.args[0], self.info.cls, self.aliases)
            if token not in state.held:
                self._report(
                    "VER101",
                    op.lineno,
                    f"releases {token} without acquiring it",
                    f"release-unheld:{token}",
                )
            else:
                self._close_section(token, op.lineno, state)
                state.held = state.held - {token}
        elif kind == "Compute":
            self.fn_computes = True
            for flags in state.sections.values():
                flags[1] = True
        elif kind == "WaitWork" and state.held:
            self._report(
                "VER105",
                op.lineno,
                f"waits for work while holding {sorted(state.held)}; the "
                "waker needs those locks (deadlock)",
                f"wait-holding:{'+'.join(sorted(state.held))}",
            )
        return state

    def _close_section(self, token: str, line: int, state: BlockState) -> None:
        flags = state.sections.pop(token, None)
        if (
            flags is not None
            and flags[0]
            and not flags[1]
            and lock_category(token) == "heap"
        ):
            self._report(
                "VER104",
                line,
                f"heap critical section on {token} performs queue work "
                "but never yields a Compute; its simulated time would be "
                "free",
                f"uncharged-section:{token}",
            )

    def _delegate(self, value: ast.YieldFrom, state: BlockState) -> BlockState:
        if state.held:
            self._report(
                "VER101",
                value.lineno,
                f"delegates to {ast.unparse(value.value)} while holding "
                f"{sorted(state.held)}; sub-generators manage their own "
                "locks",
                f"delegate-holding:{'+'.join(sorted(state.held))}",
            )
        call = value.value
        if not isinstance(call, ast.Call):
            return self._apply_nested_calls(call, state)
        state = self._apply_nested_calls(call, state, skip=call)
        return self._apply_call(call, state, delegated=True)

    def _mark_queue(self, state: BlockState) -> None:
        self.fn_queue_ops = True
        for flags in state.sections.values():
            flags[0] = True

    def _mark_compute(self, state: BlockState) -> None:
        self.fn_computes = True
        for flags in state.sections.values():
            flags[1] = True

    def _apply_call(
        self, call: ast.Call, state: BlockState, delegated: bool
    ) -> BlockState:
        func = call.func
        project = self.analysis.project
        if isinstance(func, ast.Name):
            if func.id in OP_CONSTRUCTORS:
                self._call_shared[id(call)] = False
                return state
            info = project.resolve_name(func.id, self.info.path)
            if info is None or info.name in EXEMPT_CALLS:
                self._call_shared[id(call)] = any(
                    self.is_shared(a) for a in call.args
                )
                return state
            return self._apply_candidates(call, [info], state, delegated, False)
        if not isinstance(func, ast.Attribute):
            self._call_shared[id(call)] = False
            return state
        if func.attr in EXEMPT_CALLS:
            self._call_shared[id(call)] = False
            return state
        if not self.is_shared(func.value):
            self._call_shared[id(call)] = False
            return state
        candidates = project.resolve_method(func.attr, self.info.path)
        if not candidates:
            # Opaque method on a shared object (dict/list/bus surface).
            self._call_shared[id(call)] = True
            return state
        keyed = [c for c in candidates if c.keyed_counter is not None]
        if keyed:
            self._record_keyed(keyed[0], call, state)
            self._call_shared[id(call)] = False
            return state
        return self._apply_candidates(
            call, candidates[:_MAX_CANDIDATES], state, delegated, True
        )

    def _apply_candidates(
        self,
        call: ast.Call,
        candidates: list[FunctionInfo],
        state: BlockState,
        delegated: bool,
        is_method: bool,
    ) -> BlockState:
        shared_result = False
        exit_tokens: Optional[frozenset[str]] = None
        applied = False
        for cand in candidates:
            summary = self.analysis.analyze(
                cand,
                entry=state.held,
                shared_params=self._bind_params(cand, call, is_method),
                delegated=delegated,
            )
            if summary is None:
                continue
            applied = True
            if summary.queue_ops:
                self._mark_queue(state)
            if summary.computes:
                self._mark_compute(state)
            shared_result = shared_result or summary.returns_shared
            if (
                cand.cls is not None
                and cand.cls in self.analysis.project.queue_classes
                and cand.name in ("push", "pop")
            ):
                self._mark_queue(state)
            if exit_tokens is None:
                exit_tokens = summary.exit_tokens
            elif exit_tokens != summary.exit_tokens:
                exit_tokens = state.held  # candidates disagree: identity
        if not applied:
            # Every candidate was a non-delegated generator: only the
            # generator object was built; treat it as a shared handle.
            self._call_shared[id(call)] = is_method
            return state
        self._call_shared[id(call)] = shared_result
        if exit_tokens is not None and exit_tokens != state.held:
            for token in state.held - exit_tokens:
                state.sections.pop(token, None)
            for token in exit_tokens - state.held:
                state.sections[token] = [False, False]
            state.held = exit_tokens
        return state

    def _bind_params(
        self, cand: FunctionInfo, call: ast.Call, is_method: bool
    ) -> frozenset[str]:
        shared: set[str] = set()
        params = list(cand.params)
        if is_method and params:
            shared.add(params[0])  # receiver is shared by construction
            params = params[1:]
        for param, arg in zip(params, call.args):
            if self.is_shared(arg):
                shared.add(param)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in cand.params and self.is_shared(kw.value):
                shared.add(kw.arg)
        return frozenset(shared)

    def _record_keyed(
        self, writer: FunctionInfo, call: ast.Call, state: BlockState
    ) -> None:
        """A keyed-counter bump: one write location per literal key."""
        assert writer.keyed_counter is not None
        attr, key_param = writer.keyed_counter
        arg_index = writer.params.index(key_param) - 1  # receiver is bound
        key_expr: Optional[ast.expr] = None
        if 0 <= arg_index < len(call.args):
            key_expr = call.args[arg_index]
        for kw in call.keywords:
            if kw.arg == key_param:
                key_expr = kw.value
        keys: list[str] = []
        if isinstance(key_expr, ast.Constant) and isinstance(key_expr.value, str):
            keys = [key_expr.value]
        elif isinstance(key_expr, ast.IfExp):
            for side in (key_expr.body, key_expr.orelse):
                if isinstance(side, ast.Constant) and isinstance(side.value, str):
                    keys.append(side.value)
        if not keys:
            keys = ["<dynamic>"]
        prefix = f"{writer.cls}." if writer.cls else ""
        categories = frozenset(lock_category(t) for t in state.held)
        for key in keys:
            self.analysis.record_write(
                WriteRecord(
                    location=f"{prefix}{attr}[{key}]",
                    path=self.info.path,
                    line=call.lineno,
                    function=self.info.qualname,
                    categories=categories,
                )
            )

    # -- assignments (escape analysis) -------------------------------------

    def effect_assign(self, stmt: ast.stmt, state: BlockState) -> None:
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]  # type: ignore[attr-defined]
        value_shared = stmt.value is not None and self.is_shared(
            stmt.value  # type: ignore[attr-defined, arg-type]
        )
        for target in targets:
            self._record_target(target, state, value_shared)

    def _record_target(
        self, target: ast.expr, state: BlockState, value_shared: bool
    ) -> None:
        if isinstance(target, ast.Name):
            if value_shared:
                self.shared.add(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, state, value_shared)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, state, value_shared)
            return
        attribute: Optional[ast.Attribute] = None
        if isinstance(target, ast.Attribute):
            attribute = target
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attribute = target.value  # obj.attr[i] = x writes into obj.attr
        if attribute is None or not self.is_shared(attribute.value):
            return
        base = attribute.value
        if (
            isinstance(base, ast.Name)
            and self.info.params
            and base.id == self.info.params[0]
            and self.info.cls is not None
        ):
            location = f"{self.info.cls}.{attribute.attr}"
        else:
            location = attribute.attr
        self.analysis.record_write(
            WriteRecord(
                location=location,
                path=self.info.path,
                line=target.lineno,
                function=self.info.qualname,
                categories=frozenset(lock_category(t) for t in state.held),
            )
        )

    # -- control-flow hooks -------------------------------------------------

    def _stmt(self, stmt: ast.stmt, state: BlockState) -> tuple[BlockState, bool]:
        if isinstance(stmt, ast.For) and self.is_shared(stmt.iter):
            self._bind_shared(stmt.target)
        result = super()._stmt(stmt, state)
        if (
            isinstance(stmt, ast.Return)
            and stmt.value is not None
            and self.is_shared(stmt.value)  # after effect_value ran on it
        ):
            self.returns_shared = True
        return result

    def effect_with_enter(
        self, item: ast.withitem, state: BlockState
    ) -> tuple[BlockState, Optional[str]]:
        if "lock" not in ast.unparse(item.context_expr).lower():
            return state, None
        token = canonical_token(item.context_expr, self.info.cls, self.aliases)
        if token in state.held and "[*]" not in token:
            self._report(
                "VER101",
                item.context_expr.lineno,
                f"re-enters {token} (non-reentrant)",
                f"reacquire:{token}",
            )
        for held in sorted(state.held):
            self.analysis.record_order(
                held, token, self.info.path, item.context_expr.lineno
            )
        state.held = state.held | {token}
        state.sections[token] = [False, False]
        return state, token

    def effect_with_exit(
        self, token: str, line: int, state: BlockState
    ) -> BlockState:
        self._close_section(token, line, state)
        state.held = state.held - {token}
        return state

    def report_divergence(
        self, line: int, a: frozenset[str], b: frozenset[str]
    ) -> None:
        self._report(
            "VER101",
            line,
            f"paths disagree on held locks: {sorted(a)} vs {sorted(b)}",
            f"divergence:{'+'.join(sorted(a))}|{'+'.join(sorted(b))}",
        )

    def report_loop_imbalance(
        self, line: int, entry: frozenset[str], exit_: frozenset[str]
    ) -> None:
        self._report(
            "VER101",
            line,
            f"loop body is lock-unbalanced: enters with {sorted(entry)}, "
            f"ends with {sorted(exit_)}",
            f"loop-imbalance:{'+'.join(sorted(entry))}|{'+'.join(sorted(exit_))}",
        )

    def report_exit(self, line: int, state: BlockState) -> None:
        self.exit_sets.append(state.held)
        if state.held != self.entry:
            extra = sorted(state.held - self.entry)
            dropped = sorted(self.entry - state.held)
            parts = []
            if extra:
                parts.append(f"still holds {extra}")
            if dropped:
                parts.append(f"released the caller's {dropped}")
            self._report(
                "VER101",
                line,
                f"{self.info.qualname} exits lock-unbalanced: "
                f"{' and '.join(parts)}",
                f"exit-imbalance:{'+'.join(sorted(state.held))}",
            )


def analyze_project(
    project: Project, entry_names: tuple[str, ...] = DEFAULT_ENTRY_NAMES
) -> list[FlowFinding]:
    """Lockset + escape + order analysis over ``project``'s entry points."""
    return Analysis(project).run(entry_names)
