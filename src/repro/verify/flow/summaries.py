"""Call summaries and protocol-conformance checks (VER104).

Two things live here:

* :class:`LockSummary` — the memoized effect of analyzing one function
  under one calling context (entry lockset + shared-parameter binding).
  Summaries are what make the lockset interpretation interprocedural:
  a helper analyzed once per context replays its net effects (exit
  lockset, queue traffic, simulated-time charges, sharedness of its
  return value) at every other call site for free.

* **Protocol conformance** — the call-graph-aware lift of the VER002/
  VER005/VER006 total-map lints: instead of "every Op subclass has an
  arm somewhere", these checks start from the op kinds *actually
  yielded* by the analyzed worker code and verify that each one is
  handled by ``Engine._handle``, named in ``OP_METRICS``, and
  classified in ``OP_ATTRIBUTION``; and that every ``Compute`` carries
  a cost tag drawn from the declared vocabulary (``CostModel`` field
  names, the what-if profiler's ``PRIMITIVE_FIELDS``, and the serial
  chunk tag) — an op or tag outside these maps would silently corrupt
  the loss decomposition every experiment reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from ..staticcheck import _mapping_keys
from .callgraph import OP_CONSTRUCTORS, Project
from .model import FlowFinding


@dataclass(frozen=True)
class LockSummary:
    """Net effect of one function under one calling context."""

    exit_tokens: frozenset[str]
    queue_ops: bool
    computes: bool
    returns_shared: bool


#: The serial-subtree chunk tag (charged by ``_charge_serial``).
SERIAL_TAG = "serial"


def tag_vocabulary(costmodel_source: str, whatif_source: str) -> frozenset[str]:
    """Legal ``Compute(tag=...)`` values, from the declaring modules."""
    vocab: set[str] = {SERIAL_TAG}
    cm_tree = ast.parse(costmodel_source)
    for node in ast.walk(cm_tree):
        if isinstance(node, ast.ClassDef) and node.name == "CostModel":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    vocab.add(item.target.id)
    whatif_tree = ast.parse(whatif_source)
    keys = _mapping_keys(whatif_tree, "PRIMITIVE_FIELDS")
    for key in keys or []:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            vocab.add(key.value)
    return frozenset(vocab)


def _enclosing_functions(tree: ast.Module) -> dict[int, str]:
    """Map every AST node id to its innermost enclosing function name."""
    owner: dict[int, str] = {}
    for func in ast.walk(tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(func):
                owner[id(sub)] = func.name
    return owner


def check_compute_tags(project: Project, vocab: frozenset[str]) -> list[FlowFinding]:
    """Every ``Compute`` in the analyzed modules is tagged, legally."""
    findings: list[FlowFinding] = []
    for path in sorted(project.trees):
        tree = project.trees[path]
        owner = _enclosing_functions(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Compute"
            ):
                continue
            function = owner.get(id(node), "<module>")
            tag: Optional[ast.expr] = None
            for kw in node.keywords:
                if kw.arg == "tag":
                    tag = kw.value
            if tag is None:
                findings.append(
                    FlowFinding(
                        rule="VER104",
                        path=path,
                        line=node.lineno,
                        function=function,
                        message=(
                            "Compute yielded without a tag; its simulated "
                            "time could not be attributed to any cost "
                            "primitive"
                        ),
                        signature=f"untagged-compute:{function}",
                    )
                )
            elif isinstance(tag, ast.Constant) and isinstance(tag.value, str):
                if tag.value not in vocab:
                    findings.append(
                        FlowFinding(
                            rule="VER104",
                            path=path,
                            line=node.lineno,
                            function=function,
                            message=(
                                f"Compute tag {tag.value!r} is outside the "
                                "declared vocabulary (CostModel fields, "
                                "PRIMITIVE_FIELDS, 'serial'); the what-if "
                                "profiler would drop its time"
                            ),
                            signature=f"unknown-tag:{tag.value}",
                        )
                    )
    return findings


def reachable_ops(project: Project) -> dict[str, tuple[str, int]]:
    """Op kinds yielded anywhere in the analyzed modules (first site)."""
    ops: dict[str, tuple[str, int]] = {}
    for path in sorted(project.trees):
        for node in ast.walk(project.trees[path]):
            if not (isinstance(node, ast.Yield) and node.value is not None):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in OP_CONSTRUCTORS
            ):
                ops.setdefault(value.func.id, (path, node.lineno))
    return ops


def _isinstance_arms(engine_source: str) -> set[str]:
    """Op class names with an ``isinstance`` arm in ``Engine._handle``."""
    arms: set[str] = set()
    tree = ast.parse(engine_source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_handle":
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "isinstance"
                    and len(sub.args) == 2
                    and isinstance(sub.args[1], ast.Name)
                ):
                    arms.add(sub.args[1].id)
    return arms


def _literal_keys(source: str, name: str) -> Optional[set[str]]:
    keys = _mapping_keys(ast.parse(source), name)
    if keys is None:
        return None
    return {
        key.value
        for key in keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def check_op_conformance(
    project: Project,
    engine_source: str,
    registry_source: str,
    critpath_source: str,
) -> list[FlowFinding]:
    """Every op kind the workers actually yield is fully accounted for."""
    findings: list[FlowFinding] = []
    arms = _isinstance_arms(engine_source)
    metrics = _literal_keys(registry_source, "OP_METRICS")
    attribution = _literal_keys(critpath_source, "OP_ATTRIBUTION")
    for op, (path, line) in sorted(reachable_ops(project).items()):
        missing = []
        if op not in arms:
            missing.append("an Engine._handle isinstance arm")
        if metrics is not None and op not in metrics:
            missing.append("an OP_METRICS entry")
        if attribution is not None and op not in attribution:
            missing.append("an OP_ATTRIBUTION entry")
        if missing:
            findings.append(
                FlowFinding(
                    rule="VER104",
                    path=path,
                    line=line,
                    function="<module>",
                    message=(
                        f"op {op} is yielded by reachable worker code but "
                        f"has no {' / '.join(missing)}; its time would "
                        "escape accounting"
                    ),
                    signature=f"unhandled-op:{op}",
                )
            )
    return findings
