"""Command-line entry: ``python -m repro.verify.flow``.

Analyzes the repository tree, applies the committed baseline, prints
any non-baselined findings, and optionally writes a SARIF report.
Exit status 1 iff a non-baselined finding exists — the shape pre-commit
and CI expect.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import analyze_repo, repo_root
from .baseline import BASELINE_NAME, filter_baselined, load_baseline
from .sarif import to_sarif_bytes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.verify.flow",
        description="interprocedural lockset + escape analysis",
    )
    parser.add_argument(
        "root",
        nargs="?",
        type=Path,
        default=None,
        help="repository root (default: autodetect from package location)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        help="write a SARIF 2.1.0 report to this path",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    args = parser.parse_args(argv)

    root = args.root if args.root is not None else repo_root()
    findings = analyze_repo(root)
    baseline_path = (
        args.baseline if args.baseline is not None else root / BASELINE_NAME
    )
    novel, baselined = filter_baselined(findings, load_baseline(baseline_path))

    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_bytes(to_sarif_bytes(findings))

    for finding in novel:
        print(finding)
    if novel:
        print(
            f"flow: {len(novel)} non-baselined finding(s) "
            f"({len(baselined)} baselined)",
            file=sys.stderr,
        )
        return 1
    suffix = f" ({len(baselined)} baselined)" if baselined else ""
    print(f"flow: clean{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
