"""Baseline / suppression file for flow findings.

The gate is "zero *non-baselined* findings": a finding whose
fingerprint appears in the committed baseline is accepted (with a
recorded reason) instead of failing the build.  Fingerprints hash the
rule, path, function, and structural signature — **not** the line — so
reformatting or unrelated edits do not invalidate entries, while moving
a write under a different lock does.

File format (JSON, committed at the repo root)::

    {
      "version": 1,
      "suppressions": [
        {"fingerprint": "abc...", "rule": "VER102", "reason": "..."}
      ]
    }

Adding an entry is a reviewed act: the reason string is mandatory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .model import FlowFinding

#: Repo-relative location of the committed baseline.
BASELINE_NAME = "verify_flow_baseline.json"


@dataclass(frozen=True)
class Suppression:
    fingerprint: str
    rule: str
    reason: str


def load_baseline(path: Path) -> list[Suppression]:
    """Parse a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"{path}: unsupported baseline format")
    suppressions: list[Suppression] = []
    for entry in data.get("suppressions", []):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed suppression entry {entry!r}")
        fingerprint = entry.get("fingerprint")
        rule = entry.get("rule")
        reason = entry.get("reason")
        if not (
            isinstance(fingerprint, str)
            and isinstance(rule, str)
            and isinstance(reason, str)
            and reason.strip()
        ):
            raise ValueError(
                f"{path}: suppression needs fingerprint/rule/reason: {entry!r}"
            )
        suppressions.append(Suppression(fingerprint, rule, reason))
    return suppressions


def save_baseline(path: Path, suppressions: list[Suppression]) -> None:
    """Write a baseline file with deterministic ordering."""
    payload = {
        "version": 1,
        "suppressions": [
            {"fingerprint": s.fingerprint, "rule": s.rule, "reason": s.reason}
            for s in sorted(suppressions, key=lambda s: (s.rule, s.fingerprint))
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def filter_baselined(
    findings: list[FlowFinding], suppressions: list[Suppression]
) -> tuple[list[FlowFinding], list[FlowFinding]]:
    """Split findings into (novel, baselined) by fingerprint."""
    accepted = {s.fingerprint for s in suppressions}
    novel: list[FlowFinding] = []
    baselined: list[FlowFinding] = []
    for finding in findings:
        (baselined if finding.fingerprint() in accepted else novel).append(finding)
    return novel, baselined
