"""Structured control-flow engine for the abstract interpreters.

Python's AST is already a structured control-flow graph: every
``if``/``while``/``for``/``with`` statement is a single-entry region
whose exits are the fall-through edge plus any ``return``/``break``/
``continue``/``raise`` terminators inside it.  This module walks that
structure once per (function, entry-state) pair, threading an abstract
state through straight-line code and applying the classic join rules at
region boundaries:

* **if/else** — both arms are interpreted from a copy of the entry
  state; arms that terminate drop out, surviving arms must agree on the
  held-lock set (divergence is reported via a hook) and are met by
  intersection.
* **while/for** — the body is interpreted once from the loop-entry
  state; a body whose exit state differs from its entry would change
  the lockset per iteration and is reported.  ``break``/``continue``
  must match the loop-entry state.
* **return** — an exit edge; the interpreter compares the exit state
  against the function's entry state (a helper may legitimately run
  entirely under a caller's lock).
* **raise** — terminates the path without an exit-balance check,
  matching the runtime: the engine tears the whole simulation down on a
  worker exception, so no lock is ever "leaked" to another worker.
* **with** — region whose entry/exit effects are interpreter hooks
  (used to model ``with self._real_locks[i]:`` internal lock sections).

Subclasses implement the ``effect_*``/``report_*`` hooks; the walk
itself stays purely structural.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class BlockState:
    """Abstract state threaded through a function body.

    ``held`` is the lockset lattice element (a set of canonical lock
    tokens; the meet at joins is intersection).  ``sections`` carries
    per-open-critical-section flags — whether the section has performed
    queue work and whether it has charged simulated time — used by the
    VER104 uncharged-section check.
    """

    held: frozenset[str] = frozenset()
    sections: dict[str, list[bool]] = field(default_factory=dict)

    def copy(self) -> "BlockState":
        return BlockState(
            held=self.held,
            sections={token: flags[:] for token, flags in self.sections.items()},
        )

    def meet(self, other: "BlockState") -> "BlockState":
        merged: dict[str, list[bool]] = {}
        for token in self.held & other.held:
            a = self.sections.get(token, [False, False])
            b = other.sections.get(token, [False, False])
            merged[token] = [a[0] or b[0], a[1] or b[1]]
        return BlockState(held=self.held & other.held, sections=merged)


class StructuredWalker:
    """Region-structured abstract interpretation over one function body."""

    def __init__(self) -> None:
        self._loop_entry: list[frozenset[str]] = []

    # -- hooks (overridden by the interpreter) -----------------------------

    def effect_value(self, value: ast.expr, state: BlockState) -> BlockState:
        """Apply the effects of an evaluated expression (yields, calls)."""
        return state

    def effect_assign(self, stmt: ast.stmt, state: BlockState) -> None:
        """Record attribute stores of an assignment statement."""

    def effect_with_enter(
        self, item: ast.withitem, state: BlockState
    ) -> tuple[BlockState, Optional[str]]:
        """Enter a ``with`` item; returns (state, token) to exit with."""
        return state, None

    def effect_with_exit(
        self, token: str, line: int, state: BlockState
    ) -> BlockState:
        return state

    def report_divergence(
        self, line: int, a: frozenset[str], b: frozenset[str]
    ) -> None:
        """Two joining paths hold different locks."""

    def report_loop_imbalance(
        self, line: int, entry: frozenset[str], exit_: frozenset[str]
    ) -> None:
        """A loop body's exit lockset differs from its entry."""

    def report_exit(self, line: int, state: BlockState) -> None:
        """A function exit edge (return or fall-through)."""

    # -- the walk ----------------------------------------------------------

    def walk(self, body: Sequence[ast.stmt], state: BlockState) -> BlockState:
        state, terminated = self._block(body, state)
        if not terminated:
            last = body[-1].lineno if body else 1
            self.report_exit(last, state)
        return state

    def _block(
        self, stmts: Sequence[ast.stmt], state: BlockState
    ) -> tuple[BlockState, bool]:
        terminated = False
        for stmt in stmts:
            if terminated:
                break  # unreachable; stop interpreting
            state, terminated = self._stmt(stmt, state)
        return state, terminated

    def _stmt(self, stmt: ast.stmt, state: BlockState) -> tuple[BlockState, bool]:
        if isinstance(stmt, ast.Expr):
            return self.effect_value(stmt.value, state), False
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                state = self.effect_value(stmt.value, state)
            self.effect_assign(stmt, state)
            return state, False
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                state = self.effect_value(stmt.value, state)
            self.report_exit(stmt.lineno, state)
            return state, True
        if isinstance(stmt, ast.Raise):
            return state, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_entry and state.held != self._loop_entry[-1]:
                self.report_divergence(stmt.lineno, state.held, self._loop_entry[-1])
            return state, True
        if isinstance(stmt, ast.If):
            state = self.effect_value(stmt.test, state)
            body_state, body_term = self._block(stmt.body, state.copy())
            else_state, else_term = self._block(stmt.orelse, state.copy())
            if body_term and else_term:
                return state, True
            if body_term:
                return else_state, False
            if else_term:
                return body_state, False
            if body_state.held != else_state.held:
                self.report_divergence(stmt.lineno, body_state.held, else_state.held)
            return body_state.meet(else_state), False
        if isinstance(stmt, (ast.While, ast.For)):
            probe = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            state = self.effect_value(probe, state)
            self._loop_entry.append(state.held)
            body_state, body_term = self._block(stmt.body, state.copy())
            self._loop_entry.pop()
            if not body_term and body_state.held != state.held:
                self.report_loop_imbalance(stmt.lineno, state.held, body_state.held)
            self._block(stmt.orelse, state.copy())
            return state, False
        if isinstance(stmt, ast.With):
            tokens: list[tuple[str, int]] = []
            for item in stmt.items:
                state = self.effect_value(item.context_expr, state)
                state, token = self.effect_with_enter(item, state)
                if token is not None:
                    tokens.append((token, stmt.lineno))
            state, terminated = self._block(stmt.body, state)
            for token, line in reversed(tokens):
                state = self.effect_with_exit(token, line, state)
            return state, terminated
        if isinstance(stmt, ast.Assert):
            state = self.effect_value(stmt.test, state)
            return state, False
        if isinstance(stmt, ast.Try):
            # Conservative: interpret body then each handler/orelse/finally
            # from the body's entry (exceptions may jump); no balance
            # guarantees are claimed inside try regions.
            entry = state.copy()
            state, _ = self._block(stmt.body, state)
            for handler in stmt.handlers:
                self._block(handler.body, entry.copy())
            self._block(stmt.orelse, state.copy())
            state, _ = self._block(stmt.finalbody, state)
            return state, False
        # Nested defs, imports, global/nonlocal, match, pass, delete:
        # no lock effects; interpret child statements conservatively.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                state, _ = self._stmt(child, state)
        return state, False
