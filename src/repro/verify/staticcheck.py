"""AST lint enforcing the repo's concurrency and determinism invariants.

Seven rules, each an invariant the rest of the codebase argues from:

* **VER001 — lock discipline in the parallel ER workers.**  Every
  module-level worker generator in ``core/er_parallel.py`` is walked
  path-sensitively, tracking the set of locks held across
  ``yield Acquire(...)`` / ``yield Release(...)``.  Tree-mutating
  ``ctx`` methods must be called with the tree lock held, heap
  operations with a heap lock held, counter bumps with *some* lock
  held, and direct attribute stores (``node.value = ...``) with a lock
  held; generators must delegate (``yield from``), wait, and return
  with no locks held, and branches/loops must agree on what they hold.
  ``_Context.expand_positions`` is the one documented exemption (the
  popping worker owns the node; see its docstring).
* **VER002 — engine accounting coverage.**  Every ``Op`` subclass in
  ``sim/ops.py`` must be a frozen dataclass and must have an
  ``isinstance`` arm in ``Engine._handle`` — an op the engine silently
  drops would corrupt the simulated clock.
* **VER003 — determinism.**  No wall-clock reads (``time.*``,
  ``datetime.*``) and no unseeded randomness (``random.*`` other than
  ``random.Random(seed)``) anywhere in ``sim/``, ``core/``, or
  ``cache/``: identical
  runs must produce identical reports, which the determinism tests and
  the race-detector clean-trace gates both rely on.
* **VER004 — picklable multiproc boundary.**  Every task submitted to
  an executor in ``parallel/multiproc.py`` must be a module-level
  function referenced by name, never a closure, lambda, or bound
  method — the spawn start method would fail at runtime, and only on
  platforms that spawn.
* **VER005 — telemetry coverage.**  Every ``Op`` subclass in
  ``sim/ops.py`` must have an entry in ``repro.obs.registry.OP_METRICS``
  and every ``EV_*`` event type in ``repro.obs.events`` an entry in
  ``EVENT_METRICS`` — an op or event the metrics registry cannot name
  would vanish from every snapshot; conversely a registry key naming a
  nonexistent op or event is dead mapping.
* **VER006 — critical-path attribution coverage.**  Every ``Op``
  subclass in ``sim/ops.py`` must have an entry in
  ``repro.obs.critpath.OP_ATTRIBUTION`` whose value names a real loss
  class (``busy`` / ``interference`` / ``starvation``) — an op kind the
  critical-path profiler cannot classify would silently escape makespan
  attribution; conversely an entry naming a nonexistent op is dead
  mapping.
* **VER007 — eval-parity coverage.**  Every class in ``games/`` that
  implements ``batch_eval`` must be named in
  ``tests/test_eval_differential.py`` — a vectorized evaluator the
  differential battery never exercises could silently diverge from its
  scalar twin, and every search result computed through the batching
  seam would be wrong with all parity gates still green.  ``Protocol``
  classes are declarations, not implementations, and are skipped.
* **VER008 — clock/RNG seams.**  In the sim-deterministic packages
  (``sim/``, ``core/``, ``obs/``) any ``time.*``/``datetime.*``/
  ``random.*`` attribute reference — call or bare — must go through a
  sanctioned seam (``_CLOCK_SEAMS``): the event bus's injectable clock,
  the span ring's wall clock, and the ledger's record timestamp.
  Stricter than VER003 because a bare ``time.perf_counter`` stored as
  a default is nondeterminism deferred, not avoided.
* **VER009 — real-backend event coverage.**  Every ``EV_*`` constant
  the real backends (``parallel/``) emit must exist in
  ``repro.obs.events``, have an ``EVENT_METRICS`` entry, and be served
  by the live registry feed: ``repro.obs.registry`` must define
  ``feed_event`` and ``aggregate`` must route through it, so a metric
  visible mid-run (``repro-gametree top``, the Prometheus endpoint) is
  the same metric the post-hoc snapshot reports.  Without this, an
  event added to a real backend could be invisible live, visible
  post-hoc, or both-but-differently.

The multiproc coordinator itself is exempt from VER001 by design: it is
single-threaded, and worker processes share nothing (DESIGN.md
"Verification").  A finding can be suppressed by appending
``# verify: ok`` to the offending line, which is meant for accesses that
are safe for reasons the lint cannot see; every use should carry a
comment explaining why.

Run as ``python -m repro.verify.staticcheck [root]``, via
``repro-gametree verify``, or through ``tests/test_verify_staticcheck.py``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: ``ctx``/``self`` methods that read or write shared tree state and must
#: run under the tree lock.
TREE_METHODS = frozenset(
    {
        "combine",
        "make_child",
        "maybe_push_spec",
        "select_e_child",
        "start_refutation",
        "_convert_to_r",
        "_check_e_node",
        "_dispatch_at",
        "window",
        "is_cut_off",
        "has_finished_ancestor",
        "_best_candidate",
        "_active_e_children",
    }
)

#: Module-level helpers that touch shared tree state.
TREE_FUNCTIONS = frozenset({"_mark_refuted_if_cut"})

#: ``ctx`` methods that operate on the problem heap queues.
HEAP_METHODS = frozenset({"pop_work"})

#: Substrings identifying a queue object whose push/pop needs a heap lock.
_QUEUE_HINTS = ("primary", "speculative", "local_queues", "queues")

#: Documented exemptions from the lock contracts (see module docstring).
EXEMPT_METHODS = frozenset({"expand_positions", "_note", "notify_all"})

#: Constructors of simulator ops — not subject to call contracts.
_OP_CONSTRUCTORS = frozenset({"Acquire", "Release", "Compute", "WaitWork"})


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation found by the static checker."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _suppressed_lines(source: str) -> frozenset[int]:
    return frozenset(
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if "# verify: ok" in text
    )


def _lock_category(lock_text: str) -> str:
    return "tree" if "tree" in lock_text else "heap"


def _holds(held: frozenset[str], category: str) -> bool:
    return any(_lock_category(text) == category for text in held)


class _WorkerAnalyzer:
    """Path-sensitive held-lock analysis of one worker generator (VER001)."""

    def __init__(self, path: str, func: ast.FunctionDef) -> None:
        self.path = path
        self.func = func
        self.findings: list[LintFinding] = []
        self._loop_entry: list[frozenset[str]] = []

    def run(self) -> list[LintFinding]:
        held, terminated = self._block(self.func.body, frozenset())
        if not terminated and held:
            self._report(
                self.func.lineno,
                f"generator {self.func.name!r} can finish still holding {sorted(held)}",
            )
        return self.findings

    # -- reporting ---------------------------------------------------------

    def _report(self, line: int, message: str) -> None:
        self.findings.append(LintFinding("VER001", self.path, line, message))

    # -- statement walk ----------------------------------------------------

    def _block(
        self, stmts: Sequence[ast.stmt], held: frozenset[str]
    ) -> tuple[frozenset[str], bool]:
        terminated = False
        for stmt in stmts:
            if terminated:
                break  # unreachable code; stop analyzing
            held, terminated = self._stmt(stmt, held)
        return held, terminated

    def _stmt(self, stmt: ast.stmt, held: frozenset[str]) -> tuple[frozenset[str], bool]:
        if isinstance(stmt, ast.Expr):
            held = self._value_effects(stmt.value, held)
            self._check_calls(stmt, held)
            return held, False
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                held = self._value_effects(value, held)
            self._check_attribute_stores(stmt, held)
            self._check_calls(stmt, held)
            return held, False
        if isinstance(stmt, ast.Return):
            self._check_calls(stmt, held)
            if held:
                self._report(
                    stmt.lineno, f"returns while still holding {sorted(held)}"
                )
            return held, True
        if isinstance(stmt, ast.Raise):
            return held, True
        if isinstance(stmt, (ast.Continue, ast.Break)):
            if self._loop_entry and held != self._loop_entry[-1]:
                self._report(
                    stmt.lineno,
                    f"{'continue' if isinstance(stmt, ast.Continue) else 'break'} "
                    f"with held locks {sorted(held)} != loop entry "
                    f"{sorted(self._loop_entry[-1])}",
                )
            return held, True
        if isinstance(stmt, ast.If):
            self._check_calls(stmt.test, held)
            body_held, body_term = self._block(stmt.body, held)
            else_held, else_term = self._block(stmt.orelse, held)
            if body_term and else_term:
                return held, True
            if body_term:
                return else_held, False
            if else_term:
                return body_held, False
            if body_held != else_held:
                self._report(
                    stmt.lineno,
                    f"branches disagree on held locks: {sorted(body_held)} "
                    f"vs {sorted(else_held)}",
                )
            return body_held & else_held, False
        if isinstance(stmt, (ast.While, ast.For)):
            probe = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            self._check_calls(probe, held)
            self._loop_entry.append(held)
            body_held, body_term = self._block(stmt.body, held)
            self._loop_entry.pop()
            if not body_term and body_held != held:
                self._report(
                    stmt.lineno,
                    f"loop body is lock-unbalanced: enters with {sorted(held)}, "
                    f"ends with {sorted(body_held)}",
                )
            self._block(stmt.orelse, held)
            return held, False
        if isinstance(stmt, ast.Assert):
            self._check_calls(stmt, held)
            return held, False
        # with/try/match never appear in the worker generators; analyze
        # their bodies conservatively without balance guarantees.
        for field_stmts in ast.iter_child_nodes(stmt):
            if isinstance(field_stmts, ast.stmt):
                held, _ = self._stmt(field_stmts, held)
        return held, False

    # -- lock effects ------------------------------------------------------

    def _value_effects(self, value: ast.expr, held: frozenset[str]) -> frozenset[str]:
        """Apply the held-set effects of yielded simulator ops."""
        if isinstance(value, ast.YieldFrom):
            if held:
                target = ast.unparse(value.value)
                self._report(
                    value.lineno,
                    f"delegates to {target} while holding {sorted(held)}; "
                    "sub-generators manage their own locks",
                )
            return held
        if not isinstance(value, ast.Yield) or value.value is None:
            return held
        op = value.value
        if not (isinstance(op, ast.Call) and isinstance(op.func, ast.Name)):
            return held
        if op.func.id == "Acquire" and op.args:
            text = ast.unparse(op.args[0])
            if text in held:
                self._report(op.lineno, f"re-acquires {text} (non-reentrant)")
            return held | {text}
        if op.func.id == "Release" and op.args:
            text = ast.unparse(op.args[0])
            if text not in held:
                self._report(op.lineno, f"releases {text} without acquiring it")
            return held - {text}
        if op.func.id == "WaitWork" and held:
            self._report(
                op.lineno, f"waits for work while holding {sorted(held)} (deadlock)"
            )
        return held

    # -- contracts ---------------------------------------------------------

    def _check_attribute_stores(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]  # type: ignore[list-item]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Store
                ):
                    if not held:
                        self._report(
                            node.lineno,
                            f"stores shared attribute "
                            f"{ast.unparse(node)!r} with no lock held",
                        )

    def _check_calls(self, root: ast.AST, held: frozenset[str]) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _OP_CONSTRUCTORS:
                    continue
                if func.id in TREE_FUNCTIONS and not _holds(held, "tree"):
                    self._report(
                        node.lineno,
                        f"{func.id}() called without the tree lock "
                        f"(held: {sorted(held)})",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            base = ast.unparse(func.value)
            if attr in EXEMPT_METHODS:
                continue
            if attr in TREE_METHODS and base in ("ctx", "self"):
                if not _holds(held, "tree"):
                    self._report(
                        node.lineno,
                        f"ctx.{attr}() called without the tree lock "
                        f"(held: {sorted(held)})",
                    )
            elif attr in HEAP_METHODS and base in ("ctx", "self"):
                if not _holds(held, "heap"):
                    self._report(
                        node.lineno,
                        f"ctx.{attr}() called without a heap lock "
                        f"(held: {sorted(held)})",
                    )
            elif attr in ("push", "pop") and any(h in base for h in _QUEUE_HINTS):
                if not _holds(held, "heap"):
                    self._report(
                        node.lineno,
                        f"{base}.{attr}() called without a heap lock "
                        f"(held: {sorted(held)})",
                    )
            elif attr == "_bump" and not held:
                self._report(
                    node.lineno,
                    "counter bump with no lock held (lost-update window)",
                )


def _is_worker_generator(func: ast.FunctionDef) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(func))


def check_lock_discipline(path: str, source: str) -> list[LintFinding]:
    """VER001 over every module-level worker generator in ``source``."""
    tree = ast.parse(source, filename=path)
    findings: list[LintFinding] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and _is_worker_generator(node):
            findings.extend(_WorkerAnalyzer(path, node).run())
    return findings


def check_op_coverage(
    ops_path: str, ops_source: str, engine_path: str, engine_source: str
) -> list[LintFinding]:
    """VER002: every Op subclass is frozen and handled by the engine."""
    findings: list[LintFinding] = []
    ops_tree = ast.parse(ops_source, filename=ops_path)
    op_classes: dict[str, ast.ClassDef] = {}
    for node in ops_tree.body:
        if isinstance(node, ast.ClassDef) and any(
            isinstance(base, ast.Name) and base.id == "Op" for base in node.bases
        ):
            op_classes[node.name] = node

    for name, cls in op_classes.items():
        frozen = any(
            isinstance(dec, ast.Call)
            and isinstance(dec.func, ast.Name)
            and dec.func.id == "dataclass"
            and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            for dec in cls.decorator_list
        )
        if not frozen:
            findings.append(
                LintFinding(
                    "VER002",
                    ops_path,
                    cls.lineno,
                    f"op {name} is not a frozen dataclass (workers could "
                    "mutate an op after yielding it)",
                )
            )

    handled: set[str] = set()
    handle_fn: Optional[ast.FunctionDef] = None
    engine_tree = ast.parse(engine_source, filename=engine_path)
    for node in ast.walk(engine_tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_handle":
            handle_fn = node
            break
    if handle_fn is None:
        findings.append(
            LintFinding("VER002", engine_path, 1, "Engine._handle not found")
        )
        return findings
    for node in ast.walk(handle_fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Name)
        ):
            handled.add(node.args[1].id)
    for name, cls in sorted(op_classes.items()):
        if name not in handled:
            findings.append(
                LintFinding(
                    "VER002",
                    engine_path,
                    handle_fn.lineno,
                    f"Engine._handle has no isinstance arm for op {name}; "
                    "its time would never be accounted",
                )
            )
    return findings


def _op_class_names(ops_source: str, ops_path: str) -> set[str]:
    """Names of the ``Op`` subclasses defined at module level."""
    tree = ast.parse(ops_source, filename=ops_path)
    return {
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef)
        and any(isinstance(base, ast.Name) and base.id == "Op" for base in node.bases)
    }


def _event_constants(events_source: str, events_path: str) -> dict[str, str]:
    """``EV_*`` module-level string constants: name -> value."""
    tree = ast.parse(events_source, filename=events_path)
    constants: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id.startswith("EV_")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                constants[target.id] = node.value.value
    return constants


def _mapping_keys(
    registry_tree: ast.Module, name: str
) -> Optional[list[ast.expr]]:
    """Key expressions of the module-level dict literal bound to ``name``."""
    for node in registry_tree.body:
        if isinstance(node, ast.AnnAssign):
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        if isinstance(value, ast.Dict):
            return [k for k in value.keys if k is not None]
        return None
    return None


def check_obs_coverage(
    ops_path: str,
    ops_source: str,
    events_path: str,
    events_source: str,
    registry_path: str,
    registry_source: str,
) -> list[LintFinding]:
    """VER005: the metrics registry names every op kind and event type."""
    findings: list[LintFinding] = []
    registry_tree = ast.parse(registry_source, filename=registry_path)

    op_classes = _op_class_names(ops_source, ops_path)
    op_keys = _mapping_keys(registry_tree, "OP_METRICS")
    if op_keys is None:
        findings.append(
            LintFinding(
                "VER005", registry_path, 1, "OP_METRICS dict literal not found"
            )
        )
    else:
        covered_ops = {
            key.value
            for key in op_keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        for name in sorted(op_classes - covered_ops):
            findings.append(
                LintFinding(
                    "VER005",
                    registry_path,
                    1,
                    f"op {name} has no OP_METRICS entry; its dispatch count "
                    "would vanish from every snapshot",
                )
            )
        for name in sorted(covered_ops - op_classes):
            findings.append(
                LintFinding(
                    "VER005",
                    registry_path,
                    1,
                    f"OP_METRICS names {name!r}, which is not an Op subclass "
                    "in sim/ops.py (dead mapping)",
                )
            )

    event_constants = _event_constants(events_source, events_path)
    event_keys = _mapping_keys(registry_tree, "EVENT_METRICS")
    if event_keys is None:
        findings.append(
            LintFinding(
                "VER005", registry_path, 1, "EVENT_METRICS dict literal not found"
            )
        )
        return findings
    covered_events: set[str] = set()
    for key in event_keys:
        if (
            isinstance(key, ast.Attribute)
            and isinstance(key.value, ast.Name)
            and key.value.id == "events"
        ):
            if key.attr in event_constants:
                covered_events.add(key.attr)
            else:
                findings.append(
                    LintFinding(
                        "VER005",
                        registry_path,
                        key.lineno,
                        f"EVENT_METRICS names events.{key.attr}, which is not "
                        "defined in obs/events.py (dead mapping)",
                    )
                )
        else:
            findings.append(
                LintFinding(
                    "VER005",
                    registry_path,
                    key.lineno,
                    f"EVENT_METRICS key {ast.unparse(key)!r} must reference an "
                    "events.EV_* constant, not a literal",
                )
            )
    for name in sorted(set(event_constants) - covered_events):
        findings.append(
            LintFinding(
                "VER005",
                events_path,
                1,
                f"event type {name} has no EVENT_METRICS entry; the registry "
                "could not aggregate it",
            )
        )
    return findings


def _mapping_items(
    module_tree: ast.Module, name: str
) -> Optional[list[tuple[ast.expr, ast.expr]]]:
    """(key, value) expression pairs of the dict literal bound to ``name``."""
    for node in module_tree.body:
        if isinstance(node, ast.AnnAssign):
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        if isinstance(value, ast.Dict):
            return [
                (k, v) for k, v in zip(value.keys, value.values) if k is not None
            ]
        return None
    return None


#: Loss classes a VER006 attribution value may name.
_ATTRIBUTION_CLASSES = frozenset({"busy", "interference", "starvation"})


def check_critpath_coverage(
    ops_path: str,
    ops_source: str,
    critpath_path: str,
    critpath_source: str,
) -> list[LintFinding]:
    """VER006: the critical-path profiler classifies every op kind."""
    findings: list[LintFinding] = []
    critpath_tree = ast.parse(critpath_source, filename=critpath_path)

    op_classes = _op_class_names(ops_source, ops_path)
    items = _mapping_items(critpath_tree, "OP_ATTRIBUTION")
    if items is None:
        findings.append(
            LintFinding(
                "VER006", critpath_path, 1, "OP_ATTRIBUTION dict literal not found"
            )
        )
        return findings
    covered: set[str] = set()
    for key, value in items:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            findings.append(
                LintFinding(
                    "VER006",
                    critpath_path,
                    key.lineno,
                    f"OP_ATTRIBUTION key {ast.unparse(key)!r} must be a string "
                    "literal naming an Op subclass",
                )
            )
            continue
        covered.add(key.value)
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value in _ATTRIBUTION_CLASSES
        ):
            findings.append(
                LintFinding(
                    "VER006",
                    critpath_path,
                    value.lineno,
                    f"OP_ATTRIBUTION[{key.value!r}] is {ast.unparse(value)!r}; "
                    f"must be one of {sorted(_ATTRIBUTION_CLASSES)}",
                )
            )
    for name in sorted(op_classes - covered):
        findings.append(
            LintFinding(
                "VER006",
                critpath_path,
                1,
                f"op {name} has no OP_ATTRIBUTION entry; the critical-path "
                "profiler could not classify its time",
            )
        )
    for name in sorted(covered - op_classes):
        findings.append(
            LintFinding(
                "VER006",
                critpath_path,
                1,
                f"OP_ATTRIBUTION names {name!r}, which is not an Op subclass "
                "in sim/ops.py (dead mapping)",
            )
        )
    return findings


def _batch_eval_classes(source: str, path: str) -> list[tuple[str, int]]:
    """(name, line) of classes in ``source`` defining ``batch_eval``.

    ``Protocol`` classes (structural interfaces such as ``Game``) declare
    the method without implementing it and are skipped.
    """
    tree = ast.parse(source, filename=path)
    found: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(
            (isinstance(base, ast.Name) and base.id == "Protocol")
            or (isinstance(base, ast.Attribute) and base.attr == "Protocol")
            for base in node.bases
        ):
            continue
        for item in node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "batch_eval"
            ):
                found.append((node.name, node.lineno))
                break
    return found


def check_eval_parity_coverage(
    game_sources: Iterable[tuple[str, str]], battery_source: str
) -> list[LintFinding]:
    """VER007: the differential battery names every ``batch_eval`` class.

    ``game_sources`` is ``(path, source)`` per module under ``games/``;
    ``battery_source`` is the text of ``tests/test_eval_differential.py``.
    Name presence is textual on purpose: the battery constructs games
    through factories and adapters, so requiring the class name anywhere
    in the file is the strongest check that survives refactors.
    """
    findings: list[LintFinding] = []
    for path, source in game_sources:
        for name, lineno in _batch_eval_classes(source, path):
            if name not in battery_source:
                findings.append(
                    LintFinding(
                        "VER007",
                        path,
                        lineno,
                        f"class {name} implements batch_eval but is never "
                        "named in tests/test_eval_differential.py; its "
                        "vectorized evaluator could diverge from the scalar "
                        "one with every parity gate still green",
                    )
                )
    return findings


def check_determinism(path: str, source: str) -> list[LintFinding]:
    """VER003: no wall clock, no unseeded randomness."""
    findings: list[LintFinding] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        base = func.value
        if not isinstance(base, ast.Name):
            continue
        if base.id in ("time", "datetime"):
            findings.append(
                LintFinding(
                    "VER003",
                    path,
                    node.lineno,
                    f"wall-clock call {base.id}.{func.attr}() in deterministic "
                    "code; simulated time is the only clock here",
                )
            )
        elif base.id == "random":
            if func.attr == "Random" and (node.args or node.keywords):
                continue  # seeded generator instance: allowed
            findings.append(
                LintFinding(
                    "VER003",
                    path,
                    node.lineno,
                    f"unseeded randomness random.{func.attr}() in deterministic "
                    "code; use a seeded random.Random instance",
                )
            )
    return findings


#: Sanctioned wall-clock/randomness seams for VER008: (file name,
#: enclosing function, dotted reference).  Each is the single injection
#: point where a real clock may enter — everything downstream takes the
#: value through a parameter or the bus clock and stays replayable.
_CLOCK_SEAMS: frozenset[tuple[str, str, str]] = frozenset(
    {
        ("events.py", "__init__", "time.perf_counter"),
        ("events.py", "use_clock", "time.perf_counter"),
        ("ledger.py", "make_record", "time.time"),
        # The span ring's single wall-clock entry point: every live-trace
        # timestamp flows through it or through an injected clock.
        ("live.py", "wall_clock", "time.perf_counter"),
    }
)


def check_clock_seams(path: str, source: str) -> list[LintFinding]:
    """VER008: wall clock/randomness only through sanctioned seams.

    Stricter than VER003: *any* ``time.*``/``datetime.*``/``random.*``
    attribute reference — not just a call — is flagged, because a bare
    ``time.perf_counter`` stored as a default clock smuggles
    nondeterminism just as surely as calling it.  Seeded
    ``random.Random`` stays allowed (VER003's rule), and the named
    seams in ``_CLOCK_SEAMS`` are the documented injection points.
    """
    findings: list[LintFinding] = []
    tree = ast.parse(source, filename=path)
    name = Path(path).name
    owner: dict[int, str] = {}
    for func in ast.walk(tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(func):
                owner.setdefault(id(sub), func.name)
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("time", "datetime", "random")
        ):
            continue
        dotted = f"{node.value.id}.{node.attr}"
        if dotted == "random.Random":
            continue  # seeding discipline is VER003's concern
        function = owner.get(id(node), "<module>")
        if (name, function, dotted) in _CLOCK_SEAMS:
            continue
        findings.append(
            LintFinding(
                "VER008",
                path,
                node.lineno,
                f"{dotted} referenced in sim-deterministic code "
                f"({function}); route it through a sanctioned clock/RNG "
                "seam or inject it as a parameter",
            )
        )
    return findings


def _emitted_event_names(source: str, path: str) -> list[tuple[str, int]]:
    """``EV_*`` constant names passed as the first argument of ``emit()``.

    Matches ``bus.emit(_obs.EV_X, ...)``, ``events.EV_X``, and bare
    ``EV_X`` references, wherever the emitting call lives in the file.
    """
    tree = ast.parse(source, filename=path)
    found: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
        ):
            continue
        first = node.args[0]
        if isinstance(first, ast.Attribute) and first.attr.startswith("EV_"):
            found.append((first.attr, node.lineno))
        elif isinstance(first, ast.Name) and first.id.startswith("EV_"):
            found.append((first.id, node.lineno))
    return found


def check_parallel_event_coverage(
    parallel_sources: Iterable[tuple[str, str]],
    events_path: str,
    events_source: str,
    registry_path: str,
    registry_source: str,
) -> list[LintFinding]:
    """VER009: real-backend events are metered and served live.

    ``parallel_sources`` is ``(path, source)`` per module under
    ``parallel/``.  Three obligations: every emitted ``EV_*`` exists in
    ``obs/events.py``; every emitted ``EV_*`` has an ``EVENT_METRICS``
    entry; and the live feed and post-hoc aggregation share one
    accounting path (``registry.feed_event`` exists and ``aggregate``
    calls it) — otherwise live metrics could diverge from the snapshot.
    """
    findings: list[LintFinding] = []
    event_constants = _event_constants(events_source, events_path)
    registry_tree = ast.parse(registry_source, filename=registry_path)

    covered: set[str] = set()
    event_keys = _mapping_keys(registry_tree, "EVENT_METRICS")
    if event_keys is not None:
        for key in event_keys:
            if isinstance(key, ast.Attribute):
                covered.add(key.attr)

    for path, source in parallel_sources:
        for name, lineno in _emitted_event_names(source, path):
            if name not in event_constants:
                findings.append(
                    LintFinding(
                        "VER009",
                        path,
                        lineno,
                        f"emits {name}, which is not defined in obs/events.py",
                    )
                )
            elif name not in covered:
                findings.append(
                    LintFinding(
                        "VER009",
                        path,
                        lineno,
                        f"emits {name} but EVENT_METRICS has no entry for it; "
                        "the live registry feed would misfile it and it would "
                        "vanish from `repro-gametree top` and the snapshot",
                    )
                )

    feed_fn: Optional[ast.FunctionDef] = None
    aggregate_fn: Optional[ast.FunctionDef] = None
    for node in registry_tree.body:
        if isinstance(node, ast.FunctionDef):
            if node.name == "feed_event":
                feed_fn = node
            elif node.name == "aggregate":
                aggregate_fn = node
    if feed_fn is None:
        findings.append(
            LintFinding(
                "VER009",
                registry_path,
                1,
                "registry defines no feed_event(); live metrics have no "
                "single accounting path",
            )
        )
    if aggregate_fn is not None and feed_fn is not None:
        calls_feed = any(
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name) and node.func.id == "feed_event")
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "feed_event"
                )
            )
            for node in ast.walk(aggregate_fn)
        )
        if not calls_feed:
            findings.append(
                LintFinding(
                    "VER009",
                    registry_path,
                    aggregate_fn.lineno,
                    "aggregate() does not call feed_event(); post-hoc metrics "
                    "could diverge from the live feed",
                )
            )
    return findings


def check_pickle_boundary(path: str, source: str) -> list[LintFinding]:
    """VER004: executor submissions must be module-level functions."""
    findings: list[LintFinding] = []
    tree = ast.parse(source, filename=path)
    module_funcs = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "apply_async", "map")
            and node.args
        ):
            continue
        task = node.args[0]
        if isinstance(task, ast.Name) and task.id in module_funcs:
            continue
        findings.append(
            LintFinding(
                "VER004",
                path,
                node.lineno,
                f"task {ast.unparse(task)!r} submitted to an executor is not a "
                "module-level function; it cannot pickle under spawn",
            )
        )
    return findings


def _filter_suppressed(
    findings: Iterable[LintFinding], source: str
) -> list[LintFinding]:
    suppressed = _suppressed_lines(source)
    return [f for f in findings if f.line not in suppressed]


def check_file(
    path: str, source: Optional[str] = None, rules: Optional[set[str]] = None
) -> list[LintFinding]:
    """Run the applicable rules on one file.

    ``rules`` selects rule ids explicitly (e.g. ``{"VER003"}``); when
    omitted they are inferred from the file name the way
    :func:`check_repo` would (VER002 is repo-level only — it needs both
    ``ops.py`` and ``engine.py`` — so it never runs here by inference).
    """
    if source is None:
        source = Path(path).read_text()
    name = Path(path).name
    if rules is None:
        rules = {"VER003"}
        if name == "er_parallel.py":
            rules.add("VER001")
        if "multiproc" in name:
            rules.add("VER004")
            rules.discard("VER003")  # the coordinator measures wall time
    findings: list[LintFinding] = []
    if "VER001" in rules:
        findings.extend(check_lock_discipline(path, source))
    if "VER003" in rules:
        findings.extend(check_determinism(path, source))
    if "VER004" in rules:
        findings.extend(check_pickle_boundary(path, source))
    if "VER008" in rules:
        findings.extend(check_clock_seams(path, source))
    return _filter_suppressed(findings, source)


def check_repo(root: Optional[str] = None) -> list[LintFinding]:
    """Run every rule over the repository rooted at ``root``.

    ``root`` is the repo root (the directory holding ``src/``); defaults
    to the ancestor of this file.
    """
    base = Path(root) if root is not None else Path(__file__).resolve().parents[3]
    src = base / "src" / "repro"
    if not src.is_dir():
        raise FileNotFoundError(f"not a repo root: {base} (no src/repro)")
    findings: list[LintFinding] = []

    er_parallel = src / "core" / "er_parallel.py"
    findings.extend(check_file(str(er_parallel), rules={"VER001"}))

    ops = src / "sim" / "ops.py"
    engine = src / "sim" / "engine.py"
    findings.extend(
        check_op_coverage(
            str(ops), ops.read_text(), str(engine), engine.read_text()
        )
    )

    for directory in (src / "sim", src / "core", src / "cache"):
        for path in sorted(directory.glob("*.py")):
            findings.extend(check_file(str(path), rules={"VER003"}))

    for directory in (src / "sim", src / "core", src / "obs"):
        for path in sorted(directory.glob("*.py")):
            findings.extend(check_file(str(path), rules={"VER008"}))

    multiproc = src / "parallel" / "multiproc.py"
    if multiproc.exists():
        findings.extend(check_file(str(multiproc), rules={"VER004"}))

    events_py = src / "obs" / "events.py"
    registry_py = src / "obs" / "registry.py"
    findings.extend(
        check_obs_coverage(
            str(ops),
            ops.read_text(),
            str(events_py),
            events_py.read_text(),
            str(registry_py),
            registry_py.read_text(),
        )
    )

    critpath_py = src / "obs" / "critpath.py"
    findings.extend(
        check_critpath_coverage(
            str(ops), ops.read_text(), str(critpath_py), critpath_py.read_text()
        )
    )

    parallel_sources = [
        (str(path), path.read_text())
        for path in sorted((src / "parallel").glob("*.py"))
    ]
    findings.extend(
        check_parallel_event_coverage(
            parallel_sources,
            str(events_py),
            events_py.read_text(),
            str(registry_py),
            registry_py.read_text(),
        )
    )

    battery = base / "tests" / "test_eval_differential.py"
    if battery.exists():
        game_sources = [
            (str(path), path.read_text())
            for path in sorted((src / "games").rglob("*.py"))
        ]
        findings.extend(
            check_eval_parity_coverage(game_sources, battery.read_text())
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: lint the repo, print findings, exit 1 on any."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = args[0] if args else None
    findings = check_repo(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print("staticcheck: all invariants hold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
