"""Concurrency-correctness toolkit for the parallel ER problem heap.

Stress tests finding no races proves very little; this package turns the
heap protocol's correctness into a machine-checked claim with three
coordinated passes (DESIGN.md "Verification"):

* :mod:`repro.verify.trace` — shared-state access instrumentation.  The
  discrete-event engine, the threaded driver, the problem-heap queues,
  and the tree-mutation paths all emit :class:`~repro.verify.trace.Event`
  records when a recorder is installed; with no recorder the hooks are a
  single ``is None`` test.
* :mod:`repro.verify.racedetect` — an Eraser-style lockset analyzer
  combined with a vector-clock happens-before checker over those event
  traces.  Reports data races, lock-order inversions (potential
  deadlocks), unheld releases, and lost-wakeup windows.  Its
  :func:`~repro.verify.racedetect.self_test` runs in *mutation mode*:
  it deletes a lock acquisition from a known-clean trace and fails loudly
  unless the detector flags the resulting race.
* :mod:`repro.verify.staticcheck` — an AST lint enforcing the repo's
  concurrency and determinism invariants (locked shared mutations,
  engine accounting coverage of every sim op, no wall clock or unseeded
  randomness in ``sim``/``core``, picklable-by-construction multiproc
  boundary, sanctioned clock/RNG seams).
* :mod:`repro.verify.flow` — the whole-program companion: an
  interprocedural lockset + shared-state escape analysis over the
  parallel engine, its queues, and the cache subsystems, with
  lock-order cycle detection, protocol-conformance summaries, SARIF
  export, and a committed finding baseline.  Run via
  ``repro-gametree verify --deep``.

Everything is runnable three ways: ``repro-gametree verify`` from a
shell, ``pytest tests/test_verify_*.py`` locally, and the ``verify`` CI
job on every push (which adds ``mypy --strict`` and ``ruff``).
"""

from __future__ import annotations

from .flow import FlowFinding, analyze_repo, analyze_sources
from .racedetect import Finding, RaceDetector, RaceReport, analyze, self_test
from .staticcheck import LintFinding, check_file, check_repo
from .trace import Event, TraceRecorder, tracing

__all__ = [
    "Event",
    "TraceRecorder",
    "tracing",
    "Finding",
    "FlowFinding",
    "RaceDetector",
    "RaceReport",
    "analyze",
    "analyze_repo",
    "analyze_sources",
    "self_test",
    "LintFinding",
    "check_file",
    "check_repo",
]
