"""Fixed-seed trace capture over all three execution backends.

The race detector is only as good as the traces it sees; this module
produces them reproducibly, for the CLI's ``repro-gametree verify``, the
clean-trace gates in ``tests/test_verify_racedetect.py``, and the CI
``verify`` job:

* :func:`capture_sim_trace` — a discrete-event run; fully deterministic,
  so one seed is one interleaving.
* :func:`capture_threaded_trace` — a real OS-thread run; every capture
  is a genuinely different interleaving, which is the point.
* :func:`capture_multiproc_trace` — the coordinator-hosted heap.  Only
  the single-threaded coordinator runs in-process, so the trace has one
  task and trivially orders; the gate checks the instrumentation itself
  (every hook fires, nothing crashes, no unheld releases).

The distributed-heap sim variant is deliberately not part of the clean
gates: its per-processor counters are bumped under different locks by
design (a documented relaxation, see DESIGN.md "Verification").
"""

from __future__ import annotations

from typing import Optional

from ..core.er_parallel import ERConfig, parallel_er
from ..games.base import SearchProblem
from ..games.random_tree import RandomGameTree
from . import trace as _trace

#: Default shape of the capture problem: degree-3, height-6 random tree.
_DEGREE = 3
_HEIGHT = 6


def capture_problem(seed: int = 7, height: int = _HEIGHT) -> SearchProblem:
    """The fixed-seed problem all capture functions search."""
    return SearchProblem(RandomGameTree(_DEGREE, height, seed=seed), depth=height)


def capture_sim_trace(
    seed: int = 7,
    n_processors: int = 4,
    config: Optional[ERConfig] = None,
) -> list[_trace.Event]:
    """Trace one deterministic simulated run (default: all mechanisms on)."""
    problem = capture_problem(seed)
    with _trace.tracing() as recorder:
        parallel_er(problem, n_processors, config=config or ERConfig())
    return recorder.events


def capture_sim_serial_depth_trace(
    seed: int = 11, n_processors: int = 4, serial_depth: int = 4
) -> list[_trace.Event]:
    """Trace a simulated run exercising the serial-depth cutover paths."""
    problem = capture_problem(seed, height=7)
    with _trace.tracing() as recorder:
        parallel_er(problem, n_processors, config=ERConfig(serial_depth=serial_depth))
    return recorder.events


def capture_threaded_trace(seed: int = 7, n_threads: int = 4) -> list[_trace.Event]:
    """Trace one real-thread run — a fresh nondeterministic interleaving."""
    from ..parallel.threaded import threaded_er  # lazy: avoids import cycle

    problem = capture_problem(seed)
    with _trace.tracing() as recorder:
        threaded_er(problem, n_threads)
    return recorder.events


def capture_multiproc_trace(seed: int = 7, n_workers: int = 2) -> list[_trace.Event]:
    """Trace the multiproc coordinator (workers are separate processes)."""
    from ..parallel.multiproc import multiproc_er  # lazy: avoids import cycle

    problem = capture_problem(seed)
    with _trace.tracing() as recorder:
        multiproc_er(problem, n_workers, timeout=120.0)
    return recorder.events
