"""Offline race detection over shared-state access traces.

Two complementary analyses run over one event stream (Savage et al.'s
Eraser, and vector-clock happens-before a la FastTrack), because each
catches what the other cannot:

* **Lockset (Eraser)** — every location carries a candidate lockset,
  intersected with the locks held at each access; an empty candidate set
  once the location is written by multiple tasks means no single lock
  protects it.  Lockset analysis catches *discipline* violations even
  when this particular interleaving happened to be ordered (scheduling
  luck is not synchronization).  Its classic false positive — objects
  handed off between owners through a protected queue — is real in this
  codebase: tree nodes are mutated lock-free by the worker that popped
  them, then published back through the locked problem heap.
* **Happens-before (vector clocks)** — lock releases/acquires and
  signal notify/wake edges order events; two conflicting accesses
  unordered by the resulting partial order are a race in *every*
  execution model.  Happens-before correctly blesses the queue handoff
  (the heap lock's release→acquire edge carries the ordering).

Locations therefore declare a policy (:func:`policy_for`): problem-heap
queues, protocol counters, and other lock-disciplined state use both
analyses; per-node tree state (``node:*``), whose ownership transfers
through the heap, uses happens-before only.

Beyond data races the detector reports lock-order inversions (cycles in
the acquisition-order graph — potential deadlocks), releases of unheld
locks, re-acquisition of held locks, and lost-wakeup windows (a task
that blocked on a signal after observing a version the signal had
already moved past).

:func:`self_test` is the detector's *mutation-mode* check: it verifies
the detector on a known-clean synthetic trace, then deletes a lock
acquisition, reorders a release, and injects a stale-version wait, and
fails unless every mutation is flagged.  A detector that cannot see
seeded bugs proves nothing about traces with none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import VerificationError
from .trace import ACQUIRE, NOTIFY, READ, RELEASE, WAIT, WAKE, WRITE, Event

#: Location-name prefix whose accesses are checked by happens-before only
#: (ownership transfers through the locked problem heap).
HANDOFF_PREFIX = "node:"

LOCKSET = "lockset"
HAPPENS_BEFORE = "happens-before"
BOTH = "both"


def policy_for(obj: str) -> str:
    """Which analyses apply to the location ``obj``."""
    return HAPPENS_BEFORE if obj.startswith(HANDOFF_PREFIX) else BOTH


@dataclass(frozen=True)
class Finding:
    """One defect the detector is confident about.

    ``kind`` is one of ``data-race``, ``lock-order``, ``unheld-release``,
    ``double-acquire``, ``lost-wakeup``.  ``ordered`` distinguishes a
    lockset violation that this interleaving happened to order (still a
    bug: scheduling is not synchronization) from one observed truly
    concurrent.
    """

    kind: str
    obj: str
    tasks: tuple[int, ...]
    message: str
    ordered: bool = False


@dataclass
class RaceReport:
    """Outcome of analyzing one trace."""

    findings: list[Finding] = field(default_factory=list)
    events: int = 0
    locations: int = 0
    locks: int = 0
    tasks: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = (
            f"{self.events} events, {self.tasks} tasks, {self.locks} locks, "
            f"{self.locations} shared locations: "
        )
        if self.ok:
            return head + "no races, no lock-order inversions, no lost wakeups"
        lines = [head + f"{len(self.findings)} finding(s)"]
        lines += [f"  [{f.kind}] {f.obj}: {f.message}" for f in self.findings]
        return "\n".join(lines)


_VC = dict[int, int]


def _join(into: _VC, other: _VC) -> None:
    for task, clock in other.items():
        if clock > into.get(task, 0):
            into[task] = clock


def _leq(a: _VC, b: _VC) -> bool:
    return all(clock <= b.get(task, 0) for task, clock in a.items())


# Eraser location states.
_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MODIFIED = "shared-modified"


@dataclass
class _Shadow:
    """Per-location analysis state."""

    state: str = _VIRGIN
    owner: int = -1
    lockset: Optional[frozenset[str]] = None
    last_write: Optional[tuple[int, _VC]] = None
    reads: dict[int, _VC] = field(default_factory=dict)
    reported_lockset: bool = False
    reported_hb: bool = False


class RaceDetector:
    """Feed events in trace order; read findings from :meth:`report`."""

    def __init__(self) -> None:
        self._task_vc: dict[int, _VC] = {}
        self._lock_vc: dict[str, _VC] = {}
        self._signal_vc: dict[str, _VC] = {}
        self._held: dict[int, list[str]] = {}
        self._shadow: dict[str, _Shadow] = {}
        # acquisition-order edges: before -> set of after
        self._order: dict[str, set[str]] = {}
        self._order_reported: set[frozenset[str]] = set()
        self.findings: list[Finding] = []
        self._events = 0

    # -- bookkeeping -----------------------------------------------------

    def _vc(self, task: int) -> _VC:
        vc = self._task_vc.get(task)
        if vc is None:
            vc = self._task_vc[task] = {task: 1}
            self._held.setdefault(task, [])
        return vc

    def _tick(self, task: int) -> None:
        vc = self._vc(task)
        vc[task] = vc.get(task, 0) + 1

    # -- per-kind handlers ----------------------------------------------

    def _reaches(self, start: str, goal: str, seen: set[str]) -> bool:
        if start == goal:
            return True
        for nxt in self._order.get(start, ()):
            if nxt not in seen:
                seen.add(nxt)
                if self._reaches(nxt, goal, seen):
                    return True
        return False

    def _on_acquire(self, ev: Event) -> None:
        held = self._held.setdefault(ev.task, [])
        if ev.obj in held:
            self.findings.append(
                Finding(
                    "double-acquire",
                    ev.obj,
                    (ev.task,),
                    f"task {ev.task} re-acquired non-reentrant lock {ev.obj!r}",
                )
            )
        for prior in held:
            if prior == ev.obj:
                continue
            # Inversion: we are adding prior -> obj while obj ->* prior exists.
            pair = frozenset((prior, ev.obj))
            if pair not in self._order_reported and self._reaches(
                ev.obj, prior, {ev.obj}
            ):
                self._order_reported.add(pair)
                self.findings.append(
                    Finding(
                        "lock-order",
                        f"{prior} vs {ev.obj}",
                        (ev.task,),
                        f"task {ev.task} acquired {ev.obj!r} while holding "
                        f"{prior!r}, but the opposite order also occurs: "
                        "potential deadlock",
                    )
                )
            self._order.setdefault(prior, set()).add(ev.obj)
        held.append(ev.obj)
        _join(self._vc(ev.task), self._lock_vc.get(ev.obj, {}))
        self._tick(ev.task)

    def _on_release(self, ev: Event) -> None:
        held = self._held.setdefault(ev.task, [])
        if ev.obj not in held:
            self.findings.append(
                Finding(
                    "unheld-release",
                    ev.obj,
                    (ev.task,),
                    f"task {ev.task} released {ev.obj!r} without holding it "
                    "(reordered or duplicated release)",
                )
            )
        else:
            held.remove(ev.obj)
        self._lock_vc[ev.obj] = dict(self._vc(ev.task))
        self._tick(ev.task)

    def _on_wait(self, ev: Event) -> None:
        if ev.seen_version != ev.version:
            self.findings.append(
                Finding(
                    "lost-wakeup",
                    ev.obj,
                    (ev.task,),
                    f"task {ev.task} blocked on {ev.obj!r} having observed "
                    f"version {ev.seen_version}, but the signal was already "
                    f"at {ev.version}: the wakeup in between is lost",
                )
            )
        self._tick(ev.task)

    def _on_notify(self, ev: Event) -> None:
        sig = self._signal_vc.setdefault(ev.obj, {})
        _join(sig, self._vc(ev.task))
        self._tick(ev.task)

    def _on_wake(self, ev: Event) -> None:
        _join(self._vc(ev.task), self._signal_vc.get(ev.obj, {}))
        self._tick(ev.task)

    def _on_access(self, ev: Event) -> None:
        vc = self._vc(ev.task)
        if ev.relaxed:
            self._tick(ev.task)
            return
        shadow = self._shadow.setdefault(ev.obj, _Shadow())
        apply_lockset = policy_for(ev.obj) in (LOCKSET, BOTH)

        # Happens-before: check against conflicting accesses.
        racy_with: Optional[int] = None
        if ev.kind == WRITE:
            if shadow.last_write is not None:
                w_task, w_vc = shadow.last_write
                if w_task != ev.task and not _leq(w_vc, vc):
                    racy_with = w_task
            for r_task, r_vc in shadow.reads.items():
                if r_task != ev.task and not _leq(r_vc, vc):
                    racy_with = r_task
        else:
            if shadow.last_write is not None:
                w_task, w_vc = shadow.last_write
                if w_task != ev.task and not _leq(w_vc, vc):
                    racy_with = w_task
        if racy_with is not None and not shadow.reported_hb:
            shadow.reported_hb = True
            self.findings.append(
                Finding(
                    "data-race",
                    ev.obj,
                    (racy_with, ev.task),
                    f"tasks {racy_with} and {ev.task} access {ev.obj!r} "
                    "with no happens-before ordering "
                    f"(locks held here: {sorted(self._held.get(ev.task, []))})",
                )
            )

        # Eraser lockset state machine.
        if apply_lockset:
            held_now = frozenset(self._held.get(ev.task, []))
            if shadow.state == _VIRGIN:
                shadow.state = _EXCLUSIVE
                shadow.owner = ev.task
            elif shadow.state == _EXCLUSIVE and ev.task != shadow.owner:
                shadow.state = _SHARED_MODIFIED if ev.kind == WRITE else _SHARED
                shadow.lockset = held_now
            elif shadow.state in (_SHARED, _SHARED_MODIFIED):
                assert shadow.lockset is not None
                shadow.lockset &= held_now
                if ev.kind == WRITE:
                    shadow.state = _SHARED_MODIFIED
            if (
                shadow.state == _SHARED_MODIFIED
                and shadow.lockset is not None
                and not shadow.lockset
                and not shadow.reported_lockset
            ):
                shadow.reported_lockset = True
                ordered = racy_with is None
                self.findings.append(
                    Finding(
                        "data-race",
                        ev.obj,
                        (shadow.owner, ev.task),
                        f"no lock consistently protects {ev.obj!r} "
                        f"(candidate lockset became empty at task {ev.task}; "
                        + (
                            "this interleaving was ordered by luck"
                            if ordered
                            else "accesses were concurrent"
                        )
                        + ")",
                        ordered=ordered,
                    )
                )

        # Update shadow history.
        if ev.kind == WRITE:
            shadow.last_write = (ev.task, dict(vc))
            shadow.reads = {}
        else:
            shadow.reads[ev.task] = dict(vc)
        self._tick(ev.task)

    # -- driving ---------------------------------------------------------

    def feed(self, ev: Event) -> None:
        self._events += 1
        if ev.kind == ACQUIRE:
            self._on_acquire(ev)
        elif ev.kind == RELEASE:
            self._on_release(ev)
        elif ev.kind in (READ, WRITE):
            self._on_access(ev)
        elif ev.kind == WAIT:
            self._on_wait(ev)
        elif ev.kind == NOTIFY:
            self._on_notify(ev)
        elif ev.kind == WAKE:
            self._on_wake(ev)
        else:
            raise VerificationError(f"unknown trace event kind {ev.kind!r}")

    def report(self) -> RaceReport:
        return RaceReport(
            findings=list(self.findings),
            events=self._events,
            locations=len(self._shadow),
            locks=len(self._lock_vc) + sum(len(h) for h in self._held.values()),
            tasks=len(self._task_vc),
        )


def analyze(events: Iterable[Event]) -> RaceReport:
    """Run the full analysis over a trace."""
    detector = RaceDetector()
    for ev in events:
        detector.feed(ev)
    return detector.report()


# ---------------------------------------------------------------------------
# Mutation-mode self-test.
# ---------------------------------------------------------------------------


def _clean_trace() -> list[Event]:
    """Two tasks sharing a counter under lock ``L``, a queue handoff, and
    a correctly versioned signal wait — every analysis has something to
    chew on and none of it is a bug."""
    events: list[Event] = []

    def section(task: int, version: int) -> None:
        events.append(Event(ACQUIRE, task, "L"))
        events.append(Event(READ, task, "counters.jobs"))
        events.append(Event(WRITE, task, "counters.jobs"))
        events.append(Event(WRITE, task, "node:0"))  # handoff under L
        events.append(Event(NOTIFY, task, "work", version=version))
        events.append(Event(RELEASE, task, "L"))

    section(1, 1)
    events.append(Event(WAIT, 2, "work", seen_version=0, version=0))
    events.append(Event(WAKE, 2, "work"))
    section(2, 2)
    section(1, 3)
    return events


def self_test() -> None:
    """Mutation-mode check that the detector can see seeded bugs.

    Raises:
        VerificationError: if the clean trace is flagged, or any of the
            three mutations (deleted acquire, reordered release,
            stale-version wait) goes undetected.
    """
    clean = _clean_trace()
    base = analyze(clean)
    if not base.ok:
        raise VerificationError(
            f"self-test trace should be clean but was flagged:\n{base.summary()}"
        )

    # Mutation 1: delete task 2's lock acquisition — its counter write is
    # now unprotected and must surface as a data race (plus the matching
    # release becomes unheld).
    acquire_idx = next(
        i
        for i, ev in enumerate(clean)
        if ev.kind == ACQUIRE and ev.task == 2 and ev.obj == "L"
    )
    mutated = clean[:acquire_idx] + clean[acquire_idx + 1 :]
    report = analyze(mutated)
    if not any(f.kind == "data-race" for f in report.findings):
        raise VerificationError(
            "mutation mode: deleting an acquire did not produce a data race"
        )

    # Mutation 2: move task 2's release ahead of its critical section.
    release_idx = next(
        i
        for i, ev in enumerate(clean)
        if ev.kind == RELEASE and ev.task == 2 and ev.obj == "L"
    )
    reordered = list(clean)
    release = reordered.pop(release_idx)
    reordered.insert(acquire_idx, release)
    report = analyze(reordered)
    if not any(
        f.kind in ("unheld-release", "data-race") for f in report.findings
    ):
        raise VerificationError(
            "mutation mode: reordering a release went undetected"
        )

    # Mutation 3: block on a version the signal has already moved past.
    stale = list(clean)
    wait_idx = next(i for i, ev in enumerate(stale) if ev.kind == WAIT)
    stale[wait_idx] = Event(WAIT, 2, "work", seen_version=0, version=1)
    report = analyze(stale)
    if not any(f.kind == "lost-wakeup" for f in report.findings):
        raise VerificationError(
            "mutation mode: a stale-version wait went undetected"
        )
