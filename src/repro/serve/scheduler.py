"""The request scheduler: admission, priorities, deadlines, drain.

The scheduler multiplexes concurrent :class:`~repro.serve.api.SearchRequest`s
onto a bounded number of engine slots.  Its contract — pinned by the
Hypothesis battery in ``tests/test_serve_scheduler.py`` — is:

* **exactly-once resolution** — every submitted request's future is
  resolved with exactly one reply: ``ok``/``error`` after running, or
  ``shed`` with an explicit reason; nothing is silently dropped;
* **admission control** — at most ``queue_limit`` requests wait; an
  arrival beyond that either evicts the *newest* request of the lowest
  waiting priority class (when the arrival outranks it) or is itself
  rejected, so overload sheds the least valuable work first while FIFO
  order within every class is preserved;
* **deadline semantics** — deadlines gate *deepening*, not execution:
  after every completed iteration the clock is checked, and an expired
  request stops with the best move so far (``anytime``).  The first
  iteration always runs, so an admitted request is never answered
  without a move, and a deadline is honored within one deepening
  iteration's latency;
* **graceful drain** — :meth:`RequestScheduler.drain` stops admission
  (new arrivals shed with reason ``shutdown``) and completes every
  already-admitted request.

The scheduler itself is single-threaded asyncio; the one genuinely
cross-thread surface is :class:`ServeMetrics`, which the Prometheus
scrape thread reads while the event loop writes.  Its lock and accesses
are instrumented with the :mod:`repro.verify.trace` hooks, so the
service test batteries run under the same race detector that checks the
simulator's queues.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Awaitable, Callable, Optional, Protocol

from ..errors import ServeError
from ..obs import registry as _registry
from ..obs import reqtrace as _reqtrace
from ..verify import trace as _trace
from .api import (
    PRIORITIES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    SearchReply,
    SearchRequest,
    encode_line,
)

__all__ = [
    "DeepeningEngine",
    "IterationResult",
    "RequestScheduler",
    "SLO_LATENCY_BOUNDS",
    "ServeMetrics",
]

#: Upper bucket bounds (seconds) of the per-priority SLO latency
#: histograms; with bounds set, :mod:`repro.obs.promtext` renders these
#: as real Prometheus ``histogram`` families instead of summaries.
SLO_LATENCY_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Scheduler counter names, in conservation order.  ``submitted ==
#: completed + shed`` once every future has resolved; ``admitted ==
#: completed + evicted`` and ``shed == rejected + evicted``.
COUNTER_NAMES = (
    "submitted",
    "admitted",
    "rejected",
    "evicted",
    "completed",
    "failed",
    "shed",
    "deadline_hits",
)


@dataclass(frozen=True)
class IterationResult:
    """One completed deepening iteration's root decision."""

    move_index: int
    value: float
    per_move_values: tuple[float, ...]


class DeepeningEngine(Protocol):
    """What the scheduler runs: one deepening iteration at a time.

    ``run_iteration(request, depth)`` evaluates every root move of the
    request's position to ``depth - 1`` and returns the argmax decision
    — the same per-iteration contract as
    :meth:`repro.engine.GameEngine.choose`.  Splitting the search at
    iteration granularity is what gives the scheduler its anytime
    deadline point without reaching inside a search.
    """

    def run_iteration(
        self, request: SearchRequest, depth: int
    ) -> Awaitable[IterationResult]: ...


class ServeMetrics:
    """Thread-safe service metrics: loop-thread writers, scrape-thread readers.

    A thin lock around a :class:`~repro.obs.registry.MetricsRegistry`,
    with every acquisition and access reported to the
    :mod:`repro.verify.trace` hooks under stable names
    (``serve-metrics`` lock, ``serve.<metric>`` locations) so the race
    detector can verify the locking discipline end to end.
    """

    def __init__(
        self,
        registry: Optional[_registry.MetricsRegistry] = None,
        *,
        slo: Optional[_reqtrace.SLOPolicy] = None,
    ) -> None:
        self.registry = registry if registry is not None else _registry.MetricsRegistry()
        self._lock = threading.Lock()
        self.slo = slo
        self._slo_good: dict[int, int] = {}
        self._slo_bad: dict[int, int] = {}

    def _acquired(self) -> None:
        if _trace.CURRENT is not None:
            _trace.on_acquire("serve-metrics")

    def _releasing(self) -> None:
        if _trace.CURRENT is not None:
            _trace.on_release("serve-metrics")

    def bump(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._acquired()
            if _trace.CURRENT is not None:
                _trace.on_access(f"serve.{name}", _trace.WRITE)
            self.registry.counter(f"serve.{name}").inc(amount)
            self._releasing()

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._acquired()
            if _trace.CURRENT is not None:
                _trace.on_access(f"serve.{name}", _trace.WRITE)
            self.registry.histogram(f"serve.{name}").observe(value)
            self._releasing()

    def observe_latency(self, priority: int, latency_s: float) -> None:
        """Fold one request's latency into the per-priority SLO machinery.

        Always feeds the bucketed per-class histogram
        (``serve.latency_seconds.p<priority>``); when an
        :class:`~repro.obs.reqtrace.SLOPolicy` names a target for the
        class it also updates the good/bad counters and the
        error-budget burn-rate gauge (1.0 = spending the budget exactly
        as fast as the objective allows).
        """
        with self._lock:
            self._acquired()
            name = f"latency_seconds.p{priority}"
            if _trace.CURRENT is not None:
                _trace.on_access(f"serve.{name}", _trace.WRITE)
            self.registry.histogram(
                f"serve.{name}", bounds=SLO_LATENCY_BOUNDS
            ).observe(latency_s)
            target = self.slo.target_for(priority) if self.slo is not None else None
            if self.slo is not None and target is not None:
                if latency_s <= target:
                    self._slo_good[priority] = self._slo_good.get(priority, 0) + 1
                    self.registry.counter(f"serve.slo.p{priority}.good").inc()
                else:
                    self._slo_bad[priority] = self._slo_bad.get(priority, 0) + 1
                    self.registry.counter(f"serve.slo.p{priority}.bad").inc()
                good = self._slo_good.get(priority, 0)
                bad = self._slo_bad.get(priority, 0)
                self.registry.gauge(f"serve.slo.p{priority}.target_seconds").set(target)
                self.registry.gauge(f"serve.slo.p{priority}.objective").set(
                    self.slo.objective
                )
                self.registry.gauge(f"serve.slo.p{priority}.burn_rate").set(
                    self.slo.burn_rate(good, bad)
                )
            self._releasing()

    def sample(self, name: str, ts: float, value: float) -> None:
        """Record an instantaneous quantity as gauge + time series."""
        with self._lock:
            self._acquired()
            if _trace.CURRENT is not None:
                _trace.on_access(f"serve.{name}", _trace.WRITE)
            self.registry.gauge(f"serve.{name}.current").set(value)
            self.registry.timeseries(f"serve.{name}").sample(ts, value)
            self._releasing()

    def collect(self) -> dict[str, _registry.MetricValue]:
        """Consistent snapshot for the Prometheus endpoint."""
        with self._lock:
            self._acquired()
            if _trace.CURRENT is not None:
                _trace.on_access("serve.registry", _trace.READ)
            out = self.registry.collect()
            self._releasing()
            return out


@dataclass
class _Ticket:
    """One admitted request waiting for (or holding) an engine slot.

    ``arrived_at`` is the caller-observed arrival stamp (the server
    stamps it before pre-admission work); ``admitted_at`` is when the
    admission decision landed.  Their gap is the ``admission`` stage of
    the latency decomposition; direct scheduler users that pass no
    arrival stamp get a zero-width admission stage.
    """

    request: SearchRequest
    future: "asyncio.Future[SearchReply]"
    admitted_at: float
    arrived_at: float


class RequestScheduler:
    """Admission control and deadline-aware execution over an engine.

    Args:
        engine: the per-iteration search backend.
        max_concurrency: engine slots — requests deepening at once.
            Iterations of concurrent requests interleave on the shared
            pool, so this is the service's multiprogramming level, not
            a core count.
        queue_limit: waiting requests beyond the running ones before
            load shedding begins.
        clock: injectable monotonic clock (tests drive a fake one).
            The server passes :func:`repro.obs.live.wall_clock` so the
            scheduler's stamps and its own share one clock domain —
            the precondition of the conserved latency decomposition.
        metrics: shared :class:`ServeMetrics`; one is created if absent.
        trace_sink: receives one :class:`~repro.obs.reqtrace.RequestTrace`
            per *executed* request (shed requests never ran, so they
            have no decomposition).
        stall_overrun_factor: with ``stall_sink`` set, fire the sink
            once per request when its elapsed time exceeds
            ``deadline_s * factor`` (checked between deepening
            iterations, like the deadline itself).  0 disables.
        stall_sink: the watchdog callback ``(request, elapsed_s)`` —
            the server wires the flight recorder here.
    """

    def __init__(
        self,
        engine: DeepeningEngine,
        *,
        max_concurrency: int = 2,
        queue_limit: int = 32,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[ServeMetrics] = None,
        trace_sink: Optional[Callable[[_reqtrace.RequestTrace], None]] = None,
        stall_overrun_factor: float = 0.0,
        stall_sink: Optional[Callable[[SearchRequest, float], None]] = None,
    ) -> None:
        if stall_overrun_factor < 0.0:
            raise ServeError("stall_overrun_factor must be non-negative")
        if max_concurrency < 1:
            raise ServeError("max_concurrency must be at least 1")
        if queue_limit < 0:
            raise ServeError("queue_limit must be non-negative")
        self._engine = engine
        self._max_concurrency = max_concurrency
        self._queue_limit = queue_limit
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._trace_sink = trace_sink
        self._stall_overrun_factor = stall_overrun_factor
        self._stall_sink = stall_sink
        #: One FIFO per priority class; dispatch serves the highest
        #: non-empty class, shedding evicts from the lowest.
        self._queues: dict[int, deque[_Ticket]] = {p: deque() for p in PRIORITIES}
        self._running = 0
        self._tasks: set["asyncio.Task[None]"] = set()
        self._draining = False
        self._idle_event: Optional[asyncio.Event] = None
        self.counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    # -- bookkeeping --------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        self.metrics.bump(f"requests.{name}", float(amount))

    def _queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet resolved."""
        return self._queued() + self._running

    def _note_depth(self) -> None:
        self.metrics.sample("queue.depth", self._clock(), float(self._queued()))

    def _shed(self, ticket_or_request: object, reason: str) -> SearchReply:
        if isinstance(ticket_or_request, _Ticket):
            request = ticket_or_request.request
        else:
            assert isinstance(ticket_or_request, SearchRequest)
            request = ticket_or_request
        return SearchReply(
            request_id=request.request_id, status=STATUS_SHED, detail=reason
        )

    # -- submission ---------------------------------------------------------

    async def submit(
        self, request: SearchRequest, *, arrived_at: Optional[float] = None
    ) -> SearchReply:
        """Admit (or shed) ``request`` and await its one reply."""
        return await self.submit_nowait(request, arrived_at=arrived_at)

    def submit_nowait(
        self, request: SearchRequest, *, arrived_at: Optional[float] = None
    ) -> "asyncio.Future[SearchReply]":
        """Admission decision now; the returned future resolves exactly once.

        ``arrived_at`` is the caller's arrival stamp on *this
        scheduler's clock*; it anchors the ``admission`` stage of the
        reply's latency decomposition (absent = the admission stamp,
        i.e. a zero-width stage).
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SearchReply]" = loop.create_future()
        self._count("submitted")
        if self._draining:
            self._count("rejected")
            self._count("shed")
            future.set_result(self._shed(request, "shutdown"))
            return future
        if self._running >= self._max_concurrency and self._queued() >= self._queue_limit:
            victim = self._eviction_victim(request.priority)
            if victim is None:
                # The arrival itself is the least valuable waiter.
                self._count("rejected")
                self._count("shed")
                future.set_result(self._shed(request, "rejected"))
                return future
            self._count("evicted")
            self._count("shed")
            victim.future.set_result(self._shed(victim, "evicted"))
            self._note_depth()
        self._count("admitted")
        admitted_at = self._clock()
        ticket = _Ticket(
            request=request,
            future=future,
            admitted_at=admitted_at,
            arrived_at=admitted_at if arrived_at is None else arrived_at,
        )
        self._queues[request.priority].append(ticket)
        self._note_depth()
        self._pump(loop)
        return future

    def _eviction_victim(self, arriving_priority: int) -> Optional[_Ticket]:
        """Newest waiter of the lowest class the arrival outranks, if any.

        Evicting the *newest* of a class keeps the survivors' FIFO
        order intact — fairness within a class is never reordered by
        shedding.
        """
        for priority in PRIORITIES:
            if priority >= arriving_priority:
                return None
            queue = self._queues[priority]
            if queue:
                return queue.pop()
        return None

    # -- dispatch -----------------------------------------------------------

    def _pump(self, loop: asyncio.AbstractEventLoop) -> None:
        while self._running < self._max_concurrency:
            ticket = self._next_ticket()
            if ticket is None:
                break
            self._running += 1
            task = loop.create_task(self._run(ticket))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    def _next_ticket(self) -> Optional[_Ticket]:
        for priority in reversed(PRIORITIES):
            queue = self._queues[priority]
            if queue:
                ticket = queue.popleft()
                self._note_depth()
                return ticket
        return None

    async def _run(self, ticket: _Ticket) -> None:
        request = ticket.request
        started_at = self._clock()
        queue_wait = max(0.0, started_at - ticket.admitted_at)
        best: Optional[IterationResult] = None
        depth_reached = 0
        anytime = False
        failure = ""
        stalled = False
        iteration_bounds: list[tuple[float, float]] = []
        try:
            for depth in range(1, request.max_depth + 1):
                iter_start = self._clock()
                best = await self._engine.run_iteration(request, depth)
                iter_end = self._clock()
                iteration_bounds.append((iter_start, iter_end))
                depth_reached = depth
                elapsed = iter_end - ticket.admitted_at
                stalled = self._check_stall(request, elapsed, stalled)
                if (
                    request.deadline_s is not None
                    and depth < request.max_depth
                    and elapsed >= request.deadline_s
                ):
                    anytime = True
                    self._count("deadline_hits")
                    break
        except asyncio.CancelledError:
            # Scheduler teardown mustn't leave an unresolved future.
            # Counted as an eviction so the shed = rejected + evicted
            # conservation law covers hard aborts too.
            if not ticket.future.done():
                self._count("evicted")
                self._count("shed")
                ticket.future.set_result(self._shed(ticket, "cancelled"))
            raise
        except Exception as error:  # noqa: BLE001 - converted to an error reply
            failure = repr(error)
        finally:
            self._running -= 1
        latency = max(0.0, self._clock() - ticket.admitted_at)
        self.metrics.observe("latency_seconds", latency)
        self.metrics.observe("queue_wait_seconds", queue_wait)
        self.metrics.observe_latency(request.priority, latency)
        if failure or best is None:
            self._count("completed")
            self._count("failed")
            reply = SearchReply(
                request_id=request.request_id,
                status=STATUS_ERROR,
                latency_s=latency,
                queue_wait_s=queue_wait,
                detail=failure or "engine produced no iteration",
            )
        else:
            self._count("completed")
            reply = SearchReply(
                request_id=request.request_id,
                status=STATUS_OK,
                move_index=best.move_index,
                value=best.value,
                depth_reached=depth_reached,
                per_move_values=best.per_move_values,
                latency_s=latency,
                queue_wait_s=queue_wait,
                anytime=anytime,
            )
        # Serialize probe: encode the reply once to price the
        # ``reply_serialize`` stage (the timing block itself adds a few
        # short fields, so the probe is representative of the line the
        # server actually writes).
        serialize_start = self._clock()
        encode_line(reply.to_wire())
        reply_serialize = max(0.0, self._clock() - serialize_start)
        timing = _reqtrace.attribute(
            arrived_at=ticket.arrived_at,
            admitted_at=ticket.admitted_at,
            started_at=started_at,
            finished_at=self._clock(),
            iterations_s=[end - start for start, end in iteration_bounds],
            reply_serialize_s=reply_serialize,
        )
        reply = replace(reply, timing=timing)
        if self._trace_sink is not None:
            self._trace_sink(
                _reqtrace.RequestTrace(
                    request_id=request.request_id,
                    span_id=request.span_id or "root",
                    priority=request.priority,
                    status=reply.status,
                    arrived_at=ticket.arrived_at,
                    timing=timing,
                    iteration_bounds=tuple(iteration_bounds),
                )
            )
        if not ticket.future.done():
            ticket.future.set_result(reply)
        # Completion-side depth sample: the queue did not change here,
        # but time passed — without it the depth series ends on an
        # admission-side peak instead of decaying to its true level.
        self._note_depth()
        loop = asyncio.get_running_loop()
        self._pump(loop)
        if self.in_flight == 0 and self._idle_event is not None:
            self._idle_event.set()

    def _check_stall(
        self, request: SearchRequest, elapsed: float, already_stalled: bool
    ) -> bool:
        """Fire the stall watchdog at most once per overrunning request."""
        if (
            already_stalled
            or self._stall_sink is None
            or self._stall_overrun_factor <= 0.0
            or request.deadline_s is None
            or request.deadline_s <= 0.0
            or elapsed < request.deadline_s * self._stall_overrun_factor
        ):
            return already_stalled
        try:
            self._stall_sink(request, elapsed)
        except Exception:  # noqa: BLE001 - flight recording must not fail the request
            self.metrics.bump("flight.errors")
        return True

    # -- shutdown -----------------------------------------------------------

    async def drain(self) -> None:
        """Stop admission and complete every admitted request.

        Idempotent; returns once no request is queued or running.  New
        submissions during (and after) the drain are shed with reason
        ``shutdown``.
        """
        self._draining = True
        if self.in_flight == 0:
            return
        if self._idle_event is None:
            self._idle_event = asyncio.Event()
        while self.in_flight > 0:
            self._idle_event.clear()
            await self._idle_event.wait()

    async def abort(self) -> None:
        """Hard stop: shed the queue, cancel running work, resolve everything."""
        self._draining = True
        for queue in self._queues.values():
            while queue:
                ticket = queue.pop()
                self._count("evicted")
                self._count("shed")
                ticket.future.set_result(self._shed(ticket, "shutdown"))
        self._note_depth()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass

    def conservation_problems(self) -> list[str]:
        """Counter-conservation violations; [] when the books balance.

        Meaningful once every submitted request has resolved (e.g.
        after :meth:`drain`).
        """
        c = self.counters
        problems: list[str] = []
        if c["submitted"] != c["completed"] + c["shed"]:
            problems.append(
                f"submitted {c['submitted']} != completed {c['completed']} "
                f"+ shed {c['shed']}"
            )
        if c["shed"] != c["rejected"] + c["evicted"]:
            problems.append(
                f"shed {c['shed']} != rejected {c['rejected']} "
                f"+ evicted {c['evicted']}"
            )
        if c["admitted"] < c["completed"]:
            problems.append(
                f"completed {c['completed']} exceeds admitted {c['admitted']}"
            )
        return problems
