"""Synthetic traffic: deterministic request traces and the serving report.

The throughput claims of the serve layer need a reproducible load, so
:func:`generate_trace` derives a request sequence entirely from a seed:
which workload, which position (random walks from the root, with a
tunable fraction of *repeats* — the traffic shape that makes a warm
shared transposition table pay), which priority, and which deadlines.
:func:`run_trace` drives a trace through a running
:class:`~repro.serve.server.SearchService` and folds the replies into a
:class:`TrafficReport` — requests/s plus nearest-rank p50/p95/p99
latency percentiles, the numbers ``repro bench-traffic`` prints and the
run ledger records via :func:`repro.obs.ledger.service_block`.

:func:`service_snapshot` renders the run as a
:class:`~repro.obs.snapshot.Snapshot` (backend ``serve``, wall-clock
seconds) so the same ledger/compare machinery that watches the search
backends watches the service too.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .client import ServiceClient

from ..errors import ServeError
from ..games.base import Game
from ..obs.snapshot import SECONDS, ProcBreakdown, Snapshot, work_dict
from .api import (
    PRIORITIES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    SearchReply,
    SearchRequest,
)
from .server import SearchService, ServeWorkload

__all__ = [
    "STAGE_ORDER",
    "TrafficReport",
    "TrafficSpec",
    "generate_trace",
    "latency_fields",
    "percentile",
    "render_decomposition",
    "run_trace",
    "run_trace_client",
    "service_snapshot",
    "stage_samples",
    "stage_stats",
]

#: Decomposition stages in pipeline order — the rows of the
#: ``profile-service`` table and the keys of the ledger ``latency``
#: block (plus the ``end_to_end`` total).
STAGE_ORDER = ("admission", "queue_wait", "iterations", "reply_serialize", "unattributed")


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a synthetic request trace — fully determined by ``seed``.

    Attributes:
        workloads: catalog names to draw from.
        n_requests: trace length.
        seed: the only source of randomness.
        max_depth: iterative-deepening depth for every request.  One
            depth per trace keeps cross-request transposition-table
            reuse exact (entries stored by one request are probed at
            the same depths by the next — see the parity battery).
        max_path_len: longest random walk from a workload root when
            minting a fresh position.
        repeat_fraction: probability a request re-asks a position the
            trace already issued — the knob that separates warm-cache
            serving from a stream of never-seen positions.
        deadline_s / deadline_fraction: this fraction of requests
            carries this deadline.
        priority_weights: relative weights for (low, normal, high).
    """

    workloads: tuple[str, ...]
    n_requests: int
    seed: int = 0
    max_depth: int = 3
    max_path_len: int = 2
    repeat_fraction: float = 0.5
    deadline_s: Optional[float] = None
    deadline_fraction: float = 0.0
    priority_weights: tuple[float, float, float] = (1.0, 2.0, 1.0)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ServeError("a traffic spec needs at least one workload")
        if self.n_requests < 1:
            raise ServeError("n_requests must be positive")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ServeError("repeat_fraction must be in [0, 1]")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ServeError("deadline_fraction must be in [0, 1]")


def _fresh_path(rng: random.Random, game: Game, max_len: int) -> tuple[int, ...]:
    """Random walk from the root, stopping before any childless position."""
    path: list[int] = []
    position = game.root()
    for _ in range(rng.randint(0, max_len)):
        children = game.children(position)
        if not children:
            break
        # Only step somewhere searchable: the destination must itself
        # have legal moves, or the request would be unanswerable.
        step = rng.randrange(len(children))
        candidate = children[step]
        if not game.children(candidate):
            break
        path.append(step)
        position = candidate
    return tuple(path)


def generate_trace(
    spec: TrafficSpec, catalog: Mapping[str, ServeWorkload]
) -> list[SearchRequest]:
    """Materialize a deterministic request list from a spec.

    The same (spec, catalog) always yields the same trace, so warm and
    cold benchmark arms serve *identical* request sequences.
    """
    for name in spec.workloads:
        if name not in catalog:
            raise ServeError(f"traffic spec names unknown workload {name!r}")
    rng = random.Random(spec.seed)
    games = {name: catalog[name].make_game() for name in spec.workloads}
    issued: list[tuple[str, tuple[int, ...]]] = []
    requests: list[SearchRequest] = []
    for index in range(spec.n_requests):
        if issued and rng.random() < spec.repeat_fraction:
            workload, path = issued[rng.randrange(len(issued))]
        else:
            workload = spec.workloads[rng.randrange(len(spec.workloads))]
            path = _fresh_path(rng, games[workload], spec.max_path_len)
            issued.append((workload, path))
        priority = rng.choices(PRIORITIES, weights=spec.priority_weights)[0]
        deadline = (
            spec.deadline_s
            if spec.deadline_s is not None and rng.random() < spec.deadline_fraction
            else None
        )
        requests.append(
            SearchRequest(
                request_id=f"t{index:06d}",
                workload=workload,
                path=path,
                max_depth=spec.max_depth,
                deadline_s=deadline,
                priority=priority,
            )
        )
    return requests


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile {q!r} out of range")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass(frozen=True)
class TrafficReport:
    """What one trace run measured.

    ``samples`` is the count of latency observations behind the
    percentiles (``ok`` replies only).  With fewer than 3 samples the
    nearest-rank p50/p95/p99 collapse onto the same order statistics,
    so :meth:`render` reports ``n`` and flags the degenerate case
    instead of printing three indistinguishable numbers silently.

    ``replies`` keeps the raw per-request replies so the stage
    decomposition (:func:`render_decomposition`, :func:`latency_fields`)
    can be derived from the same run the summary describes.
    """

    requests: int
    admitted: int
    completed: int
    ok: int
    shed: int
    errors: int
    anytime: int
    wall_s: float
    rps: float
    p50_s: float
    p95_s: float
    p99_s: float
    samples: int = 0
    replies: tuple[SearchReply, ...] = ()

    def service_fields(self) -> dict[str, object]:
        """Keyword arguments for :func:`repro.obs.ledger.service_block`."""
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "rps": self.rps,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }

    def render(self, title: str) -> str:
        """Human-readable run summary for benchmark result files."""
        lines = [
            title,
            "-" * len(title),
            f"requests   {self.requests}",
            f"admitted   {self.admitted}",
            f"completed  {self.completed} (ok {self.ok}, errors {self.errors}, "
            f"anytime {self.anytime})",
            f"shed       {self.shed}",
            f"wall       {self.wall_s:.3f} s",
            f"throughput {self.rps:.1f} req/s",
            f"latency    p50 {self.p50_s * 1e3:.1f} ms | "
            f"p95 {self.p95_s * 1e3:.1f} ms | p99 {self.p99_s * 1e3:.1f} ms "
            f"(n={self.samples})",
        ]
        if 0 < self.samples < 3:
            lines.append(
                f"           [degenerate: only {self.samples} latency "
                "sample(s); nearest-rank p50/p95/p99 are not distinct]"
            )
        return "\n".join(lines)


def _fold_replies(
    trace: Sequence[SearchRequest],
    replies: Sequence[SearchReply],
    wall: float,
    admitted: int,
) -> TrafficReport:
    ok = [r for r in replies if r.status == STATUS_OK]
    shed = sum(1 for r in replies if r.status == STATUS_SHED)
    errors = sum(1 for r in replies if r.status == STATUS_ERROR)
    latencies = sorted(r.latency_s for r in ok)
    return TrafficReport(
        requests=len(trace),
        admitted=admitted,
        completed=len(ok) + errors,
        ok=len(ok),
        shed=shed,
        errors=errors,
        anytime=sum(1 for r in ok if r.anytime),
        wall_s=wall,
        rps=len(replies) / wall,
        p50_s=percentile(latencies, 50),
        p95_s=percentile(latencies, 95),
        p99_s=percentile(latencies, 99),
        samples=len(latencies),
        replies=tuple(replies),
    )


async def run_trace(service: SearchService, trace: Sequence[SearchRequest]) -> TrafficReport:
    """Serve a whole trace concurrently through the in-process path.

    All requests are submitted at once — admission control, not the
    caller, decides what runs, queues, or sheds — and the clock covers
    first submission to last reply.
    """
    if service.scheduler is None:
        raise ServeError("service must be started before running traffic")
    admitted_before = service.scheduler.counters["admitted"]
    t0 = time.perf_counter()
    replies: list[SearchReply] = await asyncio.gather(
        *(service.handle(request) for request in trace)
    )
    wall = max(time.perf_counter() - t0, 1e-9)
    admitted = service.scheduler.counters["admitted"] - admitted_before
    return _fold_replies(trace, replies, wall, admitted)


async def run_trace_client(
    client: "ServiceClient", trace: Sequence[SearchRequest]
) -> TrafficReport:
    """Drive a trace over the wire against a remote service.

    Same measurement as :func:`run_trace`, with the admitted count
    recovered from the server's ``stats`` op (delta around the run).
    """
    before = await client.stats()
    t0 = time.perf_counter()
    replies: list[SearchReply] = await asyncio.gather(
        *(client.search(request) for request in trace)
    )
    wall = max(time.perf_counter() - t0, 1e-9)
    after = await client.stats()
    admitted = int(str(after.get("admitted", 0))) - int(str(before.get("admitted", 0)))
    return _fold_replies(trace, replies, wall, admitted)


# ---------------------------------------------------------------------------
# Latency decomposition over a run's replies.
# ---------------------------------------------------------------------------


def stage_samples(replies: Sequence[SearchReply]) -> dict[str, list[float]]:
    """Per-stage latency samples from replies carrying a ``timing`` block.

    Keys are :data:`STAGE_ORDER` plus ``end_to_end``; shed replies (and
    replies from pre-tracing servers) carry no block and contribute
    nothing, so every stage has the same sample count.
    """
    out: dict[str, list[float]] = {stage: [] for stage in STAGE_ORDER}
    out["end_to_end"] = []
    for reply in replies:
        timing = reply.timing
        if timing is None:
            continue
        for stage, seconds in timing.stage_seconds().items():
            out[stage].append(seconds)
        out["end_to_end"].append(timing.end_to_end_s)
    return out


def stage_stats(
    samples: Mapping[str, Sequence[float]]
) -> dict[str, dict[str, float]]:
    """mean/p50/p95/p99 seconds per stage (nearest-rank percentiles)."""
    stats: dict[str, dict[str, float]] = {}
    for stage, values in samples.items():
        ordered = sorted(values)
        n = len(ordered)
        stats[stage] = {
            "mean_s": sum(ordered) / n if n else 0.0,
            "p50_s": percentile(ordered, 50),
            "p95_s": percentile(ordered, 95),
            "p99_s": percentile(ordered, 99),
        }
    return stats


def latency_fields(replies: Sequence[SearchReply]) -> dict[str, object]:
    """Keyword arguments for :func:`repro.obs.ledger.latency_block`."""
    samples = stage_samples(replies)
    return {
        "samples": len(samples["end_to_end"]),
        "stages": stage_stats(samples),
    }


def render_decomposition(replies: Sequence[SearchReply], title: str) -> str:
    """The p50/p95/p99 stage-decomposition table of one run.

    Answers "which stage dominates tail latency": one row per
    decomposition stage plus the conserved ``end_to_end`` total, and a
    closing line naming the stage with the largest p99.
    """
    samples = stage_samples(replies)
    stats = stage_stats(samples)
    n = len(samples["end_to_end"])
    lines = [title, "-" * len(title), f"decomposed requests: {n}"]
    if n == 0:
        lines.append("(no replies carried a timing block)")
        return "\n".join(lines)
    header = (
        f"{'stage':>16s}  {'mean ms':>9s}  {'p50 ms':>9s}  "
        f"{'p95 ms':>9s}  {'p99 ms':>9s}"
    )
    lines.append(header)
    for stage in STAGE_ORDER + ("end_to_end",):
        row = stats[stage]
        lines.append(
            f"{stage:>16s}  {row['mean_s'] * 1e3:9.3f}  {row['p50_s'] * 1e3:9.3f}  "
            f"{row['p95_s'] * 1e3:9.3f}  {row['p99_s'] * 1e3:9.3f}"
        )
    dominant = max(STAGE_ORDER, key=lambda stage: stats[stage]["p99_s"])
    lines.append(
        f"dominant tail stage: {dominant} "
        f"(p99 {stats[dominant]['p99_s'] * 1e3:.3f} ms)"
    )
    if n < 3:
        lines.append(
            f"[degenerate: only {n} sample(s); percentiles are not distinct]"
        )
    return "\n".join(lines)


def service_snapshot(
    service: SearchService, report: TrafficReport, *, workload: str
) -> Snapshot:
    """Normalize a traffic run into the ledger's :class:`Snapshot` shape.

    Wall-clock semantics like the multiproc backend: per-worker busy
    seconds come from task timestamps; workers that never got a task
    appear as all-idle rows, and loss categories the service does not
    measure are zero.
    """
    pool = service.pool
    if pool is None:
        raise ServeError("service has no pool to snapshot")
    processors = []
    for index in range(pool.n_workers):
        split = pool.per_worker.get(index, {"pid": float(-1 - index), "applied": 0.0})
        processors.append(
            ProcBreakdown(
                pid=int(split["pid"]),
                busy=min(split["applied"], report.wall_s),
                starvation=0.0,
                interference=0.0,
                speculative=0.0,
                tail_idle=max(0.0, report.wall_s - split["applied"]),
                finish_time=report.wall_s,
            )
        )
    counters: dict[str, float] = {
        name: float(count)
        for name, count in (service.scheduler.counters if service.scheduler else {}).items()
    }
    for name, count in pool.counters.items():
        counters[f"pool_{name}"] = float(count)
    return Snapshot(
        backend="serve",
        time_unit=SECONDS,
        workload=workload,
        n_processors=pool.n_workers,
        makespan=report.wall_s,
        value=0.0,
        processors=tuple(processors),
        counters=counters,
        work=work_dict(pool.stats),
    )
