"""The service wire protocol: newline-delimited JSON over TCP.

One request or reply per line, UTF-8 JSON with no embedded newlines —
trivially debuggable with ``nc`` and line-buffered by construction, so
the asyncio reader can frame messages with ``readline()``.  Three
operations travel client→server: ``search`` (the payload of
:class:`SearchRequest`), ``stats`` (scheduler counter snapshot), and
``shutdown`` (graceful drain).  Every search produces exactly one
:class:`SearchReply` whose ``status`` is ``ok`` (a move), ``shed``
(explicit load-shedding rejection — the request was *not* silently
dropped), or ``error`` (malformed request or a search failure).

Positions are named, not pickled: a request carries a workload name
from the Table 3 suite (or a server-side custom catalog) plus a path of
move indices from that workload's root, resolved with
:func:`repro.games.base.follow_path`.  That keeps the wire format plain
data — no code crosses the socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import ServeError
from ..obs.reqtrace import RequestTiming, timing_from_wire

__all__ = [
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITIES",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "SearchReply",
    "SearchRequest",
    "decode_line",
    "encode_line",
]

#: Priority classes, higher is more important.  Admission control sheds
#: from the lowest class first; FIFO order holds within a class.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2
PRIORITIES = (PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH)

STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_ERROR = "error"


def encode_line(payload: Mapping[str, object]) -> bytes:
    """One protocol message: compact JSON plus the framing newline."""
    return json.dumps(dict(payload), separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, object]:
    """Parse one protocol line; raises :class:`ServeError` on garbage."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"undecodable protocol line: {error}") from error
    if not isinstance(payload, dict):
        raise ServeError(f"protocol message must be a JSON object, got {type(payload).__name__}")
    return payload


def _require_str(payload: Mapping[str, object], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ServeError(f"request field {key!r} must be a non-empty string")
    return value


@dataclass(frozen=True)
class SearchRequest:
    """One "best move" query.

    Attributes:
        request_id: client-chosen correlation id, echoed on the reply.
        workload: workload name in the server's catalog (Table 3 suite
            names — ``R1``..``O3`` — by default).
        scale: suite scale (``reduced``/``paper``); ignored by servers
            running a custom catalog.
        path: move indices from the workload's root to the position to
            move from (empty = the root itself).
        max_depth: deepest iterative-deepening iteration.
        deadline_s: seconds from *admission* after which the best
            answer so far is returned instead of deepening further
            (``None`` = always reach ``max_depth``).  At least one
            iteration always runs: an admitted request is never
            answered with no move.
        priority: one of :data:`PRIORITIES`; higher survives shedding
            longer.
        span_id: root span id of this request's trace tree
            (:class:`repro.obs.reqtrace.TraceContext`).  The client
            originates it (:class:`~repro.serve.client.ServiceClient`
            fills it in automatically); empty means "untraced caller"
            and the server substitutes ``root``.
    """

    request_id: str
    workload: str
    scale: str = "reduced"
    path: tuple[int, ...] = ()
    max_depth: int = 3
    deadline_s: Optional[float] = None
    priority: int = PRIORITY_NORMAL
    span_id: str = ""

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ServeError("request_id must be non-empty")
        if self.max_depth < 1:
            raise ServeError("max_depth must be at least 1")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ServeError("deadline_s must be non-negative")
        if self.priority not in PRIORITIES:
            raise ServeError(
                f"priority {self.priority!r} not one of {PRIORITIES}"
            )

    def to_wire(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "op": "search",
            "request_id": self.request_id,
            "workload": self.workload,
            "scale": self.scale,
            "path": list(self.path),
            "max_depth": self.max_depth,
            "priority": self.priority,
        }
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        if self.span_id:
            payload["span_id"] = self.span_id
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "SearchRequest":
        raw_path = payload.get("path", [])
        if not isinstance(raw_path, list) or not all(
            isinstance(step, int) and not isinstance(step, bool) and step >= 0
            for step in raw_path
        ):
            raise ServeError("request field 'path' must be a list of non-negative ints")
        max_depth = payload.get("max_depth", 3)
        if not isinstance(max_depth, int) or isinstance(max_depth, bool):
            raise ServeError("request field 'max_depth' must be an integer")
        deadline = payload.get("deadline_s")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ServeError("request field 'deadline_s' must be a number")
        priority = payload.get("priority", PRIORITY_NORMAL)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServeError("request field 'priority' must be an integer")
        scale = payload.get("scale", "reduced")
        if not isinstance(scale, str):
            raise ServeError("request field 'scale' must be a string")
        span_id = payload.get("span_id", "")
        if not isinstance(span_id, str):
            raise ServeError("request field 'span_id' must be a string")
        return cls(
            request_id=_require_str(payload, "request_id"),
            workload=_require_str(payload, "workload"),
            scale=scale,
            path=tuple(raw_path),
            max_depth=max_depth,
            deadline_s=None if deadline is None else float(deadline),
            priority=priority,
            span_id=span_id,
        )


@dataclass(frozen=True)
class SearchReply:
    """The exactly-once resolution of one request.

    ``anytime`` marks an ``ok`` reply whose deadline fired before
    ``max_depth``: the move is the best of the deepest *completed*
    iteration (``depth_reached``), the iterative-deepening anytime
    guarantee.  ``shed`` replies carry the shedding reason in
    ``detail`` (``rejected`` at admission, ``evicted`` by a
    higher-priority arrival, ``shutdown`` during drain).

    ``timing`` is the server's conserved latency decomposition
    (:class:`repro.obs.reqtrace.RequestTiming`) for requests that ran;
    shed requests have none.  The block is wire-versioned: replies from
    a newer server decode with ``timing=None`` rather than failing.
    """

    request_id: str
    status: str
    move_index: int = -1
    value: float = 0.0
    depth_reached: int = 0
    per_move_values: tuple[float, ...] = ()
    latency_s: float = 0.0
    queue_wait_s: float = 0.0
    anytime: bool = False
    detail: str = ""
    timing: Optional[RequestTiming] = None

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_SHED, STATUS_ERROR):
            raise ServeError(f"unknown reply status {self.status!r}")

    def to_wire(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "op": "reply",
            "request_id": self.request_id,
            "status": self.status,
            "move_index": self.move_index,
            "value": self.value,
            "depth_reached": self.depth_reached,
            "per_move_values": list(self.per_move_values),
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
            "anytime": self.anytime,
            "detail": self.detail,
        }
        if self.timing is not None:
            payload["timing"] = self.timing.to_wire()
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "SearchReply":
        values = payload.get("per_move_values", [])
        if not isinstance(values, list):
            raise ServeError("reply field 'per_move_values' must be a list")
        status = payload.get("status")
        if not isinstance(status, str):
            raise ServeError("reply field 'status' must be a string")
        move_index = payload.get("move_index", -1)
        if not isinstance(move_index, int) or isinstance(move_index, bool):
            raise ServeError("reply field 'move_index' must be an integer")
        depth = payload.get("depth_reached", 0)
        if not isinstance(depth, int) or isinstance(depth, bool):
            raise ServeError("reply field 'depth_reached' must be an integer")
        try:
            timing = timing_from_wire(payload.get("timing"))
        except ValueError as error:
            raise ServeError(f"reply field 'timing' is malformed: {error}") from error
        return cls(
            request_id=_require_str(payload, "request_id"),
            status=status,
            move_index=move_index,
            value=float(_as_number(payload.get("value", 0.0), "value")),
            depth_reached=depth,
            per_move_values=tuple(
                float(_as_number(v, "per_move_values")) for v in values
            ),
            latency_s=float(_as_number(payload.get("latency_s", 0.0), "latency_s")),
            queue_wait_s=float(
                _as_number(payload.get("queue_wait_s", 0.0), "queue_wait_s")
            ),
            anytime=bool(payload.get("anytime", False)),
            detail=str(payload.get("detail", "")),
            timing=timing,
        )


def _as_number(value: object, key: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ServeError(f"reply field {key!r} must be a number")
    return float(value)
