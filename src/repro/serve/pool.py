"""The persistent engine pool: warm workers and shared caches for the service.

Before this module the multiprocess path was "one engine per search":
every :func:`~repro.parallel.multiproc.multiproc_er` call spawned a
pool, built a fresh :class:`~repro.cache.sharedmem.SharedMemoryTT`, and
tore both down at the end — none of one search's work survived to the
next.  :class:`EnginePool` inverts that ownership: the *server* owns
one long-lived :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers were initialized once with
:func:`repro.parallel.multiproc._init_worker`, one shared TT, and one
shared eval cache, all spanning every request from every user until the
pool is closed.  It satisfies the
:class:`~repro.parallel.multiproc.PersistentPool` protocol, so whole ER
searches (``multiproc_er(pool=...)``) and the service's per-iteration
fan-out (:class:`PoolEngine`) run on the same warm substrate.

:class:`PoolEngine` is the service's
:class:`~repro.serve.scheduler.DeepeningEngine`: one deepening
iteration evaluates every root move's subtree full-window in a worker
process and argmaxes the negated values — byte-for-byte the decision
rule of :meth:`repro.engine.GameEngine.choose`, which is what the
cross-request parity battery pins against the serial alpha-beta
oracle.  Before paying a task round-trip it probes the warm shared TT
coordinator-side for an EXACT entry deep enough to answer the subtree
outright — the cross-request amortization the ROADMAP's north star is
about.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from ..cache.sharedmem import SharedMemoryTT
from ..errors import ServeError
from ..eval.cache import SharedMemoryEvalCache
from ..games.base import Game, Position, RootedGame, SearchProblem, hash_key
from ..obs import live as _live
from ..obs import reqtrace as _reqtrace
from ..parallel.multiproc import (
    WorkerCaches,
    _init_worker,
    _run_task,
    _TaskOutcome,
    _unpack_stats,
    build_worker_caches,
    preferred_start_method,
)
from ..search.stats import SearchStats
from ..search.transposition import Bound
from .api import SearchRequest
from .scheduler import IterationResult

__all__ = ["EnginePool", "PoolEngine", "ResolvedPosition"]

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class ResolvedPosition:
    """A request's position, resolved against its workload's game."""

    game: Game
    position: Position
    children: tuple[Position, ...]
    sort_below_root: int


class EnginePool:
    """One warm multiprocess pool shared by every request of a service.

    Args:
        n_workers: worker-process count.
        tt_mode: ``off``/``private``/``shared`` — ``shared`` (default)
            is the point of the service: one warm
            :class:`~repro.cache.sharedmem.SharedMemoryTT` spanning
            requests, so repeated and overlapping queries collapse to
            table hits.
        tt_capacity: slot budget for the shared table.
        eval_cache_mode: ``off``/``private``/``shared`` static-eval
            cache for the workers.
        eval_cache_capacity: entry budget for the eval cache.
        batch_eval: batch frontier evaluations in worker subtree
            searches.
        start_method: multiprocessing start method (default prefers
            ``fork``).
        trace_mode: span-ring mode installed in every worker.
        trace_span_limit: per-worker cap on coordinator-side collected
            spans (oldest dropped first), bounding a long-lived
            service's trace memory.

    The pool accumulates run-independent accounting: per-worker busy
    seconds keyed by stable worker index (same convention as
    :class:`~repro.parallel.multiproc.MultiprocResult.per_worker`),
    merged :class:`~repro.search.stats.SearchStats` over every task
    result, and task/short-circuit counters.  :meth:`close` is
    idempotent and tears down the executor and both shared segments;
    the soak battery asserts nothing leaks past it.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        tt_mode: str = "shared",
        tt_capacity: int = 1 << 14,
        eval_cache_mode: str = "off",
        eval_cache_capacity: int = 1 << 14,
        batch_eval: bool = False,
        start_method: Optional[str] = None,
        trace_mode: str = _live.TRACE_OFF,
        trace_span_limit: int = 8192,
    ) -> None:
        if n_workers < 1:
            raise ServeError("need at least one worker process")
        if trace_mode not in _live.TRACE_MODES:
            raise ServeError(
                f"unknown trace mode {trace_mode!r}; expected one of {_live.TRACE_MODES}"
            )
        self._n_workers = n_workers
        self._trace_mode = trace_mode
        self._mp_ctx = multiprocessing.get_context(
            start_method or preferred_start_method()
        )
        self._caches: Optional[WorkerCaches] = build_worker_caches(
            self._mp_ctx,
            tt_mode=tt_mode,
            tt_capacity=tt_capacity,
            eval_cache_mode=eval_cache_mode,
            eval_cache_capacity=eval_cache_capacity,
            batch_eval=batch_eval,
        )
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=self._mp_ctx,
            initializer=_init_worker,
            initargs=(self._caches.tt_spec, self._caches.eval_spec, trace_mode),
        )
        self.stats = SearchStats()
        #: Stable worker index -> {"pid", "applied"} busy seconds; the
        #: service has no moot results, so there is no "wasted" split.
        self.per_worker: dict[int, dict[str, float]] = {}
        self._pid_index: dict[int, int] = {}
        self.counters: dict[str, int] = {
            "tasks_submitted": 0,
            "tasks_completed": 0,
            "tt_short_circuits": 0,
        }
        self._closed = False
        self._final_counters: dict[str, int] = {}
        #: Worker trace collection, fed by :meth:`note_outcome` from the
        #: trace blobs riding on task results: per-pid span deques
        #: (bounded), per-pid clock-offset estimators built from task
        #: round-trips, and cumulative ring counters (max-merged — the
        #: workers ship lifetime values with every result).
        self._trace_span_limit = trace_span_limit
        self._trace_spans: dict[int, deque[_live.SpanRec]] = {}
        self._trace_offsets: dict[int, _live.OffsetEstimator] = {}
        self._trace_dropped: dict[int, int] = {}
        self._trace_self_cost: dict[int, float] = {}

    # -- PersistentPool protocol -------------------------------------------

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise ServeError("engine pool is closed")
        return self._executor

    @property
    def shared_tt(self) -> Optional[SharedMemoryTT]:
        return self._caches.shared_tt if self._caches is not None else None

    @property
    def shared_eval(self) -> Optional[SharedMemoryEvalCache]:
        return self._caches.shared_eval if self._caches is not None else None

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def trace_mode(self) -> str:
        return self._trace_mode

    @property
    def closed(self) -> bool:
        return self._closed

    # -- task submission ----------------------------------------------------

    def submit_eval(
        self,
        problem: SearchProblem,
        alpha: float = NEG_INF,
        beta: float = POS_INF,
        *,
        tag: Optional[str] = None,
    ) -> "Future[_TaskOutcome]":
        """Ship one full subtree search to a warm worker process.

        ``tag`` (``request_id/span_id``, see
        :func:`repro.obs.reqtrace.span_tag`) rides in the task payload
        so the worker's span for this task carries its originating
        request — the propagation leg of request-scoped tracing.
        """
        payload: tuple[object, ...] = ("eval", problem, alpha, beta)
        if tag is not None:
            payload = payload + (tag,)
        future = self.executor.submit(_run_task, payload)
        self.counters["tasks_submitted"] += 1
        return future

    def note_outcome(
        self, outcome: _TaskOutcome, *, submitted_at: Optional[float] = None
    ) -> float:
        """Fold one task result into the pool's accounting; returns its value.

        ``submitted_at`` (coordinator clock, :func:`repro.obs.live.wall_clock`)
        turns this result's worker timestamps into one clock-offset
        observation — ``(submit, start, end, receive)`` brackets the
        worker-to-coordinator offset — so collected worker spans can be
        rebased onto the service timeline even across clock domains.
        """
        _, value, packed, t_start, t_end, worker_pid, _, blob = outcome
        self.stats.merge(_unpack_stats(packed))
        index = self._pid_index.setdefault(worker_pid, len(self._pid_index))
        split = self.per_worker.setdefault(
            index, {"pid": float(worker_pid), "applied": 0.0}
        )
        split["applied"] += max(0.0, t_end - t_start)
        self.counters["tasks_completed"] += 1
        if blob is not None:
            spans, dropped, self_cost = blob
            store = self._trace_spans.setdefault(
                worker_pid, deque(maxlen=self._trace_span_limit)
            )
            store.extend(spans)
            self._trace_dropped[worker_pid] = max(
                self._trace_dropped.get(worker_pid, 0), dropped
            )
            self._trace_self_cost[worker_pid] = max(
                self._trace_self_cost.get(worker_pid, 0.0), self_cost
            )
        if submitted_at is not None:
            estimator = self._trace_offsets.setdefault(
                worker_pid, _live.OffsetEstimator()
            )
            estimator.observe(submitted_at, t_start, t_end, _live.wall_clock())
        return value

    # -- collected worker traces --------------------------------------------

    def merged_spans(self) -> tuple[_live.WorkerSpan, ...]:
        """Collected worker spans rebased onto the coordinator clock.

        Keyed by stable worker index — the same convention as
        :attr:`per_worker` — with each worker's clock offset taken from
        its round-trip estimator (0 when the clock domains agree, the
        common Linux case).
        """
        spans_by_worker: dict[int, tuple[_live.SpanRec, ...]] = {}
        offsets: dict[int, float] = {}
        for pid, spans in self._trace_spans.items():
            index = self._pid_index.setdefault(pid, len(self._pid_index))
            spans_by_worker[index] = tuple(spans)
            estimator = self._trace_offsets.get(pid)
            offsets[index] = estimator.offset if estimator is not None else 0.0
        return _live.merge_spans(spans_by_worker, offsets)

    def request_spans(self, request_id: str) -> tuple[_live.WorkerSpan, ...]:
        """Merged worker spans tagged as belonging to ``request_id``."""
        prefix = f"{request_id}/"
        matched: list[_live.WorkerSpan] = []
        for span in self.merged_spans():
            _, tag = _live.split_span_name(span.name)
            if tag is not None and tag.startswith(prefix):
                matched.append(span)
        return tuple(matched)

    def span_pids(self) -> dict[int, int]:
        """Stable worker index -> OS pid, for labeling exported tracks."""
        return {index: pid for pid, index in self._pid_index.items()}

    def trace_dropped(self) -> int:
        """Worker spans lost to ring overwrites (cumulative, all workers)."""
        return sum(self._trace_dropped.values())

    def probe_exact(self, game: Game, position: Position, depth: int) -> Optional[float]:
        """Answer a full-window subtree from the warm table, if it can.

        Full-window searches only ever substitute EXACT entries (a
        bound cannot answer an open window), proven at least ``depth``
        deep — the same gate :func:`~repro.core.serial_er.er_search`
        applies at the subtree's root, so a short-circuit here returns
        exactly what the worker would have.
        """
        table = self.shared_tt
        if table is None:
            return None
        entry = table.probe(hash_key(game, position))
        if entry is None or entry.depth < depth or entry.bound is not Bound.EXACT:
            return None
        self.counters["tt_short_circuits"] += 1
        return entry.value

    def clear_caches(self) -> None:
        """Zero the shared segments — the benchmark's "cold" mode.

        Emptying the warm tables between requests isolates what cache
        warmth contributes versus pool persistence, without paying (or
        measuring) worker start-up.
        """
        tt = self.shared_tt
        if tt is not None:
            tt.clear()
        cache = self.shared_eval
        if cache is not None:
            cache.clear()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> dict[str, int]:
        """Shut down workers and destroy the shared segments; idempotent.

        Returns the pool's final counters (task counts, short-circuits,
        and the shared segments' cumulative hit/store totals).
        """
        if self._closed:
            return dict(self._final_counters)
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        final = dict(self.counters)
        if self._caches is not None:
            final.update(self._caches.teardown())
            self._caches = None
        self._final_counters = final
        return dict(final)

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolEngine:
    """Per-iteration deepening engine over an :class:`EnginePool`.

    Args:
        pool: the warm pool to fan out on.
        resolve: callback mapping a request to its
            :class:`ResolvedPosition` (the server caches game instances
            per workload and applies :func:`~repro.games.base.follow_path`).
        span_ring: optional :class:`~repro.obs.live.SpanRing` receiving
            one ``serve`` span per iteration, named
            ``iteration@<request_id>/<span_id>.d<depth>`` so the
            service ring is request-addressable too.
    """

    def __init__(
        self,
        pool: EnginePool,
        resolve: Callable[[SearchRequest], ResolvedPosition],
        *,
        span_ring: Optional[_live.SpanRing] = None,
    ) -> None:
        self._pool = pool
        self._resolve = resolve
        self._ring = span_ring

    async def run_iteration(
        self, request: SearchRequest, depth: int
    ) -> IterationResult:
        """Evaluate every root move to ``depth - 1``; argmax the negations.

        Mirrors one iteration of :meth:`repro.engine.GameEngine.choose`
        exactly: each child subtree is searched full-window as its own
        :class:`~repro.games.base.SearchProblem` rooted at the child,
        values are negated into the mover's frame, and ties resolve to
        the lowest move index.
        """
        t0 = time.perf_counter()
        resolved = self._resolve(request)
        # One child span id per deepening iteration; the tag only rides
        # to the workers when they record spans at all, keeping the
        # ``off`` payload byte-identical to the multiproc driver's.
        context = _reqtrace.TraceContext(
            request.request_id, request.span_id or "root"
        ).child(f"d{depth}")
        tag = None if self._pool.trace_mode == _live.TRACE_OFF else context.tag
        loop = asyncio.get_running_loop()
        pending: list[tuple[int, float, "asyncio.Future[_TaskOutcome]"]] = []
        values: list[Optional[float]] = [None] * len(resolved.children)
        for index, child in enumerate(resolved.children):
            hit = self._pool.probe_exact(resolved.game, child, depth - 1)
            if hit is not None:
                values[index] = -hit
                continue
            problem = SearchProblem(
                game=RootedGame(resolved.game, child),
                depth=depth - 1,
                sort_below_root=resolved.sort_below_root,
            )
            submitted_at = _live.wall_clock()
            future = self._pool.submit_eval(problem, tag=tag)
            pending.append((index, submitted_at, asyncio.wrap_future(future, loop=loop)))
        for index, submitted_at, wrapped in pending:
            outcome = await wrapped
            values[index] = -self._pool.note_outcome(outcome, submitted_at=submitted_at)
        iteration = [v for v in values if v is not None]
        assert len(iteration) == len(values), "every child resolved to a value"
        best_index = max(range(len(iteration)), key=iteration.__getitem__)
        if self._ring is not None:
            name = _live.tag_span_name("iteration", context.tag)
            self._ring.record("serve", name, t0, time.perf_counter())
        return IterationResult(
            move_index=best_index,
            value=iteration[best_index],
            per_move_values=tuple(iteration),
        )
