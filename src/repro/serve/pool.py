"""The persistent engine pool: warm workers and shared caches for the service.

Before this module the multiprocess path was "one engine per search":
every :func:`~repro.parallel.multiproc.multiproc_er` call spawned a
pool, built a fresh :class:`~repro.cache.sharedmem.SharedMemoryTT`, and
tore both down at the end — none of one search's work survived to the
next.  :class:`EnginePool` inverts that ownership: the *server* owns
one long-lived :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers were initialized once with
:func:`repro.parallel.multiproc._init_worker`, one shared TT, and one
shared eval cache, all spanning every request from every user until the
pool is closed.  It satisfies the
:class:`~repro.parallel.multiproc.PersistentPool` protocol, so whole ER
searches (``multiproc_er(pool=...)``) and the service's per-iteration
fan-out (:class:`PoolEngine`) run on the same warm substrate.

:class:`PoolEngine` is the service's
:class:`~repro.serve.scheduler.DeepeningEngine`: one deepening
iteration evaluates every root move's subtree full-window in a worker
process and argmaxes the negated values — byte-for-byte the decision
rule of :meth:`repro.engine.GameEngine.choose`, which is what the
cross-request parity battery pins against the serial alpha-beta
oracle.  Before paying a task round-trip it probes the warm shared TT
coordinator-side for an EXACT entry deep enough to answer the subtree
outright — the cross-request amortization the ROADMAP's north star is
about.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from ..cache.sharedmem import SharedMemoryTT
from ..errors import ServeError
from ..eval.cache import SharedMemoryEvalCache
from ..games.base import Game, Position, RootedGame, SearchProblem, hash_key
from ..obs import live as _live
from ..parallel.multiproc import (
    WorkerCaches,
    _init_worker,
    _run_task,
    _TaskOutcome,
    _unpack_stats,
    build_worker_caches,
    preferred_start_method,
)
from ..search.stats import SearchStats
from ..search.transposition import Bound
from .api import SearchRequest
from .scheduler import IterationResult

__all__ = ["EnginePool", "PoolEngine", "ResolvedPosition"]

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class ResolvedPosition:
    """A request's position, resolved against its workload's game."""

    game: Game
    position: Position
    children: tuple[Position, ...]
    sort_below_root: int


class EnginePool:
    """One warm multiprocess pool shared by every request of a service.

    Args:
        n_workers: worker-process count.
        tt_mode: ``off``/``private``/``shared`` — ``shared`` (default)
            is the point of the service: one warm
            :class:`~repro.cache.sharedmem.SharedMemoryTT` spanning
            requests, so repeated and overlapping queries collapse to
            table hits.
        tt_capacity: slot budget for the shared table.
        eval_cache_mode: ``off``/``private``/``shared`` static-eval
            cache for the workers.
        eval_cache_capacity: entry budget for the eval cache.
        batch_eval: batch frontier evaluations in worker subtree
            searches.
        start_method: multiprocessing start method (default prefers
            ``fork``).
        trace_mode: span-ring mode installed in every worker.

    The pool accumulates run-independent accounting: per-worker busy
    seconds keyed by stable worker index (same convention as
    :class:`~repro.parallel.multiproc.MultiprocResult.per_worker`),
    merged :class:`~repro.search.stats.SearchStats` over every task
    result, and task/short-circuit counters.  :meth:`close` is
    idempotent and tears down the executor and both shared segments;
    the soak battery asserts nothing leaks past it.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        tt_mode: str = "shared",
        tt_capacity: int = 1 << 14,
        eval_cache_mode: str = "off",
        eval_cache_capacity: int = 1 << 14,
        batch_eval: bool = False,
        start_method: Optional[str] = None,
        trace_mode: str = _live.TRACE_OFF,
    ) -> None:
        if n_workers < 1:
            raise ServeError("need at least one worker process")
        if trace_mode not in _live.TRACE_MODES:
            raise ServeError(
                f"unknown trace mode {trace_mode!r}; expected one of {_live.TRACE_MODES}"
            )
        self._n_workers = n_workers
        self._trace_mode = trace_mode
        self._mp_ctx = multiprocessing.get_context(
            start_method or preferred_start_method()
        )
        self._caches: Optional[WorkerCaches] = build_worker_caches(
            self._mp_ctx,
            tt_mode=tt_mode,
            tt_capacity=tt_capacity,
            eval_cache_mode=eval_cache_mode,
            eval_cache_capacity=eval_cache_capacity,
            batch_eval=batch_eval,
        )
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=self._mp_ctx,
            initializer=_init_worker,
            initargs=(self._caches.tt_spec, self._caches.eval_spec, trace_mode),
        )
        self.stats = SearchStats()
        #: Stable worker index -> {"pid", "applied"} busy seconds; the
        #: service has no moot results, so there is no "wasted" split.
        self.per_worker: dict[int, dict[str, float]] = {}
        self._pid_index: dict[int, int] = {}
        self.counters: dict[str, int] = {
            "tasks_submitted": 0,
            "tasks_completed": 0,
            "tt_short_circuits": 0,
        }
        self._closed = False
        self._final_counters: dict[str, int] = {}

    # -- PersistentPool protocol -------------------------------------------

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise ServeError("engine pool is closed")
        return self._executor

    @property
    def shared_tt(self) -> Optional[SharedMemoryTT]:
        return self._caches.shared_tt if self._caches is not None else None

    @property
    def shared_eval(self) -> Optional[SharedMemoryEvalCache]:
        return self._caches.shared_eval if self._caches is not None else None

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def trace_mode(self) -> str:
        return self._trace_mode

    @property
    def closed(self) -> bool:
        return self._closed

    # -- task submission ----------------------------------------------------

    def submit_eval(
        self, problem: SearchProblem, alpha: float = NEG_INF, beta: float = POS_INF
    ) -> "Future[_TaskOutcome]":
        """Ship one full subtree search to a warm worker process."""
        future = self.executor.submit(_run_task, ("eval", problem, alpha, beta))
        self.counters["tasks_submitted"] += 1
        return future

    def note_outcome(self, outcome: _TaskOutcome) -> float:
        """Fold one task result into the pool's accounting; returns its value."""
        _, value, packed, t_start, t_end, worker_pid, _, _ = outcome
        self.stats.merge(_unpack_stats(packed))
        index = self._pid_index.setdefault(worker_pid, len(self._pid_index))
        split = self.per_worker.setdefault(
            index, {"pid": float(worker_pid), "applied": 0.0}
        )
        split["applied"] += max(0.0, t_end - t_start)
        self.counters["tasks_completed"] += 1
        return value

    def probe_exact(self, game: Game, position: Position, depth: int) -> Optional[float]:
        """Answer a full-window subtree from the warm table, if it can.

        Full-window searches only ever substitute EXACT entries (a
        bound cannot answer an open window), proven at least ``depth``
        deep — the same gate :func:`~repro.core.serial_er.er_search`
        applies at the subtree's root, so a short-circuit here returns
        exactly what the worker would have.
        """
        table = self.shared_tt
        if table is None:
            return None
        entry = table.probe(hash_key(game, position))
        if entry is None or entry.depth < depth or entry.bound is not Bound.EXACT:
            return None
        self.counters["tt_short_circuits"] += 1
        return entry.value

    def clear_caches(self) -> None:
        """Zero the shared segments — the benchmark's "cold" mode.

        Emptying the warm tables between requests isolates what cache
        warmth contributes versus pool persistence, without paying (or
        measuring) worker start-up.
        """
        tt = self.shared_tt
        if tt is not None:
            tt.clear()
        cache = self.shared_eval
        if cache is not None:
            cache.clear()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> dict[str, int]:
        """Shut down workers and destroy the shared segments; idempotent.

        Returns the pool's final counters (task counts, short-circuits,
        and the shared segments' cumulative hit/store totals).
        """
        if self._closed:
            return dict(self._final_counters)
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        final = dict(self.counters)
        if self._caches is not None:
            final.update(self._caches.teardown())
            self._caches = None
        self._final_counters = final
        return dict(final)

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolEngine:
    """Per-iteration deepening engine over an :class:`EnginePool`.

    Args:
        pool: the warm pool to fan out on.
        resolve: callback mapping a request to its
            :class:`ResolvedPosition` (the server caches game instances
            per workload and applies :func:`~repro.games.base.follow_path`).
        span_ring: optional :class:`~repro.obs.live.SpanRing` receiving
            one ``("serve", "iteration")`` span per iteration.
    """

    def __init__(
        self,
        pool: EnginePool,
        resolve: Callable[[SearchRequest], ResolvedPosition],
        *,
        span_ring: Optional[_live.SpanRing] = None,
    ) -> None:
        self._pool = pool
        self._resolve = resolve
        self._ring = span_ring

    async def run_iteration(
        self, request: SearchRequest, depth: int
    ) -> IterationResult:
        """Evaluate every root move to ``depth - 1``; argmax the negations.

        Mirrors one iteration of :meth:`repro.engine.GameEngine.choose`
        exactly: each child subtree is searched full-window as its own
        :class:`~repro.games.base.SearchProblem` rooted at the child,
        values are negated into the mover's frame, and ties resolve to
        the lowest move index.
        """
        t0 = time.perf_counter()
        resolved = self._resolve(request)
        loop = asyncio.get_running_loop()
        pending: list[tuple[int, "asyncio.Future[_TaskOutcome]"]] = []
        values: list[Optional[float]] = [None] * len(resolved.children)
        for index, child in enumerate(resolved.children):
            hit = self._pool.probe_exact(resolved.game, child, depth - 1)
            if hit is not None:
                values[index] = -hit
                continue
            problem = SearchProblem(
                game=RootedGame(resolved.game, child),
                depth=depth - 1,
                sort_below_root=resolved.sort_below_root,
            )
            future = self._pool.submit_eval(problem)
            pending.append((index, asyncio.wrap_future(future, loop=loop)))
        for index, wrapped in pending:
            outcome = await wrapped
            values[index] = -self._pool.note_outcome(outcome)
        iteration = [v for v in values if v is not None]
        assert len(iteration) == len(values), "every child resolved to a value"
        best_index = max(range(len(iteration)), key=iteration.__getitem__)
        if self._ring is not None:
            self._ring.record("serve", "iteration", t0, time.perf_counter())
        return IterationResult(
            move_index=best_index,
            value=iteration[best_index],
            per_move_values=tuple(iteration),
        )
