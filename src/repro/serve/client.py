"""A small asyncio client for the search service.

Used by the network-path tests and ``repro bench-traffic --connect``;
the in-process batteries talk to :meth:`SearchService.handle` directly.
The client supports pipelining: many :meth:`ServiceClient.search` calls
may be outstanding at once over the one connection, and replies are
matched back to callers by ``request_id`` (the server replies in
completion order, not submission order).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Optional

from ..errors import ServeError
from .api import SearchReply, SearchRequest, decode_line, encode_line

__all__ = ["ServiceClient"]


class ServiceClient:
    """One NDJSON connection to a :class:`~repro.serve.server.SearchService`.

    The client originates the trace context: a request submitted without
    a ``span_id`` gets a per-connection one (``c1``, ``c2``, ...), so
    every request this client sends is addressable in the server's
    request-scoped traces without callers doing anything.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._span_seq = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._write_lock = asyncio.Lock()
        self._read_lock = asyncio.Lock()
        self._pending: dict[str, "asyncio.Future[SearchReply]"] = {}
        self._stats: Optional["asyncio.Future[dict[str, object]]"] = None
        self._shutdown_ack: Optional["asyncio.Future[None]"] = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        return self

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def _require_open(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None:
            raise ServeError("client is not connected")
        return self._reader, self._writer

    async def _send(self, payload: dict[str, object]) -> None:
        _, writer = self._require_open()
        async with self._write_lock:
            writer.write(encode_line(payload))
            await writer.drain()

    async def _read_until(self, done: "asyncio.Future[object]") -> None:
        """Demultiplex incoming lines until ``done`` resolves.

        Only one caller reads the socket at a time; everyone else waits
        on the future their reply will resolve.  Replies for *other*
        callers encountered along the way are routed to their futures —
        that is what makes pipelined searches safe.
        """
        reader, _ = self._require_open()
        while not done.done():
            async with self._read_lock:
                # A reply routed to us while we waited for the lock means
                # another caller already read our line — nothing to do.
                if done.done():
                    break
                line = await reader.readline()
            if not line:
                raise ServeError("server closed the connection mid-reply")
            payload = decode_line(line)
            op = payload.get("op")
            if op == "reply":
                reply = SearchReply.from_wire(payload)
                waiter = self._pending.pop(reply.request_id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(reply)
            elif op == "stats":
                stats_waiter, self._stats = self._stats, None
                if stats_waiter is not None and not stats_waiter.done():
                    stats_waiter.set_result(
                        {k: v for k, v in payload.items() if k != "op"}
                    )
            elif op == "shutdown-ack":
                ack_waiter, self._shutdown_ack = self._shutdown_ack, None
                if ack_waiter is not None and not ack_waiter.done():
                    ack_waiter.set_result(None)
            else:
                raise ServeError(f"unexpected server message op {op!r}")

    async def search(self, request: SearchRequest) -> SearchReply:
        """Submit one request; awaits its reply (pipelining-safe)."""
        if request.request_id in self._pending:
            raise ServeError(
                f"request_id {request.request_id!r} already in flight"
            )
        if not request.span_id:
            self._span_seq += 1
            request = replace(request, span_id=f"c{self._span_seq}")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SearchReply]" = loop.create_future()
        self._pending[request.request_id] = future
        await self._send(request.to_wire())
        await self._read_until(future)
        return future.result()

    async def stats(self) -> dict[str, object]:
        """Fetch the server's live counter snapshot."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[dict[str, object]]" = loop.create_future()
        self._stats = future
        await self._send({"op": "stats"})
        await self._read_until(future)
        return future.result()

    async def shutdown_server(self) -> None:
        """Ask the server to drain and stop; returns at the ack."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        self._shutdown_ack = future
        await self._send({"op": "shutdown"})
        await self._read_until(future)
        future.result()
