"""The asyncio search service: one warm pool answering many users.

:class:`SearchService` ties the serve stack together: a TCP listener
speaking the :mod:`~repro.serve.api` NDJSON protocol, the
:class:`~repro.serve.scheduler.RequestScheduler` for admission /
priorities / deadlines, and one :class:`~repro.serve.pool.EnginePool`
whose warm workers and shared caches span every request from every
connection.  The observability layer is mounted live: each request and
deepening iteration lands as a span in the service's
:class:`~repro.obs.live.SpanRing`, the scheduler's queue-depth and
latency metrics accumulate in a :class:`~repro.serve.scheduler.ServeMetrics`
registry, and an optional :class:`~repro.obs.promtext.MetricsServer`
scrapes that registry over HTTP while searches run.

Shutdown is graceful by default: stop accepting, shed new arrivals with
an explicit ``shutdown`` reply, finish every admitted request, then
tear the pool and its shared-memory segments down.  The soak battery
holds the service to that: after :meth:`SearchService.shutdown`, no
worker process, shm segment, or listening socket survives, and the
scheduler's conservation laws balance.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..errors import ReproError, ServeError
from ..games.base import Game, follow_path
from ..obs import live as _live
from ..obs import reqtrace as _reqtrace
from ..obs.promtext import MetricsServer
from ..workloads.suite import table3_suite
from .api import (
    STATUS_ERROR,
    SearchReply,
    SearchRequest,
    decode_line,
    encode_line,
)
from .pool import EnginePool, PoolEngine, ResolvedPosition
from .scheduler import RequestScheduler, ServeMetrics

__all__ = ["SearchService", "ServeConfig", "ServeWorkload", "suite_catalog"]


@dataclass(frozen=True)
class ServeWorkload:
    """One named position source the service can search.

    ``make_game`` is called once per service lifetime; the instance is
    cached so repeated requests against the same workload share node
    caches and Zobrist state.  ``sort_below_root`` is handed to every
    subtree search, matching how
    :class:`~repro.engine.EngineConfig.sort_below_root` flows into
    :meth:`~repro.engine.GameEngine.choose`.
    """

    name: str
    make_game: Callable[[], Game]
    sort_below_root: int
    default_depth: int


def suite_catalog(scale: str = "reduced") -> dict[str, ServeWorkload]:
    """The Table 3 suite (``R1``..``O3``) as the service's default catalog."""
    catalog: dict[str, ServeWorkload] = {}
    for name, spec in table3_suite(scale).items():
        catalog[name] = ServeWorkload(
            name=name,
            make_game=spec.make_game,
            sort_below_root=spec.sort_below_root,
            default_depth=spec.search_depth,
        )
    return catalog


@dataclass(frozen=True)
class ServeConfig:
    """Service shape: listener, pool, scheduler, and observability knobs.

    Attributes:
        host / port: TCP bind address; port 0 picks a free one (read
            :attr:`SearchService.address` after :meth:`SearchService.start`).
        n_workers: persistent worker processes in the engine pool.
        max_concurrency: requests deepening at once (scheduler slots).
        queue_limit: waiting requests before load shedding begins.
        tt_mode / tt_capacity: the pool's shared transposition table.
        eval_cache_mode / eval_cache_capacity: the pool's shared static
            evaluation cache.
        batch_eval: batch frontier evaluations in worker searches.
        scale: suite scale for the default catalog.
        max_depth_limit: hard per-request ``max_depth`` ceiling; deeper
            asks are answered with an ``error`` reply before admission.
        trace_mode: worker span-ring mode
            (:data:`repro.obs.live.TRACE_MODES`).
        span_capacity: the service's own span ring size.
        metrics_port: mount the Prometheus text endpoint here (``None``
            disables; 0 picks a free port).
        trace_capacity: per-request :class:`~repro.obs.reqtrace.RequestTrace`
            records kept (oldest evicted first).
        slo_targets: per-priority-class latency targets in seconds, as
            ``(priority, seconds)`` pairs; ``None`` disables the SLO
            gauges (the per-class histograms stay on).
        slo_objective: fraction of requests expected under target —
            0.99 leaves a 1 % error budget.
        stall_overrun_factor: flight-record a request once its elapsed
            time exceeds ``deadline_s * factor`` (0 disables; requires
            ``flight_dir``).
        flight_dir: directory receiving stall flight records.
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_workers: int = 2
    max_concurrency: int = 2
    queue_limit: int = 32
    tt_mode: str = "shared"
    tt_capacity: int = 1 << 14
    eval_cache_mode: str = "off"
    eval_cache_capacity: int = 1 << 14
    batch_eval: bool = False
    scale: str = "reduced"
    max_depth_limit: int = 16
    trace_mode: str = _live.TRACE_OFF
    span_capacity: int = _live.DEFAULT_RING_CAPACITY
    metrics_port: Optional[int] = None
    trace_capacity: int = 512
    slo_targets: Optional[tuple[tuple[int, float], ...]] = (
        (0, 5.0),
        (1, 1.0),
        (2, 0.5),
    )
    slo_objective: float = 0.99
    stall_overrun_factor: float = 0.0
    flight_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_depth_limit < 1:
            raise ServeError("max_depth_limit must be at least 1")
        if self.trace_capacity < 1:
            raise ServeError("trace_capacity must be at least 1")
        if self.stall_overrun_factor < 0.0:
            raise ServeError("stall_overrun_factor must be non-negative")
        if self.stall_overrun_factor > 0.0 and self.flight_dir is None:
            raise ServeError("stall_overrun_factor requires flight_dir")
        # Fail at construction, not at the first over-target request.
        self.slo_policy()

    def slo_policy(self) -> Optional[_reqtrace.SLOPolicy]:
        """The configured :class:`~repro.obs.reqtrace.SLOPolicy`, if any."""
        if self.slo_targets is None:
            return None
        return _reqtrace.SLOPolicy(
            targets=self.slo_targets, objective=self.slo_objective
        )


class SearchService:
    """The serving loop: accept, schedule, search, reply, drain.

    Args:
        config: service shape.
        catalog: named workloads to serve; defaults to the Table 3
            suite at ``config.scale``.  Tests inject custom catalogs to
            point the service at arbitrary games (the parity battery
            serves the backend-parity grid this way).

    Use as an async context manager, or call :meth:`start` /
    :meth:`shutdown` explicitly.  :meth:`handle` is the in-process
    entry (no socket) the traffic benchmark and batteries drive;
    network clients get byte-identical behavior through
    :meth:`repro.serve.client.ServiceClient`.
    """

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        *,
        catalog: Optional[Mapping[str, ServeWorkload]] = None,
    ) -> None:
        self.config = config
        self._catalog: dict[str, ServeWorkload] = dict(
            catalog if catalog is not None else suite_catalog(config.scale)
        )
        self._games: dict[str, Game] = {}
        self.metrics = ServeMetrics(slo=config.slo_policy())
        self.ring = _live.SpanRing(config.span_capacity)
        self.traces = _reqtrace.TraceStore(config.trace_capacity)
        self._flight: Optional[_reqtrace.FlightRecorder] = None
        if config.stall_overrun_factor > 0.0 and config.flight_dir is not None:
            self._flight = _reqtrace.FlightRecorder(
                config.flight_dir, overrun_factor=config.stall_overrun_factor
            )
        self.pool: Optional[EnginePool] = None
        self.scheduler: Optional[RequestScheduler] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[MetricsServer] = None
        self._done: Optional[asyncio.Event] = None
        self._conn_tasks: set["asyncio.Task[None]"] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        self._started = False
        self._closed = False
        #: Pool/segment counters captured at teardown, for post-mortems.
        self.final_counters: dict[str, int] = {}

    @property
    def catalog(self) -> dict[str, ServeWorkload]:
        """The served workloads, by name (a copy; mutations don't apply)."""
        return dict(self._catalog)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "SearchService":
        """Build the pool, open the listener, mount the metrics endpoint."""
        if self._started:
            raise ServeError("service already started")
        self._started = True
        cfg = self.config
        self._done = asyncio.Event()
        self.pool = EnginePool(
            cfg.n_workers,
            tt_mode=cfg.tt_mode,
            tt_capacity=cfg.tt_capacity,
            eval_cache_mode=cfg.eval_cache_mode,
            eval_cache_capacity=cfg.eval_cache_capacity,
            batch_eval=cfg.batch_eval,
            trace_mode=cfg.trace_mode,
        )
        engine = PoolEngine(self.pool, self._resolve, span_ring=self.ring)
        # One clock end to end: the scheduler stamps with the same
        # wall_clock as handle()'s arrival stamp, which is what makes
        # the per-request latency decomposition conserve exactly.
        self.scheduler = RequestScheduler(
            engine,
            max_concurrency=cfg.max_concurrency,
            queue_limit=cfg.queue_limit,
            clock=_live.wall_clock,
            metrics=self.metrics,
            trace_sink=self.traces.add,
            stall_overrun_factor=cfg.stall_overrun_factor,
            stall_sink=self._flight_record if self._flight is not None else None,
        )
        self._server = await asyncio.start_server(
            self._on_connection, host=cfg.host, port=cfg.port
        )
        if cfg.metrics_port is not None:
            self._metrics_server = MetricsServer(
                self.metrics.collect, port=cfg.metrics_port, host=cfg.host
            ).start()
        return self

    async def __aenter__(self) -> "SearchService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.shutdown()

    @property
    def address(self) -> tuple[str, int]:
        """The listener's bound (host, port)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("service is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    @property
    def metrics_url(self) -> Optional[str]:
        return None if self._metrics_server is None else self._metrics_server.url

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes (any trigger)."""
        if self._done is None:
            raise ServeError("service was never started")
        await self._done.wait()

    async def shutdown(self) -> None:
        """Graceful stop: close the door, drain admitted work, tear down.

        Idempotent.  Order matters: the listener closes first (no new
        connections), the scheduler drains (in-flight requests finish
        and get their replies; queued new arrivals shed explicitly),
        and only then do the pool's workers and shared segments go
        away.
        """
        if self._closed:
            if self._done is not None:
                await self._done.wait()
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.scheduler is not None:
            await self.scheduler.drain()
        # Replies for drained work are out; hang up on idle clients so
        # their handler tasks finish before the loop does (3.11's
        # Server.wait_closed does not reap active connection handlers).
        for writer in list(self._conn_writers):
            writer.close()
        for task in list(self._conn_tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self.pool is not None:
            self.final_counters = self.pool.close()
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
        if self._done is not None:
            self._done.set()

    def request_shutdown(self) -> None:
        """Trigger :meth:`shutdown` from protocol handlers (non-blocking)."""
        if self._shutdown_task is None and not self._closed:
            loop = asyncio.get_running_loop()
            self._shutdown_task = loop.create_task(self.shutdown())

    # -- the search path ----------------------------------------------------

    def _game(self, workload: ServeWorkload) -> Game:
        game = self._games.get(workload.name)
        if game is None:
            game = workload.make_game()
            self._games[workload.name] = game
        return game

    def _resolve(self, request: SearchRequest) -> ResolvedPosition:
        """Map a wire request onto a concrete position; raises ServeError."""
        workload = self._catalog.get(request.workload)
        if workload is None:
            raise ServeError(
                f"unknown workload {request.workload!r}; "
                f"serving {sorted(self._catalog)}"
            )
        if request.max_depth > self.config.max_depth_limit:
            raise ServeError(
                f"max_depth {request.max_depth} exceeds the service limit "
                f"{self.config.max_depth_limit}"
            )
        game = self._game(workload)
        position = follow_path(game, list(request.path))
        children = tuple(game.children(position))
        if not children:
            raise ServeError("no legal moves at the requested position")
        return ResolvedPosition(
            game=game,
            position=position,
            children=children,
            sort_below_root=workload.sort_below_root,
        )

    async def handle(self, request: SearchRequest) -> SearchReply:
        """Run one request through the full admission/search path.

        Invalid requests (unknown workload, bad path, over-limit depth)
        are answered with an ``error`` reply *before* admission, so
        they never occupy a scheduler slot.
        """
        if self.scheduler is None:
            raise ServeError("service was never started")
        # Arrival stamp first: pre-admission resolution is part of the
        # decomposition's ``admission`` stage, on the scheduler's clock.
        arrived_at = _live.wall_clock()
        try:
            self._resolve(request)
        except ReproError as error:
            return SearchReply(
                request_id=request.request_id,
                status=STATUS_ERROR,
                detail=str(error),
            )
        reply = await self.scheduler.submit(request, arrived_at=arrived_at)
        name = _live.tag_span_name(
            "request", _reqtrace.span_tag(request.request_id, request.span_id or "root")
        )
        self.ring.record("serve", name, arrived_at, _live.wall_clock())
        return reply

    def _flight_record(self, request: SearchRequest, elapsed_s: float) -> None:
        """Stall-watchdog sink: snapshot the live rings for one request."""
        recorder = self._flight
        if recorder is None:
            return
        worker_spans: tuple[_live.WorkerSpan, ...] = ()
        pids: dict[int, int] = {}
        if self.pool is not None and not self.pool.closed:
            worker_spans = self.pool.merged_spans()
            pids = self.pool.span_pids()
        recorder.record(
            request_id=request.request_id,
            span_id=request.span_id or "root",
            deadline_s=request.deadline_s,
            elapsed_s=elapsed_s,
            service_spans=self.ring.peek(),
            worker_spans=worker_spans,
            pids=pids,
        )

    def stats_snapshot(self) -> dict[str, object]:
        """Live counters: scheduler conservation set, pool work, spans."""
        scheduler = self.scheduler
        pool = self.pool
        snapshot: dict[str, object] = {
            "in_flight": 0 if scheduler is None else scheduler.in_flight,
        }
        if scheduler is not None:
            snapshot.update(
                {name: count for name, count in scheduler.counters.items()}
            )
        if pool is not None and not pool.closed:
            snapshot["pool"] = dict(pool.counters)
        elif self.final_counters:
            snapshot["pool"] = dict(self.final_counters)
        dropped, _ = self.ring.snapshot_counters()
        snapshot["spans_recorded"] = self.ring.recorded
        snapshot["spans_dropped"] = dropped
        snapshot["traces_stored"] = len(self.traces)
        return snapshot

    # -- the wire -----------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: pipelined requests, per-reply ordering.

        Searches run concurrently (a slow deep search does not block a
        later shallow one on the same connection); a per-connection
        lock serializes reply *writes* so frames never interleave.
        """
        write_lock = asyncio.Lock()
        searches: set["asyncio.Task[None]"] = set()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)

        async def send(payload: Mapping[str, object]) -> None:
            async with write_lock:
                writer.write(encode_line(payload))
                await writer.drain()

        async def run_search(request: SearchRequest) -> None:
            reply = await self.handle(request)
            await send(reply.to_wire())

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload: dict[str, object] = {}
                try:
                    payload = decode_line(line)
                    op = payload.get("op")
                    if op == "search":
                        request = SearchRequest.from_wire(payload)
                    elif op == "stats":
                        await send({"op": "stats", **self.stats_snapshot()})
                        continue
                    elif op == "shutdown":
                        await send({"op": "shutdown-ack"})
                        self.request_shutdown()
                        continue
                    else:
                        raise ServeError(f"unknown op {op!r}")
                except ReproError as error:
                    raw_id = payload.get("request_id")
                    await send(
                        SearchReply(
                            request_id=raw_id if isinstance(raw_id, str) and raw_id else "?",
                            status=STATUS_ERROR,
                            detail=str(error),
                        ).to_wire()
                    )
                    continue
                task = asyncio.get_running_loop().create_task(run_search(request))
                searches.add(task)
                task.add_done_callback(searches.discard)
            for task in list(searches):
                await task
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; in-flight work still resolves
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
