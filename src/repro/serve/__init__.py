"""Search-as-a-service: concurrent "best move" queries over one warm pool.

The engines answer one search at a time; the ROADMAP's north star is a
system serving heavy traffic from many users.  This package is that
layer, stdlib-only like the rest of the repo:

* :mod:`.api` — the newline-delimited-JSON wire protocol
  (:class:`~repro.serve.api.SearchRequest` /
  :class:`~repro.serve.api.SearchReply`);
* :mod:`.scheduler` — asyncio request scheduler: admission control,
  priority-aware load shedding with explicit rejections, per-request
  deadlines over iterative deepening (anytime best-so-far answers), and
  graceful drain;
* :mod:`.pool` — the persistent engine pool: one long-lived
  multiprocess worker pool with one warm
  :class:`~repro.cache.sharedmem.SharedMemoryTT` and shared eval cache
  spanning requests and users, plus the per-iteration fan-out engine;
* :mod:`.server` — the asyncio TCP server tying those together, with
  per-request spans, queue/latency metrics, and the Prometheus text
  endpoint mounted on live service metrics;
* :mod:`.client` — a small asyncio client (tests, ``bench-traffic``);
* :mod:`.traffic` — deterministic synthetic traffic generation and the
  requests/s + latency-percentile report the run ledger records.
"""

from .api import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    SearchReply,
    SearchRequest,
)
from .pool import EnginePool, PoolEngine, ResolvedPosition
from .scheduler import (
    SLO_LATENCY_BOUNDS,
    DeepeningEngine,
    IterationResult,
    RequestScheduler,
    ServeMetrics,
)
from .server import SearchService, ServeConfig, ServeWorkload, suite_catalog
from .traffic import (
    STAGE_ORDER,
    TrafficReport,
    TrafficSpec,
    generate_trace,
    latency_fields,
    render_decomposition,
    run_trace,
    stage_samples,
    stage_stats,
)

__all__ = [
    "SLO_LATENCY_BOUNDS",
    "STAGE_ORDER",
    "latency_fields",
    "render_decomposition",
    "stage_samples",
    "stage_stats",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "SearchReply",
    "SearchRequest",
    "EnginePool",
    "PoolEngine",
    "ResolvedPosition",
    "DeepeningEngine",
    "IterationResult",
    "RequestScheduler",
    "ServeMetrics",
    "SearchService",
    "ServeConfig",
    "ServeWorkload",
    "suite_catalog",
    "TrafficReport",
    "TrafficSpec",
    "generate_trace",
    "run_trace",
]
