"""Zobrist-keyed static-evaluation caches for all three ER backends.

A transposition table caches *search results* (value, depth, bound); an
evaluation cache caches something much cheaper to reason about: the
static evaluator's value of a position, keyed by the same 64-bit Zobrist
keys (:func:`repro.games.base.hash_key`).  Since a static value has no
window, depth, or bound attached, every hit is unconditionally usable —
which is why a leaf-heavy workload hits far more often in the eval cache
than in the TT, and why sharing it across workers is almost pure win.

Storage piggybacks on :class:`~repro.search.transposition.TranspositionTable`
stripes holding ``TTEntry(value, 0, EXACT, None)`` records, so bounded
capacity, LRU recency, and counters are inherited rather than
reimplemented; the float-only ``probe``/``store`` surface here keeps
callers from ever seeing the entry wrapper.

The variant structure mirrors :mod:`repro.cache.striped` exactly:

* :class:`StripedEvalCache` — direct thread-safe ``probe``/``store``;
  the threaded backend's serial subtrees and the stress tests use it.
* :class:`SimStripedEvalCache` — adds ``probe_op``/``store_op``
  generator fragments that contend for per-stripe
  :class:`~repro.sim.locks.SimLock` objects and charge
  ``CostModel.eval_cache_probe``/``eval_cache_store``, so the simulator
  accounts cache traffic (and stripe contention) exactly like TT
  traffic.
* :class:`WorkerLocalEvalCache` — the ``--eval-cache private``
  baseline: per-worker caches, same costs, no contention, no sharing.
* :class:`SharedMemoryEvalCache` — a float-surface adapter over
  :class:`~repro.cache.sharedmem.SharedMemoryTT` for worker processes.

The locking discipline is inherited from the TT module docstring: real
mutual exclusion comes from the internal per-stripe ``threading.Lock``
(a leaf lock), SimLocks exist for simulated-time accounting only, and op
generators must be issued with no heap or tree lock held.
"""

from __future__ import annotations

import threading
from typing import Generator, Optional, Sequence, Union

from ..cache.sharedmem import SharedMemoryTT, TTHandle
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..errors import SearchError
from ..obs import events as _obs
from ..search.transposition import Bound, TranspositionTable, TTEntry
from ..sim.locks import SimLock
from ..sim.ops import Acquire, Compute, Op, Release
from ..verify import trace as _trace

#: Generator type of a cache op: yields simulator ops, returns the
#: cached value (or ``None`` for a miss / for stores).
EvalProbeOp = Generator[Op, None, Optional[float]]
EvalStoreOp = Generator[Op, None, None]

#: Accepted values of every ``--eval-cache`` flag and config field.
EVAL_CACHE_MODES = ("off", "private", "shared")


def _entry(value: float) -> TTEntry:
    """A static value wrapped for storage: depth 0, EXACT, no move."""
    return TTEntry(value, 0, Bound.EXACT, None)


class StripedEvalCache:
    """Concurrent evaluation cache: N independently locked stripes.

    Args:
        capacity: total entry budget, split evenly across stripes.
        n_stripes: independent partitions; keys land on ``key % n_stripes``.
    """

    def __init__(self, capacity: int = 1 << 16, n_stripes: int = 8):
        if n_stripes < 1:
            raise SearchError("need at least one stripe")
        if capacity < 1:
            raise SearchError("cache capacity must be positive")
        self.n_stripes = n_stripes
        self.capacity = capacity
        per_stripe = max(1, capacity // n_stripes)
        self._tables = tuple(TranspositionTable(capacity=per_stripe) for _ in range(n_stripes))
        self._real_locks = tuple(threading.Lock() for _ in range(n_stripes))
        #: Times an op generator found its stripe's SimLock already held.
        self.contended = 0

    def stripe_of(self, key: int) -> int:
        return key % self.n_stripes

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    def view(self, pid: int) -> "StripedEvalCache":
        """The per-worker handle — every worker shares this one cache."""
        return self

    def probe(self, key: int) -> Optional[float]:
        index = self.stripe_of(key)
        with self._real_locks[index]:
            if _trace.CURRENT is not None:
                # Same discipline as StripedTT: a probe refreshes LRU
                # order, so it is a WRITE under the stripe lock.
                _trace.on_acquire(f"eval-stripe-{index}")
                _trace.on_access(f"eval.stripe{index}", _trace.WRITE)
                entry = self._tables[index].probe(key)
                _trace.on_release(f"eval-stripe-{index}")
            else:
                entry = self._tables[index].probe(key)
        return None if entry is None else entry.value

    def store(self, key: int, value: float) -> None:
        index = self.stripe_of(key)
        with self._real_locks[index]:
            if _trace.CURRENT is not None:
                _trace.on_acquire(f"eval-stripe-{index}")
                _trace.on_access(f"eval.stripe{index}", _trace.WRITE)
                self._tables[index].store(key, _entry(value))
                _trace.on_release(f"eval-stripe-{index}")
            else:
                self._tables[index].store(key, _entry(value))

    def clear(self) -> None:
        for index, table in enumerate(self._tables):
            with self._real_locks[index]:
                table.clear()

    @property
    def hits(self) -> int:
        return sum(table.hits for table in self._tables)

    @property
    def misses(self) -> int:
        return sum(table.misses for table in self._tables)

    @property
    def stores(self) -> int:
        return sum(table.stores for table in self._tables)

    @property
    def evictions(self) -> int:
        return sum(table.evictions for table in self._tables)

    def counter_snapshot(self) -> dict[str, int]:
        """Counters in the shape the drivers' ``extras`` dicts carry."""
        return {
            "eval_hits": self.hits,
            "eval_misses": self.misses,
            "eval_stores": self.stores,
            "eval_evictions": self.evictions,
            "eval_contended": self.contended,
        }


class SimStripedEvalCache(StripedEvalCache):
    """:class:`StripedEvalCache` whose ops run on the simulated clock.

    ``probe_op``/``store_op`` are worker-generator fragments: call them
    with ``yield from`` and no locks held.  Direct ``probe``/``store``
    calls (serial subtrees, ordering batches) stay silent on the bus but
    still land in the cache counters — the TT convention.
    """

    def __init__(
        self,
        capacity: int = 1 << 16,
        n_stripes: int = 8,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        super().__init__(capacity, n_stripes)
        self.cost_model = cost_model
        self._sim_locks = tuple(SimLock(f"eval-stripe-{i}") for i in range(n_stripes))

    def view(self, pid: int) -> "SimStripedEvalCache":
        return self

    def _note_contention(self, index: int, op: str) -> None:
        if self._sim_locks[index].holder is not None:
            self.contended += 1
            if _obs.CURRENT is not None:
                _obs.CURRENT.emit(_obs.EV_EVAL_CONTENTION, stripe=index, op=op)

    def probe_op(self, key: int) -> EvalProbeOp:
        index = self.stripe_of(key)
        lock = self._sim_locks[index]
        self._note_contention(index, "probe")
        yield Acquire(lock)
        yield Compute(self.cost_model.eval_cache_probe, tag="eval_cache_probe")
        with self._real_locks[index]:
            entry = self._tables[index].probe(key)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_EVAL_PROBE, stripe=index, hit=entry is not None)
        yield Release(lock)
        return None if entry is None else entry.value

    def store_op(self, key: int, value: float) -> EvalStoreOp:
        index = self.stripe_of(key)
        lock = self._sim_locks[index]
        self._note_contention(index, "store")
        yield Acquire(lock)
        yield Compute(self.cost_model.eval_cache_store, tag="eval_cache_store")
        table = self._tables[index]
        with self._real_locks[index]:
            evictions_before = table.evictions
            table.store(key, _entry(value))
            evicted = table.evictions > evictions_before
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_EVAL_STORE, stripe=index, evicted=evicted)
        yield Release(lock)


class _PrivateEvalView:
    """One worker's private cache plus cost-charging op wrappers.

    No locks anywhere: only its owning worker ever touches it.
    """

    def __init__(self, capacity: int, cost_model: CostModel, pid: int):
        self.pid = pid
        self._table = TranspositionTable(capacity=capacity)
        self._cost_model = cost_model

    def __len__(self) -> int:
        return len(self._table)

    @property
    def table(self) -> TranspositionTable:
        return self._table

    def probe(self, key: int) -> Optional[float]:
        entry = self._table.probe(key)
        return None if entry is None else entry.value

    def store(self, key: int, value: float) -> None:
        self._table.store(key, _entry(value))

    def probe_op(self, key: int) -> EvalProbeOp:
        yield Compute(self._cost_model.eval_cache_probe, tag="eval_cache_probe")
        entry = self._table.probe(key)
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(_obs.EV_EVAL_PROBE, stripe=-1, hit=entry is not None)
        return None if entry is None else entry.value

    def store_op(self, key: int, value: float) -> EvalStoreOp:
        yield Compute(self._cost_model.eval_cache_store, tag="eval_cache_store")
        evictions_before = self._table.evictions
        self._table.store(key, _entry(value))
        if _obs.CURRENT is not None:
            _obs.CURRENT.emit(
                _obs.EV_EVAL_STORE, stripe=-1, evicted=self._table.evictions > evictions_before
            )


class WorkerLocalEvalCache:
    """Per-worker private caches — the ``--eval-cache private`` baseline.

    Args:
        capacity: entry budget **per worker** (not split; same rationale
            as :class:`~repro.cache.striped.WorkerLocalTT`).
    """

    def __init__(self, capacity: int = 1 << 16, *, cost_model: CostModel = DEFAULT_COST_MODEL):
        if capacity < 1:
            raise SearchError("cache capacity must be positive")
        self.capacity = capacity
        self.cost_model = cost_model
        self.contended = 0  # private caches never contend; kept for shape
        self._views: dict[int, _PrivateEvalView] = {}

    def view(self, pid: int) -> _PrivateEvalView:
        return self._views.setdefault(pid, _PrivateEvalView(self.capacity, self.cost_model, pid))

    def __len__(self) -> int:
        return sum(len(view) for view in self._views.values())

    def clear(self) -> None:
        for view in self._views.values():
            view.table.clear()

    @property
    def hits(self) -> int:
        return sum(view.table.hits for view in self._views.values())

    @property
    def misses(self) -> int:
        return sum(view.table.misses for view in self._views.values())

    @property
    def stores(self) -> int:
        return sum(view.table.stores for view in self._views.values())

    @property
    def evictions(self) -> int:
        return sum(view.table.evictions for view in self._views.values())

    def counter_snapshot(self) -> dict[str, int]:
        return {
            "eval_hits": self.hits,
            "eval_misses": self.misses,
            "eval_stores": self.stores,
            "eval_evictions": self.evictions,
            "eval_contended": 0,
        }


class SharedMemoryEvalCache:
    """Float-surface adapter over a cross-process :class:`SharedMemoryTT`.

    Worker processes cannot share Python dict stripes, so the multiproc
    backend stores static values as depth-0 EXACT entries in a
    shared-memory table.  Lifecycle (create / ``handle`` / ``attach`` /
    ``close`` / ``unlink``) passes straight through to the wrapped table.
    """

    def __init__(
        self,
        capacity: int = 1 << 14,
        n_stripes: int = 8,
        *,
        _table: Optional[SharedMemoryTT] = None,
    ):
        self._table = _table if _table is not None else SharedMemoryTT(capacity, n_stripes)
        # Live-ring spans from this table describe eval-cache traffic.
        self._table.span_cat = "eval"

    def handle(self) -> TTHandle:
        return self._table.handle()

    @property
    def locks(self) -> Sequence[object]:
        return self._table.locks

    @classmethod
    def attach(cls, handle: TTHandle, locks: Sequence[object]) -> "SharedMemoryEvalCache":
        return cls(_table=SharedMemoryTT.attach(handle, locks))

    def close(self) -> None:
        self._table.close()

    def unlink(self) -> None:
        self._table.unlink()

    def probe(self, key: int) -> Optional[float]:
        entry = self._table.probe(key)
        return None if entry is None else entry.value

    def store(self, key: int, value: float) -> None:
        self._table.store(key, _entry(value))

    def clear(self) -> None:
        """Empty every stripe (counters keep accumulating)."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def counter_snapshot(self) -> dict[str, int]:
        return {
            "eval_hits": self._table.hits,
            "eval_misses": self._table.misses,
            "eval_stores": self._table.stores,
            "eval_evictions": self._table.evictions,
            "eval_collisions": self._table.collisions,
        }


#: What the sim/threaded drivers accept as an evaluation cache.
AnyEvalCache = Union[SimStripedEvalCache, WorkerLocalEvalCache]


def make_eval_cache(
    mode: str,
    *,
    capacity: int = 1 << 16,
    n_stripes: int = 8,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[AnyEvalCache]:
    """Build the cache for one ``--eval-cache`` mode (``None`` for ``off``)."""
    if mode == "off":
        return None
    if mode == "private":
        return WorkerLocalEvalCache(capacity, cost_model=cost_model)
    if mode == "shared":
        return SimStripedEvalCache(capacity, n_stripes, cost_model=cost_model)
    raise SearchError(
        f"unknown eval-cache mode {mode!r}; expected one of {EVAL_CACHE_MODES}"
    )
