"""Batched static evaluation with an optional Zobrist-keyed value cache.

:class:`Evaluator` is the direct-call (serial) form of the batched-eval
subsystem: serial ER and the parallel drivers' serial subtrees call it
synchronously, charging costs through :class:`~repro.search.stats.SearchStats`
hooks so simulated accounting stays exact — ``batch_eval_base`` +
``batch_eval_per_leaf`` per batched miss instead of a full
``static_eval`` per leaf, plus ``eval_cache_probe``/``eval_cache_store``
when a cache view is attached.  The parallel leaf path uses the op
generators on the cache variants directly (:mod:`repro.eval.cache`); this
class never yields simulator ops.

Value identity is load-bearing: ``batch_eval`` is pinned element-wise
to the scalar evaluator by ``tests/test_eval_differential.py``, so
switching batching (or the cache) on cannot change any root value —
only the cost accounting and the schedule.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from ..costmodel import CostModel
from ..games.base import Game, Position, batch_eval, hash_key
from ..obs import events as _obs
from ..search.stats import SearchStats

#: Cost-part labels carried on Compute ops and whatif primitives.
PART_BATCH = "batch_eval"
PART_CACHE = "eval_cache"


class EvalCacheView(Protocol):
    """What the evaluator needs from a cache: a float by Zobrist key.

    Satisfied by every :mod:`repro.eval.cache` variant and the per-worker
    views they hand out.  Parameters are positional-only so
    implementations may name the key whatever fits.
    """

    def probe(self, key: int, /) -> Optional[float]: ...

    def store(self, key: int, value: float, /) -> None: ...


class Evaluator:
    """Batched, optionally cached static evaluation for one game.

    Args:
        game: the evaluation substrate; its ``batch_eval`` seam (or the
            generic scalar-loop fallback) produces the values.
        cost_model: source of the batch and cache charge rates.
        cache: optional value-cache view; when given, every position is
            probed first and only misses are batch-evaluated and stored.
    """

    def __init__(
        self,
        game: Game,
        cost_model: CostModel,
        cache: Optional[EvalCacheView] = None,
    ):
        self.game = game
        self.cost_model = cost_model
        self.cache = cache

    def rebind(self, game: Game) -> "Evaluator":
        """The same evaluator against another game view (same cache).

        Serial subtrees search a :class:`~repro.games.base.RootedGame`
        wrapper; since it forwards ``hash_key`` and ``batch_eval`` to the
        base game, rebinding preserves key and value identity.
        """
        return Evaluator(game, self.cost_model, self.cache)

    def frontier_values(
        self, positions: Sequence[Position], stats: SearchStats
    ) -> tuple[list[float], tuple[tuple[str, float], ...]]:
        """Evaluate a batch of frontier positions, charging ``stats``.

        Returns ``(values, parts)`` where ``values`` matches the scalar
        evaluator element-wise and ``parts`` splits the charged cost into
        its primitives (``eval_cache``, ``batch_eval``) for critical-path
        attribution; the part weights sum to exactly what was charged.
        """
        n = len(positions)
        if n == 0:
            return [], ()
        values: list[Optional[float]] = [None] * n
        keys: list[int] = []
        cache_cost = 0.0
        if self.cache is not None:
            miss_rows: list[int] = []
            for row, position in enumerate(positions):
                key = hash_key(self.game, position)
                keys.append(key)
                hit = self.cache.probe(key)
                cache_cost += stats.on_eval_probe(self.cost_model, hit=hit is not None)
                values[row] = hit
                if hit is None:
                    miss_rows.append(row)
        else:
            miss_rows = list(range(n))
        batch_cost = 0.0
        if miss_rows:
            missed = batch_eval(self.game, [positions[row] for row in miss_rows])
            batch_cost = stats.on_batch_eval(len(miss_rows), self.cost_model)
            if _obs.CURRENT is not None:
                _obs.CURRENT.emit(_obs.EV_EVAL_BATCH, n=len(miss_rows))
            for row, value in zip(miss_rows, missed):
                values[row] = value
                if self.cache is not None:
                    self.cache.store(keys[row], value)
                    cache_cost += stats.on_eval_store(self.cost_model)
        parts = tuple(
            (name, weight)
            for name, weight in ((PART_CACHE, cache_cost), (PART_BATCH, batch_cost))
            if weight > 0
        )
        # Every slot was either a cache hit or filled from the batch.
        return [value for value in values if value is not None], parts

    def single_value(self, position: Position, stats: SearchStats) -> float:
        """Evaluate one position (a batch of one; cache applies as usual)."""
        values, _ = self.frontier_values([position], stats)
        return values[0]
