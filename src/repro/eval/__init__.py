"""Batched static evaluation and the Zobrist-keyed evaluation cache.

One value seam (:func:`repro.games.base.batch_eval`), one charging model
(``CostModel.batch_eval_base``/``batch_eval_per_leaf``), three cache
concurrency models mirroring :mod:`repro.cache`:
:class:`StripedEvalCache`/:class:`SimStripedEvalCache` for threads and
the discrete-event simulator, :class:`WorkerLocalEvalCache` for the
private baseline, and :class:`SharedMemoryEvalCache` for worker
processes.  See DESIGN.md section "Batched evaluation and the eval
cache".
"""

from .cache import (
    EVAL_CACHE_MODES,
    AnyEvalCache,
    EvalProbeOp,
    EvalStoreOp,
    SharedMemoryEvalCache,
    SimStripedEvalCache,
    StripedEvalCache,
    WorkerLocalEvalCache,
    make_eval_cache,
)
from .evaluator import EvalCacheView, Evaluator

__all__ = [
    "EVAL_CACHE_MODES",
    "AnyEvalCache",
    "EvalCacheView",
    "EvalProbeOp",
    "EvalStoreOp",
    "Evaluator",
    "SharedMemoryEvalCache",
    "SimStripedEvalCache",
    "StripedEvalCache",
    "WorkerLocalEvalCache",
    "make_eval_cache",
]
