"""Deterministic Zobrist key tables for the real game substrates.

A Zobrist key XORs one pseudo-random 64-bit constant per (cell, owner)
pair plus a side-to-move constant, so applying a move updates the key
incrementally — XOR the placed piece in, XOR each changed cell's old
owner out and its new owner in, toggle the side key — and undoing a move
re-applies the same XOR delta.  The tables here are derived from
SplitMix64 streams, never from ``random``, so every process (simulated
worker, OS thread, worker process) computes identical keys — a hard
requirement for the shared-memory transposition table, whose slots are
addressed by key across process boundaries.
"""

from __future__ import annotations

from ._hashing import splitmix64

MASK64 = (1 << 64) - 1

#: Domain-separation constants so cell tables and side keys drawn from
#: the same seed never collide.
_CELL_STREAM = 0xA0761D6478BD642F
_SIDE_STREAM = 0xE7037ED1A0B428DB


def zobrist_table(seed: int, n_cells: int, n_owners: int = 2) -> tuple[tuple[int, ...], ...]:
    """``n_cells`` rows of ``n_owners`` independent 64-bit keys.

    Deterministic in ``seed``: the table is a pure function of its
    arguments, so separately constructed game instances (for example one
    per worker process) agree on every key.
    """
    state = splitmix64((seed & MASK64) ^ _CELL_STREAM)
    rows: list[tuple[int, ...]] = []
    for _ in range(n_cells):
        row: list[int] = []
        for _ in range(n_owners):
            state = splitmix64(state)
            row.append(state)
        rows.append(tuple(row))
    return tuple(rows)


def side_to_move_key(seed: int) -> int:
    """The constant toggled into the key when the second player moves."""
    return splitmix64((seed & MASK64) ^ _SIDE_STREAM)
