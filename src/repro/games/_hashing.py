"""Counter-based splittable hashing for lazily generated game trees.

The paper's random trees assign each leaf an independent pseudo-random
value (Section 7).  Materializing a 4^11-leaf tree is out of the question,
so every random quantity in the synthetic games is *derived* from the
node's path with a SplitMix64-style mixer: the same (seed, path) always
yields the same value, trees never occupy memory, and two searches of the
same tree — serial, parallel, or interleaved — see identical values.
"""

from __future__ import annotations

from .base import Path

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(state: int) -> int:
    """One output of the SplitMix64 generator for the given state."""
    z = (state + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def path_hash(seed: int, path: Path, stream: int = 0) -> int:
    """Hash a node path into 64 uniform bits.

    ``stream`` selects independent random streams for the same node (for
    example leaf value versus static-evaluation noise).
    """
    h = splitmix64(seed & _MASK64 ^ (stream * 0xD1B54A32D192ED03 & _MASK64))
    for index in path:
        h = splitmix64(h ^ (index + 1))
    return h


def uniform_int(seed: int, path: Path, low: int, high: int, stream: int = 0) -> int:
    """Deterministic uniform integer in ``[low, high]`` for a node path."""
    if high < low:
        raise ValueError("uniform_int requires low <= high")
    span = high - low + 1
    return low + path_hash(seed, path, stream) % span
