"""Game substrates: synthetic trees and real games.

Every substrate implements the :class:`~repro.games.base.Game` protocol so
search algorithms are written once and run on all of them.
"""

from .base import Game, Line, Path, Position, SearchProblem, batch_eval, follow_path
from .connect4 import C4Position, ConnectFour
from .explicit import ExplicitTree, negmax_of_spec
from .nim import Nim, grundy_value, theoretical_value
from .random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
    TreePosition,
)
from .tictactoe import TicTacToe, play, position_from_string, winner

__all__ = [
    "Game",
    "Line",
    "Path",
    "Position",
    "SearchProblem",
    "batch_eval",
    "follow_path",
    "RandomGameTree",
    "IncrementalGameTree",
    "SyntheticOrderedTree",
    "TreePosition",
    "TicTacToe",
    "play",
    "position_from_string",
    "winner",
    "ConnectFour",
    "C4Position",
    "ExplicitTree",
    "negmax_of_spec",
    "Nim",
    "grundy_value",
    "theoretical_value",
]
