"""Explicitly specified game trees, for tests, docs, and worked examples.

An :class:`ExplicitTree` is built from nested Python lists: a number is a
leaf's static value, a list is an interior node's children.  The paper's
hand-worked trees (Figures 6 and 7) are provided as constants so tests
can check algorithm behaviour against the prose.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..errors import GameError
from .base import Path

Spec = Union[int, float, Sequence["Spec"]]


class ExplicitTree:
    """A game whose entire tree is given literally.

    Args:
        spec: nested lists of numbers, e.g. ``[[3, 5], [2, [1, 4]]]``.
        interior_value: static value reported for interior nodes (they
            are only evaluated when an ordering policy asks; defaults to
            the negmax value of the subtree, i.e. a perfect evaluator,
            which can be overridden with noise for ordering experiments).
    """

    def __init__(self, spec: Spec, perfect_interior_evaluator: bool = True):
        self._spec = spec
        self._perfect = perfect_interior_evaluator
        self._validate(spec)

    def _validate(self, spec: Spec) -> None:
        if isinstance(spec, (int, float)):
            return
        if isinstance(spec, (list, tuple)):
            if len(spec) == 0:
                raise GameError("interior nodes must have at least one child")
            for child in spec:
                self._validate(child)
            return
        raise GameError(f"tree spec must be numbers and lists, got {type(spec)!r}")

    def _resolve(self, path: Path) -> Spec:
        node = self._spec
        for index in path:
            if isinstance(node, (int, float)):
                raise GameError(f"path {path!r} descends through a leaf")
            node = node[index]
        return node

    def root(self) -> Path:
        return ()

    def children(self, position: Path) -> Sequence[Path]:
        node = self._resolve(position)
        if isinstance(node, (int, float)):
            return ()
        return tuple(position + (i,) for i in range(len(node)))

    def evaluate(self, position: Path) -> float:
        node = self._resolve(position)
        if isinstance(node, (int, float)):
            return float(node)
        if self._perfect:
            return float(negmax_of_spec(node))
        return 0.0

    def batch_eval(self, positions: Sequence[Path]) -> list[float]:
        """Batch seam; a pure-python loop — nested-spec resolution walks
        heterogeneous lists, which vectorization cannot amortize."""
        return [self.evaluate(position) for position in positions]

    @property
    def height(self) -> int:
        def depth(spec: Spec) -> int:
            if isinstance(spec, (int, float)):
                return 0
            return 1 + max(depth(child) for child in spec)

        return depth(self._spec)


def negmax_of_spec(spec: Spec) -> float:
    """Reference negmax value of a nested-list tree (obviously correct)."""
    if isinstance(spec, (int, float)):
        return float(spec)
    return max(-negmax_of_spec(child) for child in spec)


#: The paper's Figure 6 situation: the root is evaluated to 9 through its
#: first child E; the second child K is refuted as soon as its first
#: child L is examined, so K's remaining subtree M (the poison 999
#: leaves) is never visited.  Tests assert both the value and the prune.
FIGURE6 = [
    [9, 10, 11],  # E: value -9, contributing 9 to the root
    [-11, [999, 999]],  # K: L (-11) refutes it; M is never examined
]

#: The paper's Figure 7 tree (values chosen to follow the prose walk:
#: C, P, and c are the elder grandchildren; O becomes the root's e-child
#: with value -13; B fails refutation and ends at -11; b is refuted at -8).
FIGURE7 = [
    [[16, 14], [13, 12]],  # B subtree: C = evaluate -> tentative -16
    [[13, 20], [15, 17]],  # O subtree: P -> tentative -13 (chosen e-child)
    [[15, 11], [8, 9]],  # b subtree: c -> tentative -15
]
