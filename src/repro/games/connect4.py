"""Connect Four on a configurable board, as a second real game substrate.

Uses the classic bitboard layout (one column of ``height + 1`` bits per
file, the top bit a sentinel) so win detection is four shift-and-mask
operations.  Included to exercise the search stack on a game with a
different branching profile than Othello (constant width, long forced
lines) in the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import GameError, IllegalMoveError
from .zobrist import side_to_move_key, zobrist_table


@dataclass(frozen=True)
class C4Position:
    """Bitboards of the side to move and of both sides combined."""

    current: int
    mask: int
    moves_made: int


class ConnectFour:
    """Connect Four game adapter.

    Args:
        width: number of columns (default 7).
        height: number of rows (default 6).
    """

    def __init__(self, width: int = 7, height: int = 6):
        if width < 4 and height < 4:
            raise GameError("board must fit a line of four in some direction")
        if width < 1 or height < 1:
            raise GameError("board dimensions must be positive")
        self.width = width
        self.height = height
        self._column_stride = height + 1
        self._bottom_row = 0
        for col in range(width):
            self._bottom_row |= 1 << (col * self._column_stride)
        self._full_mask = ((1 << (self._column_stride * width)) - 1) & ~(
            self._bottom_row << height
        )
        # Zobrist keys per (bit cell, absolute player); seeded by the
        # board shape so equal-shaped boards (e.g. one game instance per
        # worker process) produce identical keys.
        zseed = 0xC4 ^ (width << 8) ^ (height << 16)
        self._zobrist = zobrist_table(seed=zseed, n_cells=self._column_stride * width)
        self._side = side_to_move_key(seed=zseed)

    def root(self) -> C4Position:
        return C4Position(0, 0, 0)

    def legal_columns(self, position: C4Position) -> list[int]:
        """Columns that are not yet full."""
        stride = self._column_stride
        top = 1 << (self.height - 1)
        return [
            col
            for col in range(self.width)
            if not (position.mask >> (col * stride)) & top
        ]

    def play(self, position: C4Position, column: int) -> C4Position:
        """Drop a stone in ``column``.

        Raises:
            IllegalMoveError: if the column is full or out of range.
        """
        if not 0 <= column < self.width:
            raise IllegalMoveError(f"column {column} out of range")
        stride = self._column_stride
        if (position.mask >> (column * stride)) & (1 << (self.height - 1)):
            raise IllegalMoveError(f"column {column} is full")
        new_mask = position.mask | (position.mask + (1 << (column * stride)))
        # The opponent becomes the side to move: its stones are the old
        # occupied cells minus the mover's, which is current XOR mask.
        return C4Position(
            position.current ^ position.mask,
            new_mask,
            position.moves_made + 1,
        )

    def _has_won(self, board: int) -> bool:
        """Does ``board`` contain four aligned stones?"""
        stride = self._column_stride
        for shift in (1, stride, stride + 1, stride - 1):
            paired = board & (board >> shift)
            if paired & (paired >> (2 * shift)):
                return True
        return False

    def opponent_just_won(self, position: C4Position) -> bool:
        """True when the player who moved last completed a line."""
        opponent = position.current ^ position.mask
        return self._has_won(opponent)

    def children(self, position: C4Position) -> Sequence[C4Position]:
        if self.opponent_just_won(position):
            return ()
        if position.mask == self._full_mask:
            return ()
        return tuple(self.play(position, col) for col in self.legal_columns(position))

    def evaluate(self, position: C4Position) -> float:
        if self.opponent_just_won(position):
            # Prefer faster wins: losses that arrive later score higher.
            return -10_000.0 + position.moves_made
        if position.mask == self._full_mask:
            return 0.0
        return float(
            self._threat_count(position.current, position.mask)
            - self._threat_count(position.current ^ position.mask, position.mask)
        )

    def hash_key(self, position: C4Position) -> int:
        """Full Zobrist rehash over every placed stone plus side to move.

        Stones are keyed by *absolute* player (first or second mover),
        not by the side-to-move perspective of ``current`` — perspective
        flips every ply, which would force rekeying the whole board.
        """
        first = (
            position.current
            if position.moves_made % 2 == 0
            else position.current ^ position.mask
        )
        key = 0
        remaining = position.mask
        while remaining:
            low = remaining & -remaining
            owner = 0 if first & low else 1
            key ^= self._zobrist[low.bit_length() - 1][owner]
            remaining ^= low
        if position.moves_made % 2 == 1:
            key ^= self._side
        return key

    def hash_after_move(self, position: C4Position, column: int, key: int) -> int:
        """Key of the child reached by dropping a stone in ``column``.

        Incremental update: XOR in the placed stone's (cell, player) key
        and toggle the side key.  Re-applying the same delta undoes it.
        """
        stride = self._column_stride
        if (position.mask >> (column * stride)) & (1 << (self.height - 1)):
            raise IllegalMoveError(f"column {column} is full")
        new_mask = position.mask | (position.mask + (1 << (column * stride)))
        placed = new_mask ^ position.mask
        key ^= self._zobrist[placed.bit_length() - 1][position.moves_made % 2]
        return key ^ self._side

    def _threat_count(self, board: int, mask: int) -> int:
        """Number of open three-in-a-rows — a simple positional heuristic."""
        stride = self._column_stride
        empties = self._full_mask & ~mask
        threats = 0
        for shift in (1, stride, stride + 1, stride - 1):
            # trio bit p set  <=>  stones at p, p+shift, p+2*shift.
            trio = board & (board >> shift) & (board >> (2 * shift))
            threats += ((trio << (3 * shift)) & empties).bit_count()
            threats += ((trio >> shift) & empties).bit_count()
        return threats

    def render(self, position: C4Position) -> str:
        """ASCII board for examples and debugging."""
        stride = self._column_stride
        mover_is_first = position.moves_made % 2 == 0
        rows = []
        for row in range(self.height - 1, -1, -1):
            cells = []
            for col in range(self.width):
                bit = 1 << (col * stride + row)
                if not position.mask & bit:
                    cells.append(".")
                elif bool(position.current & bit) == mover_is_first:
                    cells.append("X")
                else:
                    cells.append("O")
            rows.append(" ".join(cells))
        return "\n".join(rows)
