"""Connect Four on a configurable board, as a second real game substrate.

Uses the classic bitboard layout (one column of ``height + 1`` bits per
file, the top bit a sentinel) so win detection is four shift-and-mask
operations.  Included to exercise the search stack on a game with a
different branching profile than Othello (constant width, long forced
lines) in the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import GameError, IllegalMoveError
from . import _numpy
from .zobrist import side_to_move_key, zobrist_table


@dataclass(frozen=True)
class C4Position:
    """Bitboards of the side to move and of both sides combined."""

    current: int
    mask: int
    moves_made: int


class ConnectFour:
    """Connect Four game adapter.

    Args:
        width: number of columns (default 7).
        height: number of rows (default 6).
    """

    def __init__(self, width: int = 7, height: int = 6):
        if width < 4 and height < 4:
            raise GameError("board must fit a line of four in some direction")
        if width < 1 or height < 1:
            raise GameError("board dimensions must be positive")
        self.width = width
        self.height = height
        self._column_stride = height + 1
        self._bottom_row = 0
        for col in range(width):
            self._bottom_row |= 1 << (col * self._column_stride)
        self._full_mask = ((1 << (self._column_stride * width)) - 1) & ~(
            self._bottom_row << height
        )
        # Zobrist keys per (bit cell, absolute player); seeded by the
        # board shape so equal-shaped boards (e.g. one game instance per
        # worker process) produce identical keys.
        zseed = 0xC4 ^ (width << 8) ^ (height << 16)
        self._zobrist = zobrist_table(seed=zseed, n_cells=self._column_stride * width)
        self._side = side_to_move_key(seed=zseed)

    def root(self) -> C4Position:
        return C4Position(0, 0, 0)

    def legal_columns(self, position: C4Position) -> list[int]:
        """Columns that are not yet full."""
        stride = self._column_stride
        top = 1 << (self.height - 1)
        return [
            col
            for col in range(self.width)
            if not (position.mask >> (col * stride)) & top
        ]

    def play(self, position: C4Position, column: int) -> C4Position:
        """Drop a stone in ``column``.

        Raises:
            IllegalMoveError: if the column is full or out of range.
        """
        if not 0 <= column < self.width:
            raise IllegalMoveError(f"column {column} out of range")
        stride = self._column_stride
        if (position.mask >> (column * stride)) & (1 << (self.height - 1)):
            raise IllegalMoveError(f"column {column} is full")
        new_mask = position.mask | (position.mask + (1 << (column * stride)))
        # The opponent becomes the side to move: its stones are the old
        # occupied cells minus the mover's, which is current XOR mask.
        return C4Position(
            position.current ^ position.mask,
            new_mask,
            position.moves_made + 1,
        )

    def _has_won(self, board: int) -> bool:
        """Does ``board`` contain four aligned stones?"""
        stride = self._column_stride
        for shift in (1, stride, stride + 1, stride - 1):
            paired = board & (board >> shift)
            if paired & (paired >> (2 * shift)):
                return True
        return False

    def opponent_just_won(self, position: C4Position) -> bool:
        """True when the player who moved last completed a line."""
        opponent = position.current ^ position.mask
        return self._has_won(opponent)

    def children(self, position: C4Position) -> Sequence[C4Position]:
        if self.opponent_just_won(position):
            return ()
        if position.mask == self._full_mask:
            return ()
        return tuple(self.play(position, col) for col in self.legal_columns(position))

    def evaluate(self, position: C4Position) -> float:
        if self.opponent_just_won(position):
            # Prefer faster wins: losses that arrive later score higher.
            return -10_000.0 + position.moves_made
        if position.mask == self._full_mask:
            return 0.0
        return float(
            self._threat_count(position.current, position.mask)
            - self._threat_count(position.current ^ position.mask, position.mask)
        )

    def batch_eval(self, positions: Sequence[C4Position]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate`; the uint64 path is
        gated on the board fitting 64 bits with all shift distances below
        the word size, so oversized boards (and numpy-less installs) take
        the scalar loop.
        """
        stride = self._column_stride
        fits_uint64 = stride * self.width <= 64 and 3 * (stride + 1) < 64
        if not (_numpy.HAVE_NUMPY and fits_uint64 and len(positions) > 0):
            return [self.evaluate(position) for position in positions]
        np = _numpy.np
        n = len(positions)
        current = np.fromiter((p.current for p in positions), dtype=np.uint64, count=n)
        mask = np.fromiter((p.mask for p in positions), dtype=np.uint64, count=n)
        moves_made = np.fromiter(
            (p.moves_made for p in positions), dtype=np.int64, count=n
        )
        opponent = current ^ mask
        lost = self._has_won_arrays(np, opponent)
        full = mask == np.uint64(self._full_mask)
        heuristic = self._threat_count_arrays(np, current, mask) - (
            self._threat_count_arrays(np, opponent, mask)
        )
        return [
            float(v)
            for v in np.where(
                lost, -10_000.0 + moves_made, np.where(full, 0.0, heuristic)
            )
        ]

    def _has_won_arrays(self, np: Any, board: Any) -> Any:
        """Vector form of :meth:`_has_won` over a uint64 board array."""
        stride = self._column_stride
        won = None
        for shift in (1, stride, stride + 1, stride - 1):
            paired = board & (board >> np.uint64(shift))
            hit = (paired & (paired >> np.uint64(2 * shift))) != 0
            won = hit if won is None else (won | hit)
        return won

    def _threat_count_arrays(self, np: Any, board: Any, mask: Any) -> Any:
        """Vector form of :meth:`_threat_count` over uint64 arrays.

        Bits a Python-int shift would carry past the mask are discarded
        by uint64 arithmetic instead; they can never land in ``empties``,
        which lives below ``2 ** (stride * width)``.
        """
        stride = self._column_stride
        empties = np.uint64(self._full_mask) & ~mask
        threats = np.zeros(board.shape, dtype=np.int64)
        for shift in (1, stride, stride + 1, stride - 1):
            trio = (
                board
                & (board >> np.uint64(shift))
                & (board >> np.uint64(2 * shift))
            )
            threats += np.bitwise_count((trio << np.uint64(3 * shift)) & empties).astype(
                np.int64
            )
            threats += np.bitwise_count((trio >> np.uint64(shift)) & empties).astype(
                np.int64
            )
        return threats

    def hash_key(self, position: C4Position) -> int:
        """Full Zobrist rehash over every placed stone plus side to move.

        Stones are keyed by *absolute* player (first or second mover),
        not by the side-to-move perspective of ``current`` — perspective
        flips every ply, which would force rekeying the whole board.
        """
        first = (
            position.current
            if position.moves_made % 2 == 0
            else position.current ^ position.mask
        )
        key = 0
        remaining = position.mask
        while remaining:
            low = remaining & -remaining
            owner = 0 if first & low else 1
            key ^= self._zobrist[low.bit_length() - 1][owner]
            remaining ^= low
        if position.moves_made % 2 == 1:
            key ^= self._side
        return key

    def hash_after_move(self, position: C4Position, column: int, key: int) -> int:
        """Key of the child reached by dropping a stone in ``column``.

        Incremental update: XOR in the placed stone's (cell, player) key
        and toggle the side key.  Re-applying the same delta undoes it.
        """
        stride = self._column_stride
        if (position.mask >> (column * stride)) & (1 << (self.height - 1)):
            raise IllegalMoveError(f"column {column} is full")
        new_mask = position.mask | (position.mask + (1 << (column * stride)))
        placed = new_mask ^ position.mask
        key ^= self._zobrist[placed.bit_length() - 1][position.moves_made % 2]
        return key ^ self._side

    def _threat_count(self, board: int, mask: int) -> int:
        """Number of open three-in-a-rows — a simple positional heuristic."""
        stride = self._column_stride
        empties = self._full_mask & ~mask
        threats = 0
        for shift in (1, stride, stride + 1, stride - 1):
            # trio bit p set  <=>  stones at p, p+shift, p+2*shift.
            trio = board & (board >> shift) & (board >> (2 * shift))
            threats += ((trio << (3 * shift)) & empties).bit_count()
            threats += ((trio >> shift) & empties).bit_count()
        return threats

    def render(self, position: C4Position) -> str:
        """ASCII board for examples and debugging."""
        stride = self._column_stride
        mover_is_first = position.moves_made % 2 == 0
        rows = []
        for row in range(self.height - 1, -1, -1):
            cells = []
            for col in range(self.width):
                bit = 1 << (col * stride + row)
                if not position.mask & bit:
                    cells.append(".")
                elif bool(position.current & bit) == mover_is_first:
                    cells.append("X")
                else:
                    cells.append("O")
            rows.append(" ".join(cells))
        return "\n".join(rows)
