"""Synthetic random game trees (Section 7 of the paper).

Three families are provided:

* :class:`RandomGameTree` — the paper's model: a complete d-ary tree of
  fixed height whose leaves carry iid uniform values.  Interior static
  values are independent noise, so move ordering is uninformative — the
  regime in which the paper reports ER's best efficiency (Figure 11).

* :class:`IncrementalGameTree` — an "incremental" model in which a node's
  value is an accumulated sum of edge increments, so the static evaluator
  is informative and trees are *strongly ordered* in Marsland's sense
  (Section 4.4).  Used for the pv-splitting and ordering-quality ablations.

* :class:`SyntheticOrderedTree` — a tree whose exact negmax value is fixed
  by construction and whose best child can be pinned to a chosen position.
  With ``best_child='first'`` the tree is perfectly best-first ordered and
  alpha-beta visits exactly the Knuth–Moore minimal tree, which the test
  suite checks against the closed-form leaf count of Section 2.2.

All three are lazy: positions are just node paths plus cached metadata,
and every random quantity is recomputed from a splittable hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import GameError
from . import _numpy
from .base import Path
from ._hashing import _GOLDEN, _MIX1, _MIX2, path_hash, uniform_int

#: Hash stream reserved for transposition keys (streams 0-7 carry leaf
#: values, ordering noise, and tree-shape draws).
_KEY_STREAM = 9


def _splitmix64_arrays(np: Any, state: Any) -> Any:
    """SplitMix64 over a uint64 array; wrap-around is the scalar's mask."""
    z = state + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


def _hash_fold(np: Any, h: Any, column: Any) -> Any:
    """One path element folded into the running hash (vector form of the
    ``h = splitmix64(h ^ (index + 1))`` step of :func:`path_hash`)."""
    return _splitmix64_arrays(np, h ^ (column + np.uint64(1)))


def _hash_start(np: Any, seed: int, stream: int, n: int) -> Any:
    """Stream-initial hash, broadcast: ``path_hash(seed, (), stream)``."""
    return np.full(n, path_hash(seed, (), stream), dtype=np.uint64)


def _group_by_length(positions: Sequence["TreePosition"]) -> dict[int, list[int]]:
    """Row indices grouped by path length — hash chains are length-bound."""
    groups: dict[int, list[int]] = {}
    for row, position in enumerate(positions):
        groups.setdefault(len(position.path), []).append(row)
    return groups


def _path_matrix(
    np: Any, positions: Sequence["TreePosition"], rows: list[int], length: int
) -> Any:
    return np.array(
        [positions[row].path for row in rows], dtype=np.uint64
    ).reshape(len(rows), length)


@dataclass(frozen=True)
class TreePosition:
    """A position in a synthetic tree: its path from the root."""

    path: Path

    @property
    def ply(self) -> int:
        return len(self.path)


class RandomGameTree:
    """Complete ``degree``-ary tree of ``height`` plies, iid uniform leaves.

    Args:
        degree: number of children of every interior node (paper: 4 or 8).
        height: leaf depth in plies (paper: 7, 10, or 11).
        seed: stream seed; equal seeds give identical trees.
        value_range: leaf values are uniform on ``[-value_range, value_range]``.
    """

    def __init__(self, degree: int, height: int, seed: int = 0, value_range: int = 10_000):
        if degree < 1:
            raise GameError("degree must be at least 1")
        if height < 0:
            raise GameError("height must be non-negative")
        if value_range < 1:
            raise GameError("value_range must be positive")
        self.degree = degree
        self.height = height
        self.seed = seed
        self.value_range = value_range

    def root(self) -> TreePosition:
        return TreePosition(())

    def children(self, position: TreePosition) -> Sequence[TreePosition]:
        if position.ply >= self.height:
            return ()
        path = position.path
        return tuple(TreePosition(path + (i,)) for i in range(self.degree))

    def evaluate(self, position: TreePosition) -> float:
        # Leaves get the paper's iid uniform values; interior nodes get an
        # independent draw, modelling a completely uninformative evaluator.
        stream = 0 if position.ply >= self.height else 1
        return float(
            uniform_int(self.seed, position.path, -self.value_range, self.value_range, stream)
        )

    def batch_eval(self, positions: Sequence[TreePosition]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate`: positions are grouped
        by path length (the hash chain is length-bound), the SplitMix64
        fold runs column-wise over uint64 path matrices, and every value
        is an exact small integer in float64.
        """
        if not (_numpy.HAVE_NUMPY and len(positions) > 0):
            return [self.evaluate(position) for position in positions]
        np = _numpy.np
        out = [0.0] * len(positions)
        span = 2 * self.value_range + 1
        for length, rows in _group_by_length(positions).items():
            stream = 0 if length >= self.height else 1
            h = _hash_start(np, self.seed, stream, len(rows))
            matrix = _path_matrix(np, positions, rows, length)
            for column in range(length):
                h = _hash_fold(np, h, matrix[:, column])
            values = (h % np.uint64(span)).astype(np.int64) - self.value_range
            for i, row in enumerate(rows):
                out[row] = float(values[i])
        return out

    def hash_key(self, position: TreePosition) -> int:
        """Transposition key: synthetic positions *are* their paths, so the
        key is a path hash salted with the tree's seed (two different
        trees must never share keys in a table that outlives one run)."""
        return path_hash(self.seed, position.path, stream=_KEY_STREAM)

    def leaf_count(self) -> int:
        """Total leaves of the full tree (``degree ** height``)."""
        return self.degree**self.height


class IncrementalGameTree:
    """Strongly ordered random tree: values accumulate along edges.

    Each edge carries a uniform increment; a node's *true score* is the
    negamax-alternating sum of increments on its path, and its static
    value is that score plus bounded noise.  With ``noise=0`` the static
    evaluator ranks children almost perfectly; raising ``noise`` degrades
    ordering quality continuously, which the ordering ablation sweeps.
    """

    def __init__(
        self,
        degree: int,
        height: int,
        seed: int = 0,
        increment_range: int = 100,
        noise: float = 0.25,
    ):
        if degree < 1:
            raise GameError("degree must be at least 1")
        if height < 0:
            raise GameError("height must be non-negative")
        if increment_range < 1:
            raise GameError("increment_range must be positive")
        if noise < 0:
            raise GameError("noise must be non-negative")
        self.degree = degree
        self.height = height
        self.seed = seed
        self.increment_range = increment_range
        self.noise = noise

    def root(self) -> TreePosition:
        return TreePosition(())

    def children(self, position: TreePosition) -> Sequence[TreePosition]:
        if position.ply >= self.height:
            return ()
        path = position.path
        return tuple(TreePosition(path + (i,)) for i in range(self.degree))

    def hash_key(self, position: TreePosition) -> int:
        return path_hash(self.seed, position.path, stream=_KEY_STREAM)

    def _score(self, path: Path) -> int:
        """True accumulated score of a node, side-to-move point of view."""
        score = 0
        for ply in range(1, len(path) + 1):
            inc = uniform_int(self.seed, path[:ply], -self.increment_range, self.increment_range)
            score = -score + inc
        return score

    def evaluate(self, position: TreePosition) -> float:
        score = self._score(position.path)
        if position.ply >= self.height or self.noise == 0:
            noise = 0
        else:
            bound = max(1, int(self.increment_range * self.noise))
            noise = uniform_int(self.seed, position.path, -bound, bound, stream=2)
        return float(score + noise)

    def batch_eval(self, positions: Sequence[TreePosition]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate`: the running hash after
        folding columns ``0..ply-1`` *is* ``path_hash`` of that prefix, so
        the negamax-alternating increment sum of :meth:`_score` runs as a
        column-wise recurrence over each path-length group.
        """
        if not (_numpy.HAVE_NUMPY and len(positions) > 0):
            return [self.evaluate(position) for position in positions]
        np = _numpy.np
        out = [0.0] * len(positions)
        inc_span = 2 * self.increment_range + 1
        for length, rows in _group_by_length(positions).items():
            n = len(rows)
            matrix = _path_matrix(np, positions, rows, length)
            score = np.zeros(n, dtype=np.int64)
            h = _hash_start(np, self.seed, 0, n)
            for column in range(length):
                h = _hash_fold(np, h, matrix[:, column])
                inc = (h % np.uint64(inc_span)).astype(np.int64) - self.increment_range
                score = -score + inc
            if length >= self.height or self.noise == 0:
                values = score
            else:
                bound = max(1, int(self.increment_range * self.noise))
                h2 = _hash_start(np, self.seed, 2, n)
                for column in range(length):
                    h2 = _hash_fold(np, h2, matrix[:, column])
                noise = (h2 % np.uint64(2 * bound + 1)).astype(np.int64) - bound
                values = score + noise
            for i, row in enumerate(rows):
                out[row] = float(values[i])
        return out


class SyntheticOrderedTree:
    """Tree with a predetermined negmax value at every node.

    Construction (top-down, derived lazily from path hashes): the root is
    assigned a value ``v``.  Exactly one child — the *best* child — is
    assigned value ``-v`` so that ``max(-child)`` recovers ``v``; every
    other child is assigned ``-v + delta`` with ``delta >= 1``, making it
    strictly worse for the parent.  Leaves evaluate to their predetermined
    value, so the whole tree's negmax value equals the root's assignment
    exactly — a ground truth for correctness tests at any size.

    Args:
        best_child: ``'first'`` produces a perfectly best-first-ordered
            tree (alpha-beta visits exactly the minimal tree);
            ``'last'`` produces the pathological worst-first order;
            ``'random'`` scatters the best child uniformly.
    """

    _PLACEMENTS = ("first", "last", "random")

    def __init__(
        self,
        degree: int,
        height: int,
        seed: int = 0,
        root_value: int | None = None,
        delta_range: int = 50,
        best_child: str = "first",
    ):
        if degree < 1:
            raise GameError("degree must be at least 1")
        if height < 0:
            raise GameError("height must be non-negative")
        if delta_range < 1:
            raise GameError("delta_range must be positive")
        if best_child not in self._PLACEMENTS:
            raise GameError(f"best_child must be one of {self._PLACEMENTS}")
        self.degree = degree
        self.height = height
        self.seed = seed
        self.delta_range = delta_range
        self.best_child = best_child
        if root_value is None:
            root_value = uniform_int(seed, (), -1000, 1000, stream=7)
        self.root_value = root_value

    def root(self) -> TreePosition:
        return TreePosition(())

    def children(self, position: TreePosition) -> Sequence[TreePosition]:
        if position.ply >= self.height:
            return ()
        path = position.path
        return tuple(TreePosition(path + (i,)) for i in range(self.degree))

    def hash_key(self, position: TreePosition) -> int:
        return path_hash(self.seed, position.path, stream=_KEY_STREAM)

    def _best_index(self, path: Path) -> int:
        if self.best_child == "first":
            return 0
        if self.best_child == "last":
            return self.degree - 1
        return path_hash(self.seed, path, stream=3) % self.degree

    def assigned_value(self, path: Path) -> int:
        """The negmax value this construction assigns to a node."""
        value = self.root_value
        for ply in range(len(path)):
            prefix = path[:ply]
            index = path[ply]
            if index == self._best_index(prefix):
                value = -value
            else:
                delta = uniform_int(self.seed, path[: ply + 1], 1, self.delta_range, stream=4)
                value = -value + delta
        return value

    def evaluate(self, position: TreePosition) -> float:
        return float(self.assigned_value(position.path))

    def batch_eval(self, positions: Sequence[TreePosition]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate`: the best-child draw
        (stream 3) hashes each *prefix*, so it is read before folding the
        column; the delta draw (stream 4) hashes the prefix *plus* the
        column, so it is read after.
        """
        if not (_numpy.HAVE_NUMPY and len(positions) > 0):
            return [self.evaluate(position) for position in positions]
        np = _numpy.np
        out = [0.0] * len(positions)
        for length, rows in _group_by_length(positions).items():
            n = len(rows)
            matrix = _path_matrix(np, positions, rows, length)
            value = np.full(n, self.root_value, dtype=np.int64)
            h3 = _hash_start(np, self.seed, 3, n)
            h4 = _hash_start(np, self.seed, 4, n)
            for column in range(length):
                indices = matrix[:, column].astype(np.int64)
                if self.best_child == "first":
                    best = np.zeros(n, dtype=np.int64)
                elif self.best_child == "last":
                    best = np.full(n, self.degree - 1, dtype=np.int64)
                else:
                    best = (h3 % np.uint64(self.degree)).astype(np.int64)
                h3 = _hash_fold(np, h3, matrix[:, column])
                h4 = _hash_fold(np, h4, matrix[:, column])
                delta = (h4 % np.uint64(self.delta_range)).astype(np.int64) + 1
                value = np.where(indices == best, -value, -value + delta)
            for i, row in enumerate(rows):
                out[row] = float(value[i])
        return out
