"""Nim — a game with *provable* values for every position.

Sprague–Grundy theory gives the exact game-theoretic outcome of any Nim
position (the XOR of heap sizes is nonzero iff the player to move wins),
so Nim supplies something no other substrate here can: mathematical
ground truth for arbitrary positions, independent of any search.  The
test suite exploits this to validate every search algorithm against
theory rather than against another implementation.

Positions are sorted tuples of heap sizes (zero heaps dropped); a move
removes 1..k stones from one heap; the player who cannot move loses
(normal play convention).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GameError

NimPosition = tuple[int, ...]

#: Terminal scores: the player to move at an empty position has lost.
LOSS = -1.0
WIN = 1.0


def normalize(heaps: Sequence[int]) -> NimPosition:
    """Canonical form: sorted, zero heaps removed.

    Raises:
        GameError: on negative heap sizes.
    """
    if any(h < 0 for h in heaps):
        raise GameError("heap sizes must be non-negative")
    return tuple(sorted(h for h in heaps if h > 0))


def grundy_value(position: NimPosition) -> int:
    """The Sprague-Grundy value: XOR of the heap sizes (Bouton's theorem)."""
    value = 0
    for heap in position:
        value ^= heap
    return value


def theoretical_value(position: NimPosition) -> float:
    """+1 if the player to move wins under optimal play, else -1."""
    return WIN if grundy_value(position) != 0 else LOSS


class Nim:
    """Game adapter for Nim.

    Args:
        heaps: starting heap sizes, e.g. ``(3, 4, 5)``.
    """

    def __init__(self, heaps: Sequence[int] = (3, 4, 5)):
        self._root = normalize(heaps)

    def root(self) -> NimPosition:
        return self._root

    def children(self, position: NimPosition) -> Sequence[NimPosition]:
        successors = []
        seen = set()
        for index, heap in enumerate(position):
            for take in range(1, heap + 1):
                rest = position[:index] + (heap - take,) + position[index + 1 :]
                child = normalize(rest)
                if child not in seen:
                    seen.add(child)
                    successors.append(child)
        return tuple(successors)

    def evaluate(self, position: NimPosition) -> float:
        """Terminal: a player facing no stones has lost.

        Interior positions get an *uninformative* heuristic (0) so that a
        horizon-limited search must actually look ahead; full-depth
        searches never consult it because Nim games always terminate.
        """
        if not position:
            return LOSS
        return 0.0

    def batch_eval(self, positions: Sequence[NimPosition]) -> list[float]:
        """Batch seam; a pure-python loop, since the two-valued evaluator
        has nothing for vectorization to amortize."""
        return [LOSS if not position else 0.0 for position in positions]

    def total_stones(self) -> int:
        return sum(self._root)


def max_game_length(heaps: Sequence[int]) -> int:
    """An upper bound on game length: one move removes >= 1 stone."""
    return sum(normalize(heaps))
