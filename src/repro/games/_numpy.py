"""Optional-numpy gate shared by the vectorized game evaluators.

numpy is deliberately not a hard dependency: every ``batch_eval``
implementation falls back to its scalar loop when ``HAVE_NUMPY`` is
``False``.  Tests monkeypatch this flag to pin fallback parity.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via the HAVE_NUMPY flag in tests
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False
