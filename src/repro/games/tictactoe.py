"""Tic-tac-toe, the paper's Figure 1 substrate.

The full game tree is small enough to search exhaustively, giving exact
ground truth for every search algorithm: the root negmax value is 0 (a
draw under optimal play), which the test suite asserts for negmax,
alpha-beta, serial ER, and every parallel algorithm.

Positions are ``(cells, to_move)`` where ``cells`` is a 9-tuple over
``{0, 1, 2}`` (empty / X / O) indexed row-major and ``to_move`` is 1 or 2.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GameError, IllegalMoveError
from . import _numpy

Cells = tuple[int, ...]
TTTPosition = tuple[Cells, int]

_LINES: tuple[tuple[int, int, int], ...] = (
    (0, 1, 2),
    (3, 4, 5),
    (6, 7, 8),
    (0, 3, 6),
    (1, 4, 7),
    (2, 5, 8),
    (0, 4, 8),
    (2, 4, 6),
)

EMPTY_BOARD: Cells = (0,) * 9


def winner(cells: Cells) -> int:
    """Return 1 or 2 if that player has three in a row, else 0."""
    for a, b, c in _LINES:
        mark = cells[a]
        if mark != 0 and mark == cells[b] == cells[c]:
            return mark
    return 0


def legal_moves(cells: Cells) -> list[int]:
    """Indices of empty cells (the game must not already be decided)."""
    return [i for i, mark in enumerate(cells) if mark == 0]


def play(position: TTTPosition, cell: int) -> TTTPosition:
    """Apply a move, returning the successor position.

    Raises:
        IllegalMoveError: if the cell is occupied, out of range, or the
            game is already over.
    """
    cells, to_move = position
    if not 0 <= cell < 9:
        raise IllegalMoveError(f"cell {cell} out of range")
    if cells[cell] != 0:
        raise IllegalMoveError(f"cell {cell} is occupied")
    if winner(cells) != 0:
        raise IllegalMoveError("game is already over")
    new_cells = cells[:cell] + (to_move,) + cells[cell + 1 :]
    return (new_cells, 3 - to_move)


class TicTacToe:
    """Game adapter for tic-tac-toe.

    ``evaluate`` returns the exact outcome at terminal positions
    (win = +1 for the side to move — impossible, the mover just lost —
    so in practice −1 or 0) and an open-lines heuristic at the horizon.
    """

    def root(self) -> TTTPosition:
        return (EMPTY_BOARD, 1)

    def children(self, position: TTTPosition) -> Sequence[TTTPosition]:
        cells, _ = position
        if winner(cells) != 0:
            return ()
        return tuple(play(position, cell) for cell in legal_moves(cells))

    def evaluate(self, position: TTTPosition) -> float:
        cells, to_move = position
        won = winner(cells)
        if won != 0:
            # The player to move faces a completed line by the opponent.
            return 1.0 if won == to_move else -1.0
        if all(mark != 0 for mark in cells):
            return 0.0
        return float(self._open_lines(cells, to_move) - self._open_lines(cells, 3 - to_move))

    def batch_eval(self, positions: Sequence[TTTPosition]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate`: the winner scan keeps
        the scalar's first-winning-line-in-``_LINES``-order semantics, and
        every score is an exact small integer in float64.
        """
        if not (_numpy.HAVE_NUMPY and len(positions) > 0):
            return [self.evaluate(position) for position in positions]
        np = _numpy.np
        n = len(positions)
        cells = np.array([p[0] for p in positions], dtype=np.int64).reshape(n, 9)
        to_move = np.fromiter((p[1] for p in positions), dtype=np.int64, count=n)
        won = np.zeros(n, dtype=np.int64)
        for a, b, c in _LINES:
            mark = cells[:, a]
            hit = (mark != 0) & (mark == cells[:, b]) & (mark == cells[:, c]) & (won == 0)
            won = np.where(hit, mark, won)
        full = np.all(cells != 0, axis=1)
        own_open = np.zeros(n, dtype=np.int64)
        opp_open = np.zeros(n, dtype=np.int64)
        other = 3 - to_move
        for a, b, c in _LINES:
            own_open += (
                (cells[:, a] != other) & (cells[:, b] != other) & (cells[:, c] != other)
            ).astype(np.int64)
            opp_open += (
                (cells[:, a] != to_move) & (cells[:, b] != to_move) & (cells[:, c] != to_move)
            ).astype(np.int64)
        scores = np.where(
            won != 0,
            np.where(won == to_move, 1.0, -1.0),
            np.where(full, 0.0, (own_open - opp_open).astype(np.float64)),
        )
        return [float(v) for v in scores]

    @staticmethod
    def _open_lines(cells: Cells, player: int) -> int:
        """Lines not containing any opposing mark — a classic heuristic."""
        other = 3 - player
        return sum(1 for line in _LINES if all(cells[i] != other for i in line))

    @staticmethod
    def render(position: TTTPosition) -> str:
        """ASCII board for examples and debugging."""
        cells, to_move = position
        glyphs = {0: ".", 1: "X", 2: "O"}
        rows = (
            " ".join(glyphs[cells[r * 3 + c]] for c in range(3)) for r in range(3)
        )
        return "\n".join(rows) + f"\n({glyphs[to_move]} to move)"


def position_from_string(text: str, to_move: int) -> TTTPosition:
    """Parse a board like ``'X.O .X. ..O'`` (whitespace separated rows)."""
    glyphs = {".": 0, "X": 1, "O": 2}
    flat = "".join(text.split())
    if len(flat) != 9:
        raise GameError("board string must contain exactly 9 cells")
    try:
        cells = tuple(glyphs[ch] for ch in flat)
    except KeyError as exc:
        raise GameError(f"unknown board glyph {exc.args[0]!r}") from exc
    if to_move not in (1, 2):
        raise GameError("to_move must be 1 (X) or 2 (O)")
    return (cells, to_move)
