"""Bitboard Othello rules: move generation, flipping, rendering.

The paper used Steven Scott's Othello program; this is a from-scratch
replacement (see DESIGN.md).  Boards are 64-bit integers, bit ``row*8+col``
with row 0 at the top.  Move generation and disc flipping use the standard
eight-direction shift-and-mask flood fill, so generating all moves costs a
few dozen integer operations regardless of position.
"""

from __future__ import annotations

from ...errors import IllegalMoveError

FULL = (1 << 64) - 1
FILE_A = 0x0101010101010101
FILE_H = 0x8080808080808080
NOT_A = FULL ^ FILE_A
NOT_H = FULL ^ FILE_H

CORNERS = (1 << 0) | (1 << 7) | (1 << 56) | (1 << 63)

#: X-squares: diagonal neighbours of corners (dangerous to occupy early).
X_SQUARES = (1 << 9) | (1 << 14) | (1 << 49) | (1 << 54)

#: C-squares: orthogonal neighbours of corners.
C_SQUARES = (
    (1 << 1) | (1 << 8) | (1 << 6) | (1 << 15) | (1 << 48) | (1 << 57) | (1 << 55) | (1 << 62)
)

EDGES = 0xFF818181818181FF

#: Standard initial discs: black on d5/e4, white on d4/e5; black moves first.
BLACK_START = (1 << 28) | (1 << 35)
WHITE_START = (1 << 27) | (1 << 36)


def _shift_east(b: int) -> int:
    return (b & NOT_H) << 1


def _shift_west(b: int) -> int:
    return (b & NOT_A) >> 1


def _shift_south(b: int) -> int:
    return (b << 8) & FULL


def _shift_north(b: int) -> int:
    return b >> 8


def _shift_se(b: int) -> int:
    return ((b & NOT_H) << 9) & FULL


def _shift_sw(b: int) -> int:
    return ((b & NOT_A) << 7) & FULL


def _shift_ne(b: int) -> int:
    return (b & NOT_H) >> 7


def _shift_nw(b: int) -> int:
    return (b & NOT_A) >> 9


SHIFTS = (
    _shift_east,
    _shift_west,
    _shift_south,
    _shift_north,
    _shift_se,
    _shift_sw,
    _shift_ne,
    _shift_nw,
)


def legal_moves(own: int, opp: int) -> int:
    """Bitboard of squares where the side owning ``own`` may play."""
    empty = FULL ^ own ^ opp
    moves = 0
    for shift in SHIFTS:
        candidates = shift(own) & opp
        # Six chained steps cover the longest possible flip line.
        for _ in range(5):
            candidates |= shift(candidates) & opp
        moves |= shift(candidates) & empty
    return moves


def flips_for_move(own: int, opp: int, move: int) -> int:
    """Bitboard of opposing discs flipped by playing on ``move`` (one bit)."""
    flips = 0
    for shift in SHIFTS:
        line = 0
        probe = shift(move)
        while probe & opp:
            line |= probe
            probe = shift(probe)
        if probe & own:
            flips |= line
    return flips


def apply_move(own: int, opp: int, move: int) -> tuple[int, int]:
    """Play ``move`` (a single-bit board) for the owner of ``own``.

    Returns the boards from the *mover's* perspective (own', opp').

    Raises:
        IllegalMoveError: if the move flips nothing or the square is taken.
    """
    if move & (own | opp):
        raise IllegalMoveError("square is already occupied")
    flips = flips_for_move(own, opp, move)
    if flips == 0:
        raise IllegalMoveError("move flips no discs")
    return own | move | flips, opp ^ flips


def bits(board: int):
    """Iterate the single-bit boards present in ``board``, ascending."""
    while board:
        low = board & -board
        yield low
        board ^= low


def square_name(bit: int) -> str:
    """Algebraic name (``a1`` top-left) of a single-bit board."""
    index = bit.bit_length() - 1
    return f"{chr(ord('a') + index % 8)}{index // 8 + 1}"


def square_bit(name: str) -> int:
    """Inverse of :func:`square_name`."""
    col = ord(name[0].lower()) - ord("a")
    row = int(name[1:]) - 1
    if not (0 <= col < 8 and 0 <= row < 8):
        raise ValueError(f"bad square name {name!r}")
    return 1 << (row * 8 + col)


def frontier(own: int, opp: int) -> int:
    """Discs of ``own`` adjacent to at least one empty square."""
    empty = FULL ^ own ^ opp
    adjacent_to_empty = 0
    for shift in SHIFTS:
        adjacent_to_empty |= shift(empty)
    return own & adjacent_to_empty


def stable_edge_discs(own: int, opp: int) -> int:
    """Approximate stable discs: corner-anchored runs along the edges.

    True stability analysis requires global reasoning; corner-anchored
    edge chains are the standard cheap approximation and capture the
    dominant term.
    """
    occupied = own | opp
    stable = 0
    for corner_index, (d1, d2) in (
        (0, (_shift_east, _shift_south)),
        (7, (_shift_west, _shift_south)),
        (56, (_shift_east, _shift_north)),
        (63, (_shift_west, _shift_north)),
    ):
        corner = 1 << corner_index
        if not occupied & corner:
            continue
        color = own if own & corner else opp
        for shift in (d1, d2):
            probe = corner
            while probe & color:
                stable |= probe & color
                probe = shift(probe)
    return stable & own


def render(black: int, white: int, black_to_move: bool = True) -> str:
    """ASCII board with ``*`` marking the mover's legal squares."""
    own, opp = (black, white) if black_to_move else (white, black)
    moves = legal_moves(own, opp)
    lines = ["  a b c d e f g h"]
    for row in range(8):
        cells = []
        for col in range(8):
            bit = 1 << (row * 8 + col)
            if black & bit:
                cells.append("B")
            elif white & bit:
                cells.append("W")
            elif moves & bit:
                cells.append("*")
            else:
                cells.append(".")
        lines.append(f"{row + 1} " + " ".join(cells))
    mover = "black" if black_to_move else "white"
    lines.append(f"({mover} to move)")
    return "\n".join(lines)
