"""Bitboard Othello engine (rules, evaluator, experiment roots)."""

from .board import (
    apply_move,
    bits,
    flips_for_move,
    legal_moves,
    render,
    square_bit,
    square_name,
)
from .evaluator import WIN_SCORE, EvaluationWeights, evaluate, phase_weights
from .game import (
    BLACK,
    O1_ROOT,
    O2_ROOT,
    O3_ROOT,
    START,
    WHITE,
    Othello,
    OthelloPosition,
    play_opening,
)

__all__ = [
    "apply_move",
    "bits",
    "flips_for_move",
    "legal_moves",
    "render",
    "square_bit",
    "square_name",
    "WIN_SCORE",
    "EvaluationWeights",
    "evaluate",
    "phase_weights",
    "BLACK",
    "WHITE",
    "START",
    "Othello",
    "OthelloPosition",
    "play_opening",
    "O1_ROOT",
    "O2_ROOT",
    "O3_ROOT",
]
