"""Vectorized Othello evaluation over arrays of bitboards.

The scalar evaluator (:mod:`repro.games.othello.evaluator`) costs a few
hundred integer operations per position; at a search frontier hundreds of
sibling leaves need the same few hundred operations, which is exactly the
shape numpy amortizes.  This module evaluates ``N`` positions as eight
uint64 arrays worth of shift-and-mask flood fills plus ``bitwise_count``
popcounts.

Parity contract: :func:`evaluate_arrays` mirrors the *operation order* of
``evaluator.evaluate`` element-wise in float64 — same feature terms, same
accumulation sequence, branches replaced by ``np.where`` — so results are
bit-identical to the scalar path (pinned by
``tests/test_eval_differential.py``).  numpy is optional: when the import
fails, ``HAVE_NUMPY`` is ``False`` and callers fall back to the scalar
loop.
"""

from __future__ import annotations

from typing import Any, Sequence

from .board import C_SQUARES, CORNERS, FULL, NOT_A, NOT_H, X_SQUARES
from .evaluator import EARLY, LATE, MID, WIN_SCORE, _CORNER_NEIGHBOURHOODS

try:  # pragma: no cover - exercised via the HAVE_NUMPY flag in tests
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def _shift_east(b: Any) -> Any:
    return (b & np.uint64(NOT_H)) << np.uint64(1)


def _shift_west(b: Any) -> Any:
    return (b & np.uint64(NOT_A)) >> np.uint64(1)


def _shift_south(b: Any) -> Any:
    # uint64 arithmetic discards bits past 63, which is the & FULL of the
    # scalar shift.
    return b << np.uint64(8)


def _shift_north(b: Any) -> Any:
    return b >> np.uint64(8)


def _shift_se(b: Any) -> Any:
    return (b & np.uint64(NOT_H)) << np.uint64(9)


def _shift_sw(b: Any) -> Any:
    return (b & np.uint64(NOT_A)) << np.uint64(7)


def _shift_ne(b: Any) -> Any:
    return (b & np.uint64(NOT_H)) >> np.uint64(7)


def _shift_nw(b: Any) -> Any:
    return (b & np.uint64(NOT_A)) >> np.uint64(9)


def _shifts() -> tuple[Any, ...]:
    return (
        _shift_east,
        _shift_west,
        _shift_south,
        _shift_north,
        _shift_se,
        _shift_sw,
        _shift_ne,
        _shift_nw,
    )


def _popcount(b: Any) -> Any:
    return np.bitwise_count(b).astype(np.int64)


def _legal_moves(own: Any, opp: Any) -> Any:
    empty = np.uint64(FULL) ^ own ^ opp
    moves = np.zeros_like(own)
    for shift in _shifts():
        candidates = shift(own) & opp
        for _ in range(5):
            candidates |= shift(candidates) & opp
        moves |= shift(candidates) & empty
    return moves


def _frontier(own: Any, opp: Any) -> Any:
    empty = np.uint64(FULL) ^ own ^ opp
    adjacent_to_empty = np.zeros_like(own)
    for shift in _shifts():
        adjacent_to_empty |= shift(empty)
    return own & adjacent_to_empty


_CORNER_WALKS = (
    (0, (_shift_east, _shift_south)),
    (7, (_shift_west, _shift_south)),
    (56, (_shift_east, _shift_north)),
    (63, (_shift_west, _shift_north)),
)


def _stable_edge_discs(own: Any, opp: Any) -> Any:
    stable = np.zeros_like(own)
    for corner_index, walks in _CORNER_WALKS:
        corner = np.uint64(1 << corner_index)
        # Rows whose corner is empty start the walk at 0 and contribute
        # nothing — the scalar `continue`.
        color = np.where((own & corner) != 0, own, opp)
        start = np.where(((own | opp) & corner) != 0, corner, np.uint64(0))
        for shift in walks:
            # The scalar while-loop advances a single-bit probe along the
            # edge while it stays on the walker's color; eight fixed-point
            # steps cover the longest edge, and a probe that left the
            # color (or the board) is zero from then on.
            probe = start
            for _ in range(8):
                on = probe & color
                stable |= on
                probe = shift(on)
    return stable & own


def _squares_near_empty_corners(empty: Any, squares: int) -> Any:
    dangerous = np.zeros_like(empty)
    for corner, neighbourhood in _CORNER_NEIGHBOURHOODS:
        dangerous |= np.where(
            (empty & np.uint64(corner)) != 0,
            np.uint64(squares & neighbourhood),
            np.uint64(0),
        )
    return dangerous


def _phase_weight(disc_count: Any, early: float, mid: float, late: float) -> Any:
    return np.where(disc_count <= 24, early, np.where(disc_count <= 48, mid, late))


def evaluate_arrays(own: Any, opp: Any) -> Any:
    """Float64 scores for paired uint64 board arrays (mover's view).

    Mirrors ``evaluator.evaluate`` term for term, in the same order.
    """
    own_moves = _legal_moves(own, opp)
    opp_moves = _legal_moves(opp, own)

    margin = _popcount(own) - _popcount(opp)
    terminal_score = np.where(
        margin > 0,
        WIN_SCORE + margin,
        np.where(margin < 0, -WIN_SCORE + margin, 0.0),
    )

    disc_count = _popcount(own | opp)
    score = np.zeros(own.shape, dtype=np.float64)

    mobility = _phase_weight(disc_count, EARLY.mobility, MID.mobility, LATE.mobility)
    score = score + mobility * (_popcount(own_moves) - _popcount(opp_moves))

    empty = np.uint64(FULL) ^ own ^ opp
    potential = _phase_weight(
        disc_count, EARLY.potential_mobility, MID.potential_mobility, LATE.potential_mobility
    )
    score = score - potential * (
        _popcount(_frontier(own, opp)) - _popcount(_frontier(opp, own))
    )

    corners = _phase_weight(disc_count, EARLY.corners, MID.corners, LATE.corners)
    score = score + corners * (
        _popcount(own & np.uint64(CORNERS)) - _popcount(opp & np.uint64(CORNERS))
    )

    danger_x = _squares_near_empty_corners(empty, X_SQUARES)
    danger_c = _squares_near_empty_corners(empty, C_SQUARES)
    x_penalty = _phase_weight(disc_count, EARLY.x_penalty, MID.x_penalty, LATE.x_penalty)
    score = score - x_penalty * (_popcount(own & danger_x) - _popcount(opp & danger_x))
    c_penalty = _phase_weight(disc_count, EARLY.c_penalty, MID.c_penalty, LATE.c_penalty)
    score = score - c_penalty * (_popcount(own & danger_c) - _popcount(opp & danger_c))

    stability = _phase_weight(disc_count, EARLY.stability, MID.stability, LATE.stability)
    score = score + stability * (
        _popcount(_stable_edge_discs(own, opp)) - _popcount(_stable_edge_discs(opp, own))
    )

    discs = _phase_weight(disc_count, EARLY.discs, MID.discs, LATE.discs)
    score = score + discs * margin

    game_over = (own_moves == 0) & (opp_moves == 0)
    return np.where(game_over, terminal_score, score)


def evaluate_positions(positions: Sequence[Any]) -> list[float]:
    """Batch-evaluate :class:`~.game.OthelloPosition` objects."""
    own = np.fromiter((p.own for p in positions), dtype=np.uint64, count=len(positions))
    opp = np.fromiter((p.opp for p in positions), dtype=np.uint64, count=len(positions))
    return [float(v) for v in evaluate_arrays(own, opp)]
