"""Static evaluation for Othello, Rosenbloom (IAGO) style.

The paper cites Rosenbloom's world-championship-level program as the
reference for its Othello substrate.  This evaluator combines the features
that work is known for — mobility, potential mobility, corner control,
edge stability, and disc parity — with phase-dependent weights (disc count
matters only late; mobility matters most in the midgame).  Exact weights
are unimportant for the reproduction: any informative evaluator produces
partially ordered trees of the kind the paper searches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .board import (
    C_SQUARES,
    CORNERS,
    FULL,
    X_SQUARES,
    frontier,
    legal_moves,
    stable_edge_discs,
)


@dataclass(frozen=True)
class EvaluationWeights:
    """Feature weights; one instance per game phase."""

    mobility: float
    potential_mobility: float
    corners: float
    x_penalty: float
    c_penalty: float
    stability: float
    discs: float


EARLY = EvaluationWeights(
    mobility=12.0,
    potential_mobility=5.0,
    corners=120.0,
    x_penalty=40.0,
    c_penalty=15.0,
    stability=30.0,
    discs=-2.0,
)
MID = EvaluationWeights(
    mobility=10.0,
    potential_mobility=3.0,
    corners=100.0,
    x_penalty=25.0,
    c_penalty=10.0,
    stability=35.0,
    discs=2.0,
)
LATE = EvaluationWeights(
    mobility=4.0,
    potential_mobility=1.0,
    corners=80.0,
    x_penalty=5.0,
    c_penalty=2.0,
    stability=40.0,
    discs=12.0,
)

#: Score used for decided games, far outside the heuristic range.
WIN_SCORE = 1_000_000.0


def phase_weights(disc_count: int) -> EvaluationWeights:
    """Select weights by the number of discs on the board."""
    if disc_count <= 24:
        return EARLY
    if disc_count <= 48:
        return MID
    return LATE


def evaluate(own: int, opp: int) -> float:
    """Heuristic value of the position for the side owning ``own``.

    Terminal positions (neither side can move) are scored exactly by disc
    difference, scaled beyond any heuristic value so search always prefers
    a true win to a promising position.
    """
    own_moves = legal_moves(own, opp)
    opp_moves = legal_moves(opp, own)
    if own_moves == 0 and opp_moves == 0:
        margin = own.bit_count() - opp.bit_count()
        if margin > 0:
            return WIN_SCORE + margin
        if margin < 0:
            return -WIN_SCORE + margin
        return 0.0

    weights = phase_weights((own | opp).bit_count())
    score = 0.0

    score += weights.mobility * (own_moves.bit_count() - opp_moves.bit_count())

    empty = FULL ^ own ^ opp
    # Frontier discs are a liability: fewer is better, hence the sign flip.
    score -= weights.potential_mobility * (
        frontier(own, opp).bit_count() - frontier(opp, own).bit_count()
    )

    score += weights.corners * ((own & CORNERS).bit_count() - (opp & CORNERS).bit_count())

    # X/C squares next to an *empty* corner hand the corner to the opponent.
    danger_x = _squares_near_empty_corners(empty, X_SQUARES)
    danger_c = _squares_near_empty_corners(empty, C_SQUARES)
    score -= weights.x_penalty * ((own & danger_x).bit_count() - (opp & danger_x).bit_count())
    score -= weights.c_penalty * ((own & danger_c).bit_count() - (opp & danger_c).bit_count())

    score += weights.stability * (
        stable_edge_discs(own, opp).bit_count() - stable_edge_discs(opp, own).bit_count()
    )

    score += weights.discs * (own.bit_count() - opp.bit_count())
    return score


_CORNER_NEIGHBOURHOODS = (
    (1 << 0, (1 << 1) | (1 << 8) | (1 << 9)),
    (1 << 7, (1 << 6) | (1 << 15) | (1 << 14)),
    (1 << 56, (1 << 57) | (1 << 48) | (1 << 49)),
    (1 << 63, (1 << 62) | (1 << 55) | (1 << 54)),
)


def _squares_near_empty_corners(empty: int, squares: int) -> int:
    """Subset of ``squares`` whose governing corner is still empty."""
    dangerous = 0
    for corner, neighbourhood in _CORNER_NEIGHBOURHOODS:
        if empty & corner:
            dangerous |= squares & neighbourhood
    return dangerous
