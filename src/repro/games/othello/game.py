"""Othello as a :class:`~repro.games.base.Game`, with the O1–O3 roots.

Positions are ``(own, opp, color)`` triples of bitboards plus the mover's
color (0 = black, 1 = white).  A player with no legal move passes — the
position has exactly one child with the boards swapped — and the game ends
when neither side can move.

The paper's three experimental trees O1–O3 start from mid-game positions
(its Figure 9) with white to move.  Those exact boards are not recoverable
from the scanned figure, so this module derives three analogous mid-game
roots by playing fixed pseudo-random opening lines from the standard start
(substitution documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...errors import GameError
from .._hashing import splitmix64
from ..zobrist import side_to_move_key, zobrist_table
from . import board as B
from .evaluator import evaluate as evaluate_boards

BLACK = 0
WHITE = 1

#: Zobrist keys: one 64-bit constant per (square, disc color), plus a
#: side-to-move constant.  Module-level so every Othello instance — and
#: every worker process — shares the same keys.
_ZOBRIST = zobrist_table(seed=0x07E110, n_cells=64, n_owners=2)
_SIDE = side_to_move_key(seed=0x07E110)


@dataclass(frozen=True)
class OthelloPosition:
    """Immutable position: mover's discs, opponent's discs, mover's color."""

    own: int
    opp: int
    color: int

    @property
    def black(self) -> int:
        return self.own if self.color == BLACK else self.opp

    @property
    def white(self) -> int:
        return self.own if self.color == WHITE else self.opp

    @property
    def disc_count(self) -> int:
        return (self.own | self.opp).bit_count()


START = OthelloPosition(B.BLACK_START, B.WHITE_START, BLACK)


class Othello:
    """Game adapter for Othello.

    Args:
        root_position: position to search from (defaults to the standard
            opening position with black to move).
    """

    def __init__(self, root_position: OthelloPosition = START):
        self._root = root_position

    def root(self) -> OthelloPosition:
        return self._root

    def children(self, position: OthelloPosition) -> Sequence[OthelloPosition]:
        moves = B.legal_moves(position.own, position.opp)
        other = 1 - position.color
        if moves == 0:
            if B.legal_moves(position.opp, position.own) == 0:
                return ()  # Neither side can move: game over.
            # Forced pass: hand the move to the opponent.
            return (OthelloPosition(position.opp, position.own, other),)
        successors = []
        for move in B.bits(moves):
            own2, opp2 = B.apply_move(position.own, position.opp, move)
            successors.append(OthelloPosition(opp2, own2, other))
        return tuple(successors)

    def evaluate(self, position: OthelloPosition) -> float:
        return evaluate_boards(position.own, position.opp)

    def batch_eval(self, positions: Sequence[OthelloPosition]) -> list[float]:
        """Vectorized evaluation of many positions (numpy fast path).

        Element-wise identical to :meth:`evaluate` — the batch module
        mirrors the scalar evaluator's operation order in float64 — with
        a scalar-loop fallback when numpy is unavailable.
        """
        from . import batch as _batch

        if _batch.HAVE_NUMPY and len(positions) > 0:
            return _batch.evaluate_positions(list(positions))
        return [evaluate_boards(p.own, p.opp) for p in positions]

    @staticmethod
    def hash_key(position: OthelloPosition) -> int:
        """Full Zobrist rehash: XOR of every disc's key plus side to move."""
        key = 0
        for square in B.bits(position.black):
            key ^= _ZOBRIST[square.bit_length() - 1][BLACK]
        for square in B.bits(position.white):
            key ^= _ZOBRIST[square.bit_length() - 1][WHITE]
        if position.color == WHITE:
            key ^= _SIDE
        return key

    @staticmethod
    def hash_after_move(position: OthelloPosition, move: int, key: int) -> int:
        """Key of the child reached by playing ``move`` (a one-bit board).

        Incremental update: place the mover's disc, flip each captured
        disc's owner, toggle side to move.  XOR is involutive, so
        re-applying the identical delta undoes the move.
        """
        flips = B.flips_for_move(position.own, position.opp, move)
        mover, other = position.color, 1 - position.color
        key ^= _ZOBRIST[move.bit_length() - 1][mover]
        for square in B.bits(flips):
            row = _ZOBRIST[square.bit_length() - 1]
            key ^= row[other] ^ row[mover]
        return key ^ _SIDE

    @staticmethod
    def hash_after_pass(key: int) -> int:
        """Key after a forced pass: only the side to move changes."""
        return key ^ _SIDE

    @staticmethod
    def render(position: OthelloPosition) -> str:
        return B.render(position.black, position.white, position.color == BLACK)


def play_opening(plies: int, seed: int) -> OthelloPosition:
    """Play ``plies`` legal moves from the start, chosen by a seeded policy.

    The policy hashes (seed, ply) to pick among the legal moves, so the
    resulting mid-game position is deterministic and always reachable by
    legal play.  Passes do not count as plies.

    Raises:
        GameError: if the game ends before ``plies`` moves are made.
    """
    game = Othello()
    position = START
    state = seed
    for ply in range(plies):
        moves = B.legal_moves(position.own, position.opp)
        other = 1 - position.color
        if moves == 0:
            if B.legal_moves(position.opp, position.own) == 0:
                raise GameError(f"game ended after only {ply} plies")
            position = OthelloPosition(position.opp, position.own, other)
            moves = B.legal_moves(position.own, position.opp)
            other = 1 - position.color
        choices = list(B.bits(moves))
        state = splitmix64(state ^ ply)
        move = choices[state % len(choices)]
        own2, opp2 = B.apply_move(position.own, position.opp, move)
        position = OthelloPosition(opp2, own2, other)
    del game
    return position


def _midgame_root(seed: int) -> OthelloPosition:
    """A mid-game root with white to move, as in the paper's Figure 9."""
    for plies in range(19, 26):
        position = play_opening(plies=plies, seed=seed)
        if position.color == WHITE:
            return position
    raise GameError("could not produce a white-to-move mid-game position")


#: The three Othello experiment roots (stand-ins for the paper's Figure 9).
O1_ROOT = _midgame_root(seed=1001)
O2_ROOT = _midgame_root(seed=2002)
O3_ROOT = _midgame_root(seed=3003)
