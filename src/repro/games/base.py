"""Game abstraction consumed by every search algorithm in this package.

A *game* supplies positions, successor generation, and a static evaluator
(Section 2 of the paper).  Search algorithms never inspect position
internals; they identify nodes by their *path* from the root (a tuple of
child indices), which makes node identity game-independent and lets the
loss analysis (:mod:`repro.analysis.losses`) compare node sets across
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from ..errors import SearchError

#: A position is any hashable object a game defines.  Typed as ``Any``
#: rather than ``Hashable`` as a deliberate gradual-typing seam: each
#: game implements :class:`Game` with its own concrete position class,
#: and search code treats positions as opaque tokens — a union of every
#: game's position type would buy no safety and force casts at each
#: ``children``/``evaluate`` call site.
Position = Any

#: A node's identity: the sequence of child indices from the root.
Path = tuple[int, ...]

#: Value assigned to unexplored nodes; never attainable by an evaluator.
NEG_INF = float("-inf")
POS_INF = float("inf")


@runtime_checkable
class Game(Protocol):
    """Protocol every game substrate implements.

    All values follow the *negmax* convention of Knuth & Moore: the value
    of a position is from the point of view of the player to move, and a
    position's value is the maximum of the negated values of its children.
    """

    def root(self) -> Position:
        """Return the initial position to search from."""
        ...

    def children(self, position: Position) -> Sequence[Position]:
        """Return the successor positions, in the game's natural move order.

        An empty sequence means the game is over at ``position``.
        """
        ...

    def evaluate(self, position: Position) -> float:
        """Statically evaluate ``position`` for the player to move."""
        ...


def hash_key(game: Game, position: Position) -> int:
    """64-bit transposition key for ``position`` — the cache seam.

    Games that define a ``hash_key`` method supply their own keys
    (Zobrist tables with incremental update for Othello and Connect
    Four, counter-based path hashing for the synthetic trees); any other
    game falls back to mixing Python's structural hash through
    SplitMix64.  The fallback is deterministic across worker *processes*
    only for positions built from integers — every game in this package
    qualifies — because CPython salts ``str``/``bytes`` hashing per
    process.
    """
    # Imported here: ``_hashing`` imports ``Path`` from this module.
    from ._hashing import splitmix64

    method = getattr(game, "hash_key", None)
    if method is not None:
        return int(method(position))
    return splitmix64(hash(position) & ((1 << 64) - 1))


def batch_eval(game: Game, positions: Sequence[Position]) -> list[float]:
    """Statically evaluate many positions at once — the batching seam.

    Games that define a ``batch_eval`` method supply a vectorized
    evaluator (bitboard arrays under numpy for Othello and Connect Four);
    any other game falls back to a scalar loop.  Either way the result is
    element-wise identical to calling :meth:`Game.evaluate` on each
    position — pinned bit-for-bit by the differential battery in
    ``tests/test_eval_differential.py`` — so enabling batching can never
    change a search's value, only its cost accounting.
    """
    method = getattr(game, "batch_eval", None)
    if method is not None:
        return list(method(positions))
    return [game.evaluate(position) for position in positions]


@dataclass(frozen=True)
class SearchProblem:
    """A game bound to a search horizon — the unit every search consumes.

    Attributes:
        game: the underlying game.
        depth: maximum ply depth; nodes at this depth are leaves.
        sort_below_root: plies (from the root, exclusive) at which children
            are ordered by static value before search.  The paper sorts
            Othello children above ply five and never sorts below
            (Section 7); a value of 0 disables ordering entirely.
    """

    game: Game
    depth: int
    sort_below_root: int = 0

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise SearchError("search depth must be non-negative")
        if self.sort_below_root < 0:
            raise SearchError("sort_below_root must be non-negative")

    def is_horizon(self, ply: int) -> bool:
        """True when ``ply`` is at or beyond the depth horizon."""
        return ply >= self.depth

    def should_sort(self, ply: int) -> bool:
        """True when children generated at ``ply`` should be pre-ordered."""
        return ply < self.sort_below_root


@dataclass
class Line:
    """A principal variation: the move path search believes is optimal."""

    moves: list[int] = field(default_factory=list)

    def prepend(self, move: int) -> "Line":
        return Line([move, *self.moves])

    def __iter__(self) -> Iterator[int]:
        return iter(self.moves)

    def __len__(self) -> int:
        return len(self.moves)


class RootedGame:
    """A view of ``game`` re-rooted at an arbitrary position.

    Parallel algorithms hand whole subtrees to serial searches (the
    paper's *serial depth*, Table 3); this wrapper lets those searches
    run unchanged on the subtree.
    """

    def __init__(self, game: Game, root_position: Position) -> None:
        self._game = game
        self._root = root_position

    def root(self) -> Position:
        return self._root

    def children(self, position: Position) -> Sequence[Position]:
        return self._game.children(position)

    def evaluate(self, position: Position) -> float:
        return self._game.evaluate(position)

    def hash_key(self, position: Position) -> int:
        """Forward to the underlying game so a subtree search rooted at an
        arbitrary position produces the same keys as the full search —
        required for the serial-depth cutover to share one table with the
        parallel layer."""
        return hash_key(self._game, position)

    def batch_eval(self, positions: Sequence[Position]) -> list[float]:
        """Forward to the underlying game so serial subtree searches keep
        the vectorized fast path (the serial-depth cutover is where the
        horizon frontiers — hence the batches — actually live)."""
        return batch_eval(self._game, positions)


def subproblem(problem: SearchProblem, position: Position, ply: int) -> SearchProblem:
    """The search problem for the subtree rooted at ``position`` at ``ply``."""
    if ply > problem.depth:
        raise SearchError("subproblem ply exceeds the search horizon")
    return SearchProblem(
        game=RootedGame(problem.game, position),
        depth=problem.depth - ply,
        sort_below_root=max(0, problem.sort_below_root - ply),
    )


def follow_path(game: Game, path: Path) -> Position:
    """Resolve a node path to its concrete position.

    Raises:
        SearchError: if the path indexes a nonexistent child.
    """
    position = game.root()
    for index in path:
        successors = game.children(position)
        if index >= len(successors):
            raise SearchError(f"path {path!r} leaves the tree at index {index}")
        position = successors[index]
    return position
