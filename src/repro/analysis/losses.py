"""Efficiency-loss decomposition (paper Section 3.1).

A parallel run's shortfall from perfect efficiency is split into:

* **starvation loss** — processor-time blocked on an empty problem heap
  (plus tail idleness after a processor's last task);
* **interference loss** — processor-time blocked on shared-structure
  locks;
* **speculative loss** — work spent on nodes that serial alpha-beta (the
  reference algorithm, per the paper's definition of mandatory work)
  would not have examined.

The timing losses come from the simulator report; speculative loss is
computed by comparing node traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..games.base import Path
from ..parallel.base import ParallelResult
from ..search.stats import SearchStats


@dataclass(frozen=True)
class WorkClassification:
    """Node-set comparison of a parallel run against the serial reference."""

    mandatory_examined: int
    speculative_examined: int
    reference_total: int
    mandatory_missed: int

    @property
    def parallel_total(self) -> int:
        return self.mandatory_examined + self.speculative_examined

    @property
    def speculative_fraction(self) -> float:
        """Share of the parallel run's nodes that were speculative."""
        if self.parallel_total == 0:
            return 0.0
        return self.speculative_examined / self.parallel_total

    @property
    def expansion_ratio(self) -> float:
        """Parallel nodes over reference nodes (>1 means extra work).

        Below 1 is possible: a parallel run can achieve cutoffs serial
        alpha-beta does not, the paper's "greater than perfect
        efficiency" anomaly.
        """
        if self.reference_total == 0:
            return 1.0
        return self.parallel_total / self.reference_total


def classify_work(reference: set[Path], parallel: set[Path]) -> WorkClassification:
    """Split the parallel run's visited nodes by the reference node set."""
    mandatory = parallel & reference
    return WorkClassification(
        mandatory_examined=len(mandatory),
        speculative_examined=len(parallel) - len(mandatory),
        reference_total=len(reference),
        mandatory_missed=len(reference) - len(mandatory),
    )


@dataclass(frozen=True)
class LossReport:
    """Full Section-3.1 decomposition for one parallel run."""

    n_processors: int
    efficiency: float
    starvation_fraction: float
    interference_fraction: float
    work: WorkClassification

    @property
    def speculative_fraction(self) -> float:
        return self.work.speculative_fraction


def loss_report(
    result: ParallelResult,
    serial_time: float,
    reference_stats: SearchStats,
) -> LossReport:
    """Build a loss report from a traced parallel run.

    Args:
        result: a parallel run executed with ``trace=True``.
        serial_time: simulated cost of the best serial algorithm.
        reference_stats: traced stats of the reference serial alpha-beta.

    Raises:
        ValueError: if either side was run without tracing.
    """
    if result.stats.trace is None:
        raise ValueError("parallel run must be executed with trace=True")
    if reference_stats.trace is None:
        raise ValueError("reference stats must be collected with a trace")
    return LossReport(
        n_processors=result.n_processors,
        efficiency=result.efficiency(serial_time),
        starvation_fraction=result.report.starvation_fraction(),
        interference_fraction=result.report.interference_fraction(),
        work=classify_work(reference_stats.trace, result.stats.trace),
    )
