"""Workload characterization: branching profiles and ordering quality.

The paper's Section 4.4 quotes Marsland's definition of a *strongly
ordered* tree: the first branch is best at least 70% of the time, and
the best branch is in the first quarter at least 90% of the time.  This
module measures exactly those statistics (plus branching-factor
profiles) for any search problem, so workloads can be placed on the
ordered↔random spectrum the paper's algorithms care about.

Measurement searches the full subtree below sampled interior nodes, so
use modest depths; the Table 3 characterization benchmark samples the
upper plies only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..games.base import Position, SearchProblem


@dataclass(frozen=True)
class OrderingQuality:
    """Marsland's strong-ordering statistics over sampled interior nodes."""

    nodes_sampled: int
    first_is_best: float  # fraction where child 0 is the true best
    best_in_first_quarter: float

    @property
    def strongly_ordered(self) -> bool:
        """Marsland's (arbitrary, the paper notes) 70% / 90% thresholds."""
        return self.first_is_best >= 0.70 and self.best_in_first_quarter >= 0.90


@dataclass(frozen=True)
class BranchingProfile:
    """Branching-factor statistics over the sampled upper tree."""

    interior_nodes: int
    min_branching: int
    max_branching: int
    mean_branching: float


def _negamax_value(problem: SearchProblem, position: Position, ply: int) -> float:
    children = () if problem.is_horizon(ply) else problem.game.children(position)
    if not children:
        return problem.game.evaluate(position)
    return max(-_negamax_value(problem, child, ply + 1) for child in children)


def ordering_quality(
    problem: SearchProblem, sample_plies: int = 2, static_sort: bool = False
) -> OrderingQuality:
    """Measure strong-ordering statistics over all nodes in the top plies.

    A node's children are ranked by their *true* (negmax) values; ties
    count in the move order's favour, as Marsland's informal definition
    implies.  With ``static_sort`` the children are first ordered by the
    game's static evaluator — measuring the order a sorting search would
    actually visit, i.e. the evaluator's predictive quality.
    """
    sampled = 0
    first_best = 0
    in_quarter = 0

    def visit(position: Position, ply: int) -> None:
        nonlocal sampled, first_best, in_quarter
        if ply >= sample_plies or problem.is_horizon(ply):
            return
        children = list(problem.game.children(position))
        if static_sort and len(children) >= 2:
            children.sort(key=problem.game.evaluate)
        if len(children) >= 2:
            values = [_negamax_value(problem, child, ply + 1) for child in children]
            best_value = min(values)  # lowest child value is best for parent
            best_index = values.index(best_value)
            sampled += 1
            if values[0] == best_value:
                first_best += 1
            quarter = max(1, (len(children) + 3) // 4)
            if best_index < quarter or min(values[:quarter]) == best_value:
                in_quarter += 1
        for child in children:
            visit(child, ply + 1)

    visit(problem.game.root(), 0)
    if sampled == 0:
        return OrderingQuality(0, 1.0, 1.0)
    return OrderingQuality(
        nodes_sampled=sampled,
        first_is_best=first_best / sampled,
        best_in_first_quarter=in_quarter / sampled,
    )


def branching_profile(problem: SearchProblem, sample_plies: int = 3) -> BranchingProfile:
    """Branching-factor statistics over the top ``sample_plies`` plies."""
    counts: list[int] = []

    def visit(position: Position, ply: int) -> None:
        if ply >= sample_plies or problem.is_horizon(ply):
            return
        children = problem.game.children(position)
        if children:
            counts.append(len(children))
        for child in children:
            visit(child, ply + 1)

    visit(problem.game.root(), 0)
    if not counts:
        return BranchingProfile(0, 0, 0, 0.0)
    return BranchingProfile(
        interior_nodes=len(counts),
        min_branching=min(counts),
        max_branching=max(counts),
        mean_branching=sum(counts) / len(counts),
    )
