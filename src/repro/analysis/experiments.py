"""Experiment runners that regenerate the paper's figures and tables.

Each paper exhibit has a function here producing the same rows/series the
paper reports; the benchmark suite and the CLI are thin wrappers over
these.  Results are memoized per (scale, tree, processors) within the
process so that Figure 10/12 (and 11/13) pairs, which share runs, do not
recompute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.er_parallel import ERConfig, parallel_er
from ..core.serial_er import er_search
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..parallel.base import ParallelResult
from ..search.alphabeta import alphabeta
from ..search.stats import SearchResult, SearchStats
from ..workloads.suite import PROCESSOR_COUNTS, TreeSpec, table3_suite


@dataclass(frozen=True)
class SerialBaselines:
    """Both serial algorithms on one tree; speedups are relative to the
    faster one (Fishburn's definition, paper Section 3)."""

    alphabeta: SearchResult
    er: SearchResult

    @property
    def best_time(self) -> float:
        return min(self.alphabeta.cost, self.er.cost)

    @property
    def best_name(self) -> str:
        return "alphabeta" if self.alphabeta.cost <= self.er.cost else "er"

    @property
    def alphabeta_efficiency(self) -> float:
        """The 'efficiency of serial alpha-beta' line of Figures 10-11."""
        return self.best_time / self.alphabeta.cost


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count of an efficiency curve."""

    n_processors: int
    sim_time: float
    speedup: float
    efficiency: float
    nodes_generated: int
    nodes_examined: int
    extras: dict


@dataclass(frozen=True)
class ScalingCurve:
    """Figures 10-13 data for one tree."""

    tree: str
    serial: SerialBaselines
    points: tuple[ScalingPoint, ...]

    def efficiency_series(self) -> list[tuple[int, float]]:
        return [(p.n_processors, p.efficiency) for p in self.points]

    def nodes_series(self) -> list[tuple[int, int]]:
        return [(p.n_processors, p.nodes_generated) for p in self.points]


def serial_baselines(
    spec: TreeSpec, *, cost_model: CostModel = DEFAULT_COST_MODEL
) -> SerialBaselines:
    """Run serial alpha-beta (with deep cutoffs) and serial ER on a tree."""
    ab = alphabeta(spec.problem(), cost_model=cost_model)
    er = er_search(spec.problem(), cost_model=cost_model)
    if ab.value != er.value:
        raise AssertionError(
            f"serial algorithms disagree on {spec.name}: {ab.value} vs {er.value}"
        )
    return SerialBaselines(alphabeta=ab, er=er)


def er_config_for(spec: TreeSpec, **overrides) -> ERConfig:
    """The parallel-ER configuration Table 3 prescribes for a tree."""
    return ERConfig(serial_depth=spec.serial_depth, **overrides)


def er_scaling_curve(
    spec: TreeSpec,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: Optional[ERConfig] = None,
) -> ScalingCurve:
    """Run parallel ER across processor counts on one tree."""
    if config is None:
        config = er_config_for(spec)
    serial = serial_baselines(spec, cost_model=cost_model)
    points = []
    for n in processor_counts:
        result = parallel_er(spec.problem(), n, config=config, cost_model=cost_model)
        if result.value != serial.alphabeta.value:
            raise AssertionError(
                f"parallel ER wrong on {spec.name}@{n}: "
                f"{result.value} vs {serial.alphabeta.value}"
            )
        points.append(
            ScalingPoint(
                n_processors=n,
                sim_time=result.sim_time,
                speedup=result.speedup(serial.best_time),
                efficiency=result.efficiency(serial.best_time),
                nodes_generated=result.stats.nodes_generated,
                nodes_examined=result.stats.nodes_examined,
                extras=result.extras,
            )
        )
    return ScalingCurve(tree=spec.name, serial=serial, points=tuple(points))


# -- memoized per-figure entry points ----------------------------------------

_CURVE_CACHE: dict[tuple, ScalingCurve] = {}


def cached_curve(
    scale: str,
    tree: str,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ScalingCurve:
    key = (scale, tree, tuple(processor_counts))
    if key not in _CURVE_CACHE:
        spec = table3_suite(scale)[tree]
        _CURVE_CACHE[key] = er_scaling_curve(
            spec, processor_counts, cost_model=cost_model
        )
    return _CURVE_CACHE[key]


def figure10(scale: str = "reduced", processor_counts=PROCESSOR_COUNTS) -> dict[str, ScalingCurve]:
    """Efficiency of ER on the Othello trees (paper Figure 10)."""
    return {t: cached_curve(scale, t, processor_counts) for t in ("O1", "O2", "O3")}


def figure11(scale: str = "reduced", processor_counts=PROCESSOR_COUNTS) -> dict[str, ScalingCurve]:
    """Efficiency of ER on the random trees (paper Figure 11)."""
    return {t: cached_curve(scale, t, processor_counts) for t in ("R1", "R2", "R3")}


def figure12(scale: str = "reduced", processor_counts=PROCESSOR_COUNTS) -> dict[str, ScalingCurve]:
    """Nodes generated on the Othello trees (paper Figure 12)."""
    return figure10(scale, processor_counts)


def figure13(scale: str = "reduced", processor_counts=PROCESSOR_COUNTS) -> dict[str, ScalingCurve]:
    """Nodes generated on the random trees (paper Figure 13)."""
    return figure11(scale, processor_counts)


# -- text rendering -----------------------------------------------------------


def format_efficiency_table(curves: dict[str, ScalingCurve]) -> str:
    """Render Figure 10/11 data as the rows the paper plots."""
    counts = [p.n_processors for p in next(iter(curves.values())).points]
    header = "tree  serial-AB-eff  " + "  ".join(f"P={n:<4d}" for n in counts)
    lines = [header]
    for name, curve in sorted(curves.items()):
        cells = "  ".join(f"{p.efficiency:6.3f}" for p in curve.points)
        lines.append(f"{name:<4s}  {curve.serial.alphabeta_efficiency:13.3f}  {cells}")
    return "\n".join(lines)


def format_nodes_table(curves: dict[str, ScalingCurve]) -> str:
    """Render Figure 12/13 data: nodes generated per algorithm/processors."""
    counts = [p.n_processors for p in next(iter(curves.values())).points]
    header = (
        "tree  AB-nodes  serialER-nodes  " + "  ".join(f"P={n:<8d}" for n in counts)
    )
    lines = [header]
    for name, curve in sorted(curves.items()):
        cells = "  ".join(f"{p.nodes_generated:10d}" for p in curve.points)
        lines.append(
            f"{name:<4s}  {curve.serial.alphabeta.stats.nodes_generated:8d}  "
            f"{curve.serial.er.stats.nodes_generated:14d}  {cells}"
        )
    return "\n".join(lines)


def format_speedup_summary(curves: dict[str, ScalingCurve]) -> str:
    """The paper's headline numbers: speedup and efficiency at 16."""
    lines = []
    for name, curve in sorted(curves.items()):
        last = curve.points[-1]
        lines.append(
            f"{name}: speedup {last.speedup:.1f} at P={last.n_processors} "
            f"(efficiency {last.efficiency:.2f}; best serial: {curve.serial.best_name})"
        )
    return "\n".join(lines)
