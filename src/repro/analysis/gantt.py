"""ASCII Gantt charts of simulated parallel schedules.

Renders an engine run recorded with ``record_timeline=True`` as one text
row per processor, showing at a glance *where* the Section 3.1 losses
live: the starving tail of a refutation chain, the lock convoy at a hot
combine, the idle processors before speculation kicks in.

Legend: ``#`` busy · ``.`` starving (empty heap) · ``!`` blocked on a
lock · `` `` (space) idle after the processor's last event.

For an interactive, zoomable view of the same schedule — plus queue
depths and node-lifecycle instants — export a Chrome trace with
``repro-gametree trace`` (:mod:`repro.obs.export`) and load it in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..sim.metrics import ProcessorMetrics, SimReport

_GLYPHS = {"busy": "#", "starve": ".", "lock": "!"}
_PRECEDENCE = {"lock": 3, "busy": 2, "starve": 1}


def _row(metrics: ProcessorMetrics, makespan: float, width: int) -> str:
    if metrics.timeline is None:
        raise SimulationError(
            "no timeline recorded; run with record_timeline=True"
        )
    if makespan <= 0:
        return " " * width
    # Each cell shows the state that occupied the majority of its time
    # slice, so a 1-unit lock wait cannot paint over a 500-unit slice.
    bucket = makespan / width
    occupancy = [{"busy": 0.0, "starve": 0.0, "lock": 0.0} for _ in range(width)]
    for kind, start, end in metrics.timeline:
        first = min(width - 1, int(start / bucket))
        last = min(width - 1, int(max(start, end - 1e-12) / bucket))
        for i in range(first, last + 1):
            lo = max(start, i * bucket)
            hi = min(end, (i + 1) * bucket)
            if hi > lo:
                occupancy[i][kind] += hi - lo
    cells = []
    for slots in occupancy:
        total = sum(slots.values())
        if total < bucket * 0.25:
            cells.append(" ")
            continue
        # Majority state, ties broken toward the louder signal.
        kind = max(slots, key=lambda k: (slots[k], _PRECEDENCE[k]))
        cells.append(_GLYPHS[kind])
    return "".join(cells)


def render_gantt(report: SimReport, width: int = 72) -> str:
    """Render every processor's schedule as one line of ``width`` chars."""
    if width < 8:
        raise SimulationError("gantt width must be at least 8 characters")
    lines = [
        f"t=0 {'-' * (width - 8)} t={report.makespan:.0f}",
    ]
    for pid, metrics in enumerate(report.processors):
        lines.append(f"P{pid:<2d} {_row(metrics, report.makespan, width)}")
    lines.append("legend: # busy   . starving   ! lock-blocked   (blank) finished")
    return "\n".join(lines)
