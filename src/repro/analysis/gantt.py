"""ASCII Gantt charts of simulated parallel schedules.

Renders an engine run recorded with ``record_timeline=True`` as one text
row per processor, showing at a glance *where* the Section 3.1 losses
live: the starving tail of a refutation chain, the lock convoy at a hot
combine, the idle processors before speculation kicks in.

Legend: ``#`` busy · ``.`` starving (empty heap) · ``!`` blocked on a
lock · `` `` (space) idle after the processor's last event.

With a :class:`~repro.obs.critpath.CriticalPath` supplied, every
processor row gains a marker row underneath: ``^`` under each time
slice the critical path runs through on that processor, so the chain of
work that bounds the makespan is visible hopping between lanes.

For an interactive, zoomable view of the same schedule — plus queue
depths and node-lifecycle instants — export a Chrome trace with
``repro-gametree trace`` (:mod:`repro.obs.export`) and load it in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..obs.critpath import CriticalPath
from ..sim.metrics import ProcessorMetrics, SimReport

_GLYPHS = {"busy": "#", "starve": ".", "lock": "!"}
_PRECEDENCE = {"lock": 3, "busy": 2, "starve": 1}


def _row(metrics: ProcessorMetrics, makespan: float, width: int) -> str:
    if metrics.timeline is None:
        raise SimulationError(
            "no timeline recorded; run with record_timeline=True"
        )
    if makespan <= 0:
        return " " * width
    # Each cell shows the state that occupied the majority of its time
    # slice, so a 1-unit lock wait cannot paint over a 500-unit slice.
    bucket = makespan / width
    occupancy = [{"busy": 0.0, "starve": 0.0, "lock": 0.0} for _ in range(width)]
    for kind, start, end in metrics.timeline:
        first = min(width - 1, int(start / bucket))
        last = min(width - 1, int(max(start, end - 1e-12) / bucket))
        for i in range(first, last + 1):
            lo = max(start, i * bucket)
            hi = min(end, (i + 1) * bucket)
            if hi > lo:
                occupancy[i][kind] += hi - lo
    cells = []
    for slots in occupancy:
        total = sum(slots.values())
        if total < bucket * 0.25:
            cells.append(" ")
            continue
        # Majority state, ties broken toward the louder signal.
        kind = max(slots, key=lambda k: (slots[k], _PRECEDENCE[k]))
        cells.append(_GLYPHS[kind])
    return "".join(cells)


def _critpath_row(critpath: CriticalPath, pid: int, makespan: float, width: int) -> str:
    """``^`` under every time slice the critical path credits to ``pid``.

    Any-overlap bucketing (unlike the majority-vote schedule cells): a
    critical segment shorter than one bucket still marks it, because a
    missing marker would misread as "the path skips this lane here".
    """
    if makespan <= 0:
        return " " * width
    bucket = makespan / width
    cells = [" "] * width
    for step in critpath.steps:
        iv = step.interval
        if iv.wid != pid or step.credit <= 0:
            continue
        start = iv.end - step.credit
        first = min(width - 1, int(start / bucket))
        last = min(width - 1, int(max(start, iv.end - 1e-12) / bucket))
        for i in range(first, last + 1):
            cells[i] = "^"
    return "".join(cells)


def render_gantt(
    report: SimReport, width: int = 72, *, critpath: Optional[CriticalPath] = None
) -> str:
    """Render every processor's schedule as one line of ``width`` chars.

    Args:
        report: engine report recorded with ``record_timeline=True``.
        width: chart width in characters.
        critpath: extracted critical path to overlay — adds one ``^``
            marker row under each processor row.
    """
    if width < 8:
        raise SimulationError("gantt width must be at least 8 characters")
    lines = [
        f"t=0 {'-' * (width - 8)} t={report.makespan:.0f}",
    ]
    for pid, metrics in enumerate(report.processors):
        lines.append(f"P{pid:<2d} {_row(metrics, report.makespan, width)}")
        if critpath is not None:
            lines.append(f"    {_critpath_row(critpath, pid, report.makespan, width)}")
    legend = "legend: # busy   . starving   ! lock-blocked   (blank) finished"
    if critpath is not None:
        legend += "   ^ critical path"
    lines.append(legend)
    return "\n".join(lines)
