"""Loss decomposition and paper-figure experiment runners."""

from .experiments import (
    ScalingCurve,
    ScalingPoint,
    SerialBaselines,
    cached_curve,
    er_config_for,
    er_scaling_curve,
    figure10,
    figure11,
    figure12,
    figure13,
    format_efficiency_table,
    format_nodes_table,
    format_speedup_summary,
    serial_baselines,
)
from .gantt import render_gantt
from .report import ReproductionReport, build_report
from .losses import LossReport, WorkClassification, classify_work, loss_report
from .tree_stats import (
    BranchingProfile,
    OrderingQuality,
    branching_profile,
    ordering_quality,
)

__all__ = [
    "SerialBaselines",
    "ScalingCurve",
    "ScalingPoint",
    "serial_baselines",
    "er_scaling_curve",
    "er_config_for",
    "cached_curve",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "format_efficiency_table",
    "format_nodes_table",
    "format_speedup_summary",
    "LossReport",
    "WorkClassification",
    "classify_work",
    "loss_report",
    "OrderingQuality",
    "BranchingProfile",
    "ordering_quality",
    "branching_profile",
    "render_gantt",
    "build_report",
    "ReproductionReport",
]
