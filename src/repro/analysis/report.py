"""One-shot reproduction report: every headline exhibit, regenerated.

``build_report()`` runs the core experiments (serial comparison, ER
scaling, loss decomposition, mechanism ablation) at a chosen scale and
renders a single markdown document — the programmatic counterpart of
EXPERIMENTS.md, for checking a working tree against the paper in one
command (``repro-gametree report``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.er_parallel import ERConfig, parallel_er
from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..workloads.suite import PROCESSOR_COUNTS, table3_suite
from .experiments import ScalingCurve, er_config_for, er_scaling_curve, serial_baselines

#: Paper reference points quoted in the report (Section 7).
PAPER_RANDOM_EFF_16 = (0.61, 0.70)
PAPER_OTHELLO_EFF_16 = (0.42, 0.66)


@dataclass(frozen=True)
class ReproductionReport:
    """The rendered report plus the raw curves behind it."""

    markdown: str
    curves: dict[str, ScalingCurve]


def _scaling_section(curves: dict[str, ScalingCurve]) -> list[str]:
    lines = [
        "## Parallel ER scaling (Figures 10-13)",
        "",
        "| tree | best serial | speedup@16 | eff@16 | paper eff@16 | nodes ER@16/serial |",
        "|---|---|---|---|---|---|",
    ]
    for name, curve in sorted(curves.items()):
        last = curve.points[-1]
        low, high = (
            PAPER_OTHELLO_EFF_16 if name.startswith("O") else PAPER_RANDOM_EFF_16
        )
        ratio = last.nodes_generated / max(1, curve.serial.er.stats.nodes_generated)
        lines.append(
            f"| {name} | {curve.serial.best_name} | {last.speedup:.1f} | "
            f"{last.efficiency:.2f} | {low:.2f}-{high:.2f} | {ratio:.2f} |"
        )
    return lines


def _mechanism_section(scale: str, cost_model: CostModel) -> list[str]:
    spec = table3_suite(scale)["R1"]
    base = serial_baselines(spec, cost_model=cost_model)
    variants = {
        "all mechanisms": {},
        "no speculation": dict(early_choice=False, multiple_e_children=False),
    }
    lines = [
        "## Speculation ablation (Sections 5/8), tree R1 at 16 processors",
        "",
        "| variant | speedup | starvation | nodes |",
        "|---|---|---|---|",
    ]
    for name, flags in variants.items():
        config = ERConfig(serial_depth=spec.serial_depth, **flags)
        result = parallel_er(spec.problem(), 16, config=config, cost_model=cost_model)
        lines.append(
            f"| {name} | {result.speedup(base.best_time):.2f} | "
            f"{result.report.starvation_fraction():.2f} | "
            f"{result.stats.nodes_generated} |"
        )
    return lines


def build_report(
    scale: str = "reduced",
    trees: Sequence[str] = ("R1", "R2", "R3", "O1", "O2", "O3"),
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ReproductionReport:
    """Run the headline experiments and render the markdown report."""
    suite = table3_suite(scale)
    curves: dict[str, ScalingCurve] = {}
    for tree in trees:
        spec = suite[tree]
        curves[tree] = er_scaling_curve(
            spec, processor_counts, cost_model=cost_model, config=er_config_for(spec)
        )

    lines = [
        "# Reproduction report — Searching Game Trees in Parallel (ICPP 1990)",
        "",
        f"Workload scale: **{scale}**; processor sweep: "
        f"{', '.join(str(n) for n in processor_counts)}.",
        "",
        "## Serial algorithms",
        "",
        "| tree | AB cost | ER cost | ER/AB | best |",
        "|---|---|---|---|---|",
    ]
    for name, curve in sorted(curves.items()):
        ab, er = curve.serial.alphabeta, curve.serial.er
        lines.append(
            f"| {name} | {ab.cost:.0f} | {er.cost:.0f} | "
            f"{er.cost / ab.cost:.2f} | {curve.serial.best_name} |"
        )
    lines.append("")
    lines.extend(_scaling_section(curves))
    lines.append("")
    lines.extend(_mechanism_section(scale, cost_model))
    lines.append("")
    lines.append(
        "Paper reference (Section 7): random trees speedup 9.8-11.2 at 16 "
        "processors, Othello trees 6.7-10.6; see EXPERIMENTS.md for the "
        "full paper-vs-measured record."
    )
    return ReproductionReport(markdown="\n".join(lines), curves=curves)
