"""Synchronization objects for the discrete-event engine.

These exist for *timing*, not memory safety: worker code between yields is
atomic by construction, but the paper's efficiency losses include real
contention for the shared problem heap and tree (Section 7), so workers
hold these locks across the simulated duration of their critical sections
and the engine accounts the blocked time as interference loss.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..errors import SimulationError


class SimLock:
    """A FIFO mutex in simulated time.

    Created standalone; the engine attaches itself when a worker first
    touches the lock.  ``holder`` is a worker id or ``None``.
    """

    def __init__(self, name: str):
        self.name = name
        self.holder: Optional[int] = None
        self.waiters: deque[int] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimLock({self.name!r}, holder={self.holder}, waiting={len(self.waiters)})"


class WorkSignal:
    """A broadcast condition used for "the problem heap is empty" waits.

    Workers block on it via :class:`~repro.sim.ops.WaitWork`; any worker
    that adds work (or declares termination) calls :meth:`notify_all`,
    which wakes every waiter at the current simulated time.  Waits are
    level-triggered on the waiter side: woken workers re-check the heap,
    so spurious wakeups are harmless.
    """

    def __init__(self, name: str = "work"):
        self.name = name
        self.waiters: deque[int] = deque()
        self.version = 0
        self._engine = None

    def _bind(self, engine) -> None:
        if self._engine is None:
            self._engine = engine
        elif self._engine is not engine:
            raise SimulationError(f"signal {self.name!r} used by two engines")

    def notify_all(self) -> None:
        """Wake every blocked waiter at the engine's current time."""
        self.version += 1
        if self._engine is None:
            return  # nothing ever waited
        while self.waiters:
            self._engine._wake_from_signal(self.waiters.popleft(), self)
