"""Synchronization objects for the discrete-event engine.

These exist for *timing*, not memory safety: worker code between yields is
atomic by construction, but the paper's efficiency losses include real
contention for the shared problem heap and tree (Section 7), so workers
hold these locks across the simulated duration of their critical sections
and the engine accounts the blocked time as interference loss.

:class:`LockOrderGraph` is the deadlock-prevention side of the story: the
engine (and the threaded driver) record every nested acquisition in one
global order graph and abort the run on the first inversion — the same
rule :mod:`repro.verify.racedetect` applies offline to recorded traces.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import SimulationError
from ..verify import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Engine


class SimLock:
    """A FIFO mutex in simulated time.

    Created standalone; the engine attaches itself when a worker first
    touches the lock.  ``holder`` is a worker id or ``None``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.holder: Optional[int] = None
        self.waiters: deque[int] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimLock({self.name!r}, holder={self.holder}, waiting={len(self.waiters)})"


class WorkSignal:
    """A broadcast condition used for "the problem heap is empty" waits.

    Workers block on it via :class:`~repro.sim.ops.WaitWork`; any worker
    that adds work (or declares termination) calls :meth:`notify_all`,
    which wakes every waiter at the current simulated time.  Waits are
    level-triggered on the waiter side: woken workers re-check the heap,
    so spurious wakeups are harmless.
    """

    def __init__(self, name: str = "work") -> None:
        self.name = name
        self.waiters: deque[int] = deque()
        self.version = 0
        self._engine: Optional["Engine"] = None

    def _bind(self, engine: "Engine") -> None:
        if self._engine is None:
            self._engine = engine
        elif self._engine is not engine:
            raise SimulationError(f"signal {self.name!r} used by two engines")

    def notify_all(self) -> None:
        """Wake every blocked waiter at the engine's current time.

        The wake-ups run inside the notifying worker's turn, so the
        engine attributes each one to that worker — the starvation
        hand-off edge :mod:`repro.obs.critpath` follows when a work wait
        sits on the critical path (lock grants are attributed to the
        releasing worker the same way).
        """
        self.version += 1
        if _trace.CURRENT is not None:
            _trace.on_notify(self.name, self.version)
        if self._engine is None:
            return  # nothing ever waited
        while self.waiters:
            self._engine._wake_from_signal(self.waiters.popleft(), self)


class LockOrderGraph:
    """Global record of nested lock acquisitions.

    ``record(held, acquiring)`` adds one edge ``prior -> acquiring`` per
    lock currently held and returns the name of a held lock that has
    already been observed nested the *other* way round, or ``None`` when
    the acquisition is consistent.  Two locks ever taken in both orders
    can deadlock under some interleaving even if this run got away with
    it, so callers abort (the engine raises
    :class:`~repro.errors.LockOrderError`) rather than merely warn.
    """

    def __init__(self) -> None:
        self._after: dict[str, set[str]] = {}

    def _reaches(self, start: str, goal: str) -> bool:
        stack, seen = [start], {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for nxt in self._after.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def record(self, held: Iterable[str], acquiring: str) -> Optional[str]:
        conflict: Optional[str] = None
        for prior in held:
            if prior == acquiring:
                continue
            if conflict is None and self._reaches(acquiring, prior):
                conflict = prior
            self._after.setdefault(prior, set()).add(acquiring)
        return conflict
