"""Deterministic discrete-event engine driving simulated processors.

Workers are generators yielding :mod:`~repro.sim.ops` operations; the
engine interleaves them on a single event queue keyed ``(time, seq)``, so
every run is exactly reproducible — the substitution for the paper's
Sequent Symmetry (DESIGN.md §1).  Python executed between two yields is
atomic in simulated time; locks exist to *charge* contention, and blocked
time is split into interference (lock waits) and starvation (work waits).

The engine also polices the synchronization protocol as it runs: it
tracks each processor's held locks, aborts with
:class:`~repro.errors.LockOrderError` on the first acquisition-order
inversion (see :class:`~repro.sim.locks.LockOrderGraph`), and — when a
:mod:`repro.verify.trace` recorder is installed — emits the
acquire/release/wait/wake event stream the offline race detector
consumes.  With a :mod:`repro.obs.critpath` recorder installed it also
captures every charged interval together with its dependency edge
(program order, lock grant, work wake-up), which is exactly the DAG the
critical-path walker needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, Iterable

from ..errors import DeadlockError, LockOrderError, SimulationError, WorkerProtocolError
from ..obs import critpath as _cp
from ..obs import events as _obs
from ..verify import trace as _trace
from .locks import LockOrderGraph, SimLock, WorkSignal
from .metrics import ProcessorMetrics, SimReport
from .ops import Acquire, Compute, Op, Release, WaitWork

Worker = Generator[Op, None, None]


class _State(Enum):
    READY = "ready"
    BLOCKED_LOCK = "blocked-lock"
    BLOCKED_WORK = "blocked-work"
    FINISHED = "finished"


@dataclass
class _Proc:
    worker: Worker
    state: _State = _State.READY
    blocked_since: float = 0.0
    metrics: ProcessorMetrics = field(default_factory=ProcessorMetrics)
    held: list[str] = field(default_factory=list)


class Engine:
    """Runs a fixed set of worker generators to completion.

    Args:
        workers: one generator per simulated processor.
        max_events: safety valve against runaway zero-cost loops.
    """

    def __init__(
        self,
        workers: Iterable[Worker],
        max_events: int = 50_000_000,
        record_timeline: bool = False,
    ) -> None:
        self._procs = [_Proc(worker=w) for w in workers]
        if not self._procs:
            raise SimulationError("engine needs at least one worker")
        # An installed telemetry bus implies timelines: the Perfetto
        # exporter renders them as the per-processor schedule tracks.
        if record_timeline or _obs.CURRENT is not None:
            for proc in self._procs:
                proc.metrics.timeline = []
        self._max_events = max_events
        self.now = 0.0
        #: Worker currently driven by the run loop; grant/wake calls made
        #: while it executes record it as the hand-off source (the
        #: dependency edge the critical-path walker follows).
        self._current = -1
        self._seq = 0
        self._queue: list[tuple[float, int, int]] = []
        self._events = 0
        self._running = False
        self._lock_order = LockOrderGraph()

    # -- scheduling primitives -------------------------------------------

    def _schedule(self, wid: int, at: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, wid))

    def _wake_from_signal(self, wid: int, signal: WorkSignal) -> None:
        proc = self._procs[wid]
        if proc.state is not _State.BLOCKED_WORK:
            raise SimulationError(f"worker {wid} woken but not waiting on {signal.name!r}")
        proc.metrics.starve_wait += self.now - proc.blocked_since
        if proc.metrics.timeline is not None and self.now > proc.blocked_since:
            proc.metrics.timeline.append(("starve", proc.blocked_since, self.now))
        if _cp.CURRENT is not None and self.now > proc.blocked_since:
            _cp.CURRENT.on_wait(
                wid, _cp.STARVE, proc.blocked_since, self.now, signal.name, self._current
            )
        if _trace.CURRENT is not None:
            _trace.on_wake(signal.name, task=wid)
        proc.state = _State.READY
        self._schedule(wid, self.now)

    def _grant_lock(self, lock: SimLock, wid: int) -> None:
        lock.holder = wid
        proc = self._procs[wid]
        proc.held.append(lock.name)
        proc.metrics.lock_wait += self.now - proc.blocked_since
        if proc.metrics.timeline is not None and self.now > proc.blocked_since:
            proc.metrics.timeline.append(("lock", proc.blocked_since, self.now))
        if _cp.CURRENT is not None and self.now > proc.blocked_since:
            _cp.CURRENT.on_wait(
                wid, _cp.LOCK_WAIT, proc.blocked_since, self.now, lock.name, self._current
            )
        if _trace.CURRENT is not None:
            _trace.on_acquire(lock.name, task=wid)
        proc.state = _State.READY
        self._schedule(wid, self.now)

    # -- op handlers -------------------------------------------------------

    def _handle(self, wid: int, op: Op) -> None:
        proc = self._procs[wid]
        if _obs.CURRENT is not None:
            _obs.CURRENT.count_op(type(op).__name__)
        if isinstance(op, Compute):
            proc.metrics.busy += op.units
            if proc.metrics.timeline is not None and op.units > 0:
                proc.metrics.timeline.append(("busy", self.now, self.now + op.units))
            if _cp.CURRENT is not None and op.units > 0:
                _cp.CURRENT.on_busy(
                    wid, self.now, self.now + op.units,
                    tag=op.tag, node=op.node, cls=op.cls, parts=op.parts,
                )
            self._schedule(wid, self.now + op.units)
        elif isinstance(op, Acquire):
            lock = op.lock
            if lock.holder == wid:
                raise WorkerProtocolError(
                    f"worker {wid} re-acquired {lock.name!r} (non-reentrant)"
                )
            inverted = self._lock_order.record(proc.held, lock.name)
            if inverted is not None:
                raise LockOrderError(
                    f"worker {wid} acquired {lock.name!r} while holding "
                    f"{inverted!r}, but the opposite nesting also occurs"
                )
            if lock.holder is None and not lock.waiters:
                lock.holder = wid
                proc.held.append(lock.name)
                if _trace.CURRENT is not None:
                    _trace.on_acquire(lock.name, task=wid)
                self._schedule(wid, self.now)
            else:
                lock.waiters.append(wid)
                proc.state = _State.BLOCKED_LOCK
                proc.blocked_since = self.now
        elif isinstance(op, Release):
            lock = op.lock
            if lock.holder != wid:
                raise WorkerProtocolError(
                    f"worker {wid} released {lock.name!r} held by {lock.holder}"
                )
            lock.holder = None
            proc.held.remove(lock.name)
            if _trace.CURRENT is not None:
                _trace.on_release(lock.name, task=wid)
            if lock.waiters:
                self._grant_lock(lock, lock.waiters.popleft())
            self._schedule(wid, self.now)
        elif isinstance(op, WaitWork):
            op.signal._bind(self)
            if op.signal.version != op.seen_version:
                # Notified between the worker's check and its wait: resume
                # immediately rather than sleeping through the wakeup.
                if _trace.CURRENT is not None:
                    _trace.on_wake(op.signal.name, task=wid)
                self._schedule(wid, self.now)
            else:
                if _trace.CURRENT is not None:
                    _trace.on_wait(
                        op.signal.name, op.seen_version, op.signal.version, task=wid
                    )
                op.signal.waiters.append(wid)
                proc.state = _State.BLOCKED_WORK
                proc.blocked_since = self.now
        else:
            raise WorkerProtocolError(f"worker {wid} yielded unknown op {op!r}")

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimReport:
        """Drive all workers to completion; returns the run report.

        Raises:
            DeadlockError: if every unfinished worker is blocked forever.
            LockOrderError: on an acquisition-order inversion.
            SimulationError: if the event budget is exhausted.
        """
        if self._running:
            raise SimulationError("engine instances are single-use")
        self._running = True
        if _trace.CURRENT is not None:
            # Order every worker's first step after the setup code that
            # built the shared state (the happens-before edge a thread
            # start would provide).
            _trace.on_notify("task-init", 0)
            for wid in range(len(self._procs)):
                _trace.on_wake("task-init", task=wid)
        for wid in range(len(self._procs)):
            self._schedule(wid, 0.0)

        bus = _obs.CURRENT
        prev_clock = None
        if bus is not None:
            # Telemetry emitted during this run is stamped in simulated
            # time, so traces line up with the engine's own timelines.
            prev_clock = bus.use_clock(lambda: self.now)
        try:
            while self._queue:
                self._events += 1
                if self._events > self._max_events:
                    raise SimulationError(f"exceeded event budget of {self._max_events}")
                self.now, _, wid = heapq.heappop(self._queue)
                proc = self._procs[wid]
                if proc.state is _State.FINISHED:
                    continue
                self._current = wid
                _trace.set_task(wid)
                _obs.set_task(wid)
                try:
                    op = proc.worker.send(None)
                except StopIteration:
                    proc.state = _State.FINISHED
                    proc.metrics.finish_time = self.now
                    continue
                self._handle(wid, op)
        finally:
            _trace.set_task(None)
            _obs.set_task(None)
            if bus is not None:
                bus.use_clock(prev_clock)

        unfinished = [i for i, p in enumerate(self._procs) if p.state is not _State.FINISHED]
        if unfinished:
            blocked = {
                i: self._procs[i].state.value for i in unfinished
            }
            raise DeadlockError(f"workers never finished: {blocked}")

        makespan = max((p.metrics.finish_time for p in self._procs), default=0.0)
        for p in self._procs:
            p.metrics.tail_idle = makespan - p.metrics.finish_time
        return SimReport(
            makespan=makespan,
            processors=[p.metrics for p in self._procs],
            events=self._events,
        )


def run_workers(workers: Iterable[Worker], max_events: int = 50_000_000) -> SimReport:
    """Convenience wrapper: build an engine, run it, return the report."""
    return Engine(workers, max_events=max_events).run()
