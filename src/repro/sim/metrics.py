"""Per-processor and per-run accounting produced by the engine.

The paper decomposes imperfect efficiency into starvation, interference,
and speculative loss (Section 3.1).  The first two are timing phenomena
and come straight out of the engine: time blocked on :class:`WaitWork` is
starvation, time blocked on :class:`Acquire` is interference.  Speculative
loss is semantic and is computed separately by
:mod:`repro.analysis.losses` from node traces.

The exact-tiling invariants (``accounted == finish_time`` and
``accounted + tail_idle == makespan``, checked to 1e-9 by the snapshot
layer) are also what makes :mod:`repro.obs.critpath` sound: every
instant of every processor's schedule belongs to exactly one recorded
interval, so the backward critical-path walk can never fall into an
unaccounted gap and its busy credits telescope to the makespan exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Timeline interval kinds (when the engine records timelines).
BUSY = "busy"
LOCK_WAIT = "lock"
STARVE = "starve"


@dataclass
class ProcessorMetrics:
    """Time accounting for one simulated processor.

    ``timeline`` is populated only when the engine runs with
    ``record_timeline=True``: a list of ``(kind, start, end)`` intervals
    with kind one of :data:`BUSY`, :data:`LOCK_WAIT`, :data:`STARVE`,
    consumed by :func:`repro.analysis.gantt.render_gantt`.
    """

    busy: float = 0.0
    lock_wait: float = 0.0
    starve_wait: float = 0.0
    finish_time: float = 0.0
    #: Idle time between this processor's last op and the run's makespan
    #: (filled in by the engine at the end of a run).  Without it,
    #: ``accounted`` silently undercounts the run: a processor that
    #: finishes early is starved for work even though no wait op charged
    #: it.  Invariant: ``accounted == finish_time`` and
    #: ``accounted + tail_idle == makespan``.
    tail_idle: float = 0.0
    timeline: list[tuple[str, float, float]] | None = None

    @property
    def accounted(self) -> float:
        return self.busy + self.lock_wait + self.starve_wait


@dataclass
class SimReport:
    """Outcome of one engine run."""

    makespan: float
    processors: list[ProcessorMetrics] = field(default_factory=list)
    events: int = 0

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    @property
    def total_busy(self) -> float:
        return sum(p.busy for p in self.processors)

    @property
    def total_lock_wait(self) -> float:
        return sum(p.lock_wait for p in self.processors)

    @property
    def total_starve_wait(self) -> float:
        return sum(p.starve_wait for p in self.processors)

    @property
    def utilization(self) -> float:
        """Fraction of processor-time spent busy (1.0 = no idling at all)."""
        denominator = self.makespan * max(1, self.n_processors)
        if denominator == 0:
            return 1.0
        return self.total_busy / denominator

    def starvation_fraction(self) -> float:
        """Share of total processor-time lost to empty-heap waits.

        Includes the tail idleness of processors that finished before the
        makespan — they are starved for work by definition.
        """
        denominator = self.makespan * max(1, self.n_processors)
        if denominator == 0:
            return 0.0
        tail = sum(self.makespan - p.finish_time for p in self.processors)
        return (self.total_starve_wait + tail) / denominator

    def interference_fraction(self) -> float:
        """Share of total processor-time lost to lock waits."""
        denominator = self.makespan * max(1, self.n_processors)
        if denominator == 0:
            return 0.0
        return self.total_lock_wait / denominator
