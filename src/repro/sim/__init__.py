"""Deterministic discrete-event multiprocessor simulator (DESIGN.md §1)."""

from .engine import Engine, Worker, run_workers
from .locks import SimLock, WorkSignal
from .metrics import ProcessorMetrics, SimReport
from .ops import Acquire, Compute, Op, Release, WaitWork

__all__ = [
    "Engine",
    "Worker",
    "run_workers",
    "SimLock",
    "WorkSignal",
    "ProcessorMetrics",
    "SimReport",
    "Acquire",
    "Compute",
    "Op",
    "Release",
    "WaitWork",
]
